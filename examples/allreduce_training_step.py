#!/usr/bin/env python3
"""Allreduce for data-parallel training: SCCL vs the NCCL ring baseline.

The paper's introduction motivates SCCL with gradient Allreduce: buffers
range from a few KB (a single layer) to GBs (a whole model), and 30% of
Megatron-LM's training step is spent inside Allreduce.  This example builds
both SCCL Allreduce algorithms (latency-optimal and a bandwidth-oriented
one, derived from synthesized Allgathers per Section 3.5) plus NCCL's
6-ring Allreduce, then sweeps the gradient-buffer sizes of a transformer
model through the simulator to show where each algorithm wins — and how an
input-size-switching library (the paper's Section 5.5 suggestion) would
always match or beat the baseline.

Run:  python examples/allreduce_training_step.py
"""

from repro.baselines import nccl_allreduce
from repro.core import allreduce_from_allgather, make_instance, synthesize
from repro.evaluation import format_table
from repro.runtime import Simulator, execute, lower
from repro.topology import dgx1

# Per-layer gradient buffer sizes (bytes) for a GPT-2-like model with fp16
# gradients: layer-norm vectors, attention projections, MLP blocks, and the
# full-model fusion bucket.
GRADIENT_BUFFERS = {
    "layernorm (2.5 KB)": 2_560,
    "attention qkv (7.1 MB)": 7_077_888,
    "mlp block (9.4 MB)": 9_437_184,
    "fused bucket (100 MB)": 100_000_000,
    "full model (1.5 GB)": 1_500_000_000,
}


def main() -> None:
    topology = dgx1()
    simulator = Simulator(topology)

    print("Synthesizing SCCL Allreduce algorithms (via Allgather inversion)...")
    candidates = {}
    for (chunks, steps, rounds) in [(1, 2, 2), (4, 5, 5)]:
        result = synthesize(make_instance("Allgather", topology, chunks, steps, rounds),
                            time_limit=120)
        if not result.is_sat:
            print(f"  ({chunks},{steps},{rounds}): {result.status.value}, skipping")
            continue
        allreduce = allreduce_from_allgather(result.algorithm)
        allreduce.verify()
        label = f"SCCL ({allreduce.chunks_per_node},{allreduce.num_steps},{allreduce.total_rounds})"
        candidates[label] = allreduce
        print(f"  {label}: synthesized in {result.total_time:.1f}s")

    baseline = nccl_allreduce(topology)
    print(f"  NCCL baseline: ({baseline.chunks_per_node},{baseline.num_steps},{baseline.total_rounds})")

    # Sanity: every algorithm actually computes the Allreduce on real buffers.
    for algorithm in list(candidates.values()) + [baseline]:
        execute(lower(algorithm), algorithm)
    print("functional check: all algorithms produce the correct reduction\n")

    rows = []
    for label, size in GRADIENT_BUFFERS.items():
        nccl_time = simulator.simulate_algorithm(baseline, size).total_time_s
        row = {"gradient buffer": label, "NCCL (us)": f"{nccl_time * 1e6:.1f}"}
        best_label, best_time = "NCCL", nccl_time
        for name, algorithm in candidates.items():
            t = simulator.simulate_algorithm(algorithm, size).total_time_s
            row[f"{name} speedup"] = f"{nccl_time / t:.2f}x"
            if t < best_time:
                best_label, best_time = name, t
        row["library pick"] = best_label
        rows.append(row)

    print(format_table(rows, title="Allreduce on DGX-1: simulated time vs NCCL per gradient buffer"))
    print("\nSmall layers favour the latency-optimal algorithm; large fused buckets")
    print("converge to the bandwidth-optimal schedules, matching Figure 5's shape.")


if __name__ == "__main__":
    main()

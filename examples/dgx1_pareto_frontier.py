#!/usr/bin/env python3
"""Pareto frontier of Allgather algorithms on an NVIDIA DGX-1.

Reproduces the headline result of the paper's Section 2 on the DGX-1
topology of Figure 1: Algorithm 1 enumerates step counts from the latency
lower bound (2, the topology diameter) toward the bandwidth lower bound
(7/6) and reports one Pareto-optimal algorithm per step count.  The script
then uses the alpha-beta cost model to show which algorithm a library
should select at each buffer size (the "switch by input size" behaviour of
Section 5.5).

The enumeration runs on the synthesis engine: ``--strategy incremental``
(the default) encodes one shared-prefix family per step count and probes
every (C, R) candidate through assumption literals, ``--strategy parallel
--jobs N`` fans one step count's candidates across N worker processes,
``--strategy speculative`` additionally starts the next step count while
the current one is still solving (both commit in cost order, so results
are identical to the serial loop), and solved frontiers persist in the
algorithm cache so re-running the script is instant.

The full enumeration down to the 7-step bandwidth-optimal algorithm takes a
while on the pure-Python solver; by default the script stops after 4 steps.
Pass --max-steps 7 to reproduce the entire k=0 column of Table 4.

Run:  python examples/dgx1_pareto_frontier.py [--max-steps N] [--k K]
          [--strategy serial|incremental|parallel|speculative] [--jobs N]
          [--no-cache]
"""

import argparse

from repro.core import pareto_synthesize
from repro.engine import available_backends, default_cache
from repro.evaluation import format_table
from repro.topology import dgx1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-steps", type=int, default=4,
                        help="largest step count to enumerate (7 reproduces Table 4)")
    parser.add_argument("--k", type=int, default=0, help="synchrony budget k")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-instance solver budget in seconds")
    parser.add_argument("--strategy", default="incremental",
                        choices=("serial", "incremental", "parallel", "speculative"),
                        help="candidate-sweep strategy")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --strategy parallel/speculative")
    parser.add_argument("--backend", default=None,
                        help=f"solver backend (available: {', '.join(available_backends())})")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the persistent algorithm cache")
    args = parser.parse_args()

    topology = dgx1()
    print(f"Topology: {topology.name} ({topology.num_nodes} GPUs, "
          f"diameter 2, incoming capacity 6 NVLinks/GPU)")

    frontier = pareto_synthesize(
        "Allgather",
        topology,
        k=args.k,
        max_steps=args.max_steps,
        time_limit_per_instance=args.time_limit,
        strategy=args.strategy,
        max_workers=args.jobs,
        backend=args.backend,
        cache=None if args.no_cache else default_cache(),
    )
    print(f"\nlatency lower bound  a_l = {frontier.latency_lower_bound} steps")
    print(f"bandwidth lower bound b_l = {frontier.bandwidth_lower_bound} rounds/chunk")
    stats = frontier.engine_stats
    print(f"engine: strategy={frontier.strategy} backend={frontier.backend} "
          f"probes={stats.get('candidates_probed', 0)} "
          f"encodes={stats.get('encode_calls', 0)} "
          f"cache hits={stats.get('cache_hits', 0)}")
    print()
    print(format_table(frontier.table_rows(), title="Synthesized Allgather algorithms (Table 4 prefix)"))

    # Which algorithm should the library pick at each size?
    print("\nbest algorithm per input size (alpha-beta model):")
    for size in (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30):
        best = frontier.best_for_size(size, alpha=topology.alpha, beta=topology.beta)
        cost = best.algorithm.cost(size)
        print(f"  {size:>14,d} B -> ({best.chunks_per_node},{best.steps},{best.rounds})"
              f"   predicted {cost * 1e6:9.1f} us")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Toolchain tour: synthesize, export, re-import and re-verify an algorithm.

The end product of SCCL is a deployable schedule, not a SAT model.  This
example walks the interchange layer that makes synthesized algorithms
tool-consumable:

1. synthesize the Figure 2 Allgather (4-node ring) through the cache,
2. emit it as MSCCL-style XML (per-GPU threadblocks of send/recv steps,
   with the topology and per-step rounds embedded as extension elements),
3. bundle it as a JSON plan (algorithm + structural topology fingerprint +
   cost summary + provenance),
4. re-import both files: the importer rebuilds the pre/post placements from
   the collective spec and re-runs full verification, so a tampered file is
   rejected rather than silently accepted.

Everything here is also reachable without Python via the CLI:

    repro synthesize Allgather -t ring:4 -C 1 -S 2 -R 3 --xml ag.xml --plan ag.json
    repro import ag.xml

Run:  python examples/interchange_toolchain.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import make_instance, synthesize
from repro.engine import default_cache
from repro.interchange import (
    InterchangeError,
    from_msccl_xml,
    plan_from_result,
    read_msccl_xml,
    read_plan,
    to_msccl_xml,
    write_msccl_xml,
    write_plan,
)
from repro.topology import ring


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-"))
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Synthesize (cache-backed: a warm run performs zero solver calls).
    instance = make_instance("Allgather", ring(4), chunks_per_node=1, steps=2, rounds=3)
    result = synthesize(instance, cache=default_cache())
    print(result.summary())
    algorithm = result.algorithm

    # 2. MSCCL-style XML.
    xml_path = write_msccl_xml(algorithm, out_dir / "allgather_ring4.xml")
    print(f"\nwrote {xml_path}; first lines:")
    for line in xml_path.read_text().splitlines()[:6]:
        print("  " + line)

    # 3. Plan bundle with fingerprint, cost and provenance.
    plan = plan_from_result(result)
    plan_path = write_plan(plan, out_dir / "allgather_ring4.json")
    print(f"\nwrote {plan_path}")
    print("  " + plan.summary())
    print(f"  topology fingerprint: {plan.fingerprint[:16]}..")
    print(f"  alpha-beta estimate @1MiB: {plan.cost['alpha_beta_estimate_s'] * 1e6:.1f} us")

    # 4. Re-import both; each import re-verifies against the collective spec.
    reimported = read_msccl_xml(xml_path)
    assert reimported.signature() == algorithm.signature()
    print(f"\nre-imported XML: {reimported.name!r} verifies OK")
    replanned = read_plan(plan_path)
    assert replanned.matches_topology(ring(4))
    print(f"re-imported plan: {replanned.algorithm.name!r} verifies OK")

    # A tampered document is rejected: claim it is a combining collective.
    tampered = xml_path.read_text().replace('coll="allgather"', 'coll="reducescatter"')
    try:
        from_msccl_xml(tampered)
    except InterchangeError as exc:
        print(f"\ntampered XML rejected as expected:\n  {exc}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: request a plan from the planning service, then execute it.

This walks the full pipeline on the paper's running example of Figure 2 —
Allgather on a 4-node ring — entirely on a laptop, the way a production
caller would: through the planning service rather than by invoking the
solver directly.

1. build a typed PlanRequest for the candidate (C=1, S=2, R=3),
2. submit it to an in-process PlanningService (broker + worker pool over
   the plan registry; concurrent identical requests would coalesce into
   one synthesis, and a warm registry answers with zero solver calls),
3. re-verify the returned plan bundle against the collective spec,
4. lower it to a per-rank program and execute it on numpy buffers,
5. estimate its wall-clock time with the alpha-beta simulator, and
6. emit the CUDA-like source the real SCCL tool would generate.

Run:  python examples/quickstart.py

The registry persists in $REPRO_CACHE_DIR (default ~/.cache/repro-sccl);
delete it, run `repro cache clear`, or pass --no-cache for a fresh solve.
The same round-trip works across processes: `repro serve` in one shell,
`repro request Allgather -t ring:4 -C 1 -S 2 -R 3` in another; see
examples/interchange_toolchain.py for the XML/plan interchange formats.
"""

import argparse
import tempfile

from repro.engine import AlgorithmCache
from repro.runtime import Simulator, execute, generate_cuda_like_source, lower
from repro.service import PlanRegistry, PlanRequest, PlanningService, default_registry
from repro.topology import ring


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-cache", action="store_true",
                        help="plan against a throwaway registry instead of the persistent one")
    args = parser.parse_args()

    # 1. The topology of Figure 2 and the service request for the paper's
    #    1-synchronous Allgather candidate.
    topology = ring(4)
    print(topology.describe())
    print()
    request = PlanRequest(
        collective="Allgather", topology="ring:4", chunks=1, steps=2, rounds=3,
    )

    # 2. Ask the planning service.  PlanningService is the same broker +
    #    worker pool `repro serve` exposes over HTTP, minus the socket.
    if args.no_cache:
        scratch = tempfile.TemporaryDirectory(prefix="repro-quickstart-")
        registry = PlanRegistry(cache=AlgorithmCache(f"{scratch.name}/algorithms"))
    else:
        registry = default_registry()
    print(f"Requesting {request.describe()} from the planning service ...")
    with PlanningService(registry, num_workers=2) as service:
        response = service.request(request, timeout=300.0)
    print(f"  -> {response.summary()}")
    if response.source == "cache":
        print("     (cached: the registry answered without any solver call)")
    if not response.ok:
        raise SystemExit(f"planning failed: {response.error}")

    # 3. Decode and re-verify the plan bundle (the service boundary is a
    #    trust boundary: plan_object() re-checks the schedule against the
    #    collective spec before we execute anything).
    plan = response.plan_object()
    algorithm = plan.algorithm
    print()
    print(algorithm.describe())
    print()
    algorithm.verify()
    print("verification: OK (run semantics, bandwidth and postcondition)")

    # 4. Lower to a per-rank program and execute it on real buffers.
    program = lower(algorithm, protocol="single_kernel_push")
    execution = execute(program, algorithm)
    print(f"functional execution: OK ({execution.transfers} chunk transfers)")

    # 5. Estimate wall-clock times for a few input sizes.
    simulator = Simulator(topology)
    print("\nsimulated times (per-node buffer size -> seconds):")
    for size in (1 << 10, 1 << 20, 1 << 27):
        sim = simulator.simulate(program, size)
        print(f"  {size:>12,d} B   {sim.total_time_s * 1e6:10.1f} us   "
              f"({sim.algorithmic_bandwidth() / 1e9:.2f} GB/s)")

    # 6. Emit the CUDA-like source.
    source = generate_cuda_like_source(program)
    print(f"\ngenerated CUDA-like source: {len(source.splitlines())} lines "
          f"(showing the first 12)")
    for line in source.splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: synthesize, verify, lower, execute and simulate a collective.

This walks the full SCCL pipeline on the paper's running example of Figure 2
— Allgather on a 4-node ring — entirely on a laptop:

1. build the topology and the SynColl instance,
2. synthesize a 1-synchronous algorithm with the SMT encoding (consulting
   the persistent algorithm cache: a warm run performs zero solver calls),
3. verify it against the run semantics,
4. lower it to a per-rank program and execute it on numpy buffers,
5. estimate its wall-clock time with the alpha-beta simulator, and
6. emit the CUDA-like source the real SCCL tool would generate.

Run:  python examples/quickstart.py

The cache lives in $REPRO_CACHE_DIR (default ~/.cache/repro-sccl); delete
the directory, run `repro cache clear`, or pass --no-cache to force a
fresh solve.  The same pipeline is scriptable without Python through the
CLI (`repro synthesize Allgather -t ring:4 -C 1 -S 2 -R 3`); see
examples/interchange_toolchain.py for exporting schedules as MSCCL-style
XML and plan bundles.
"""

import argparse

from repro.core import make_instance, synthesize
from repro.engine import default_cache
from repro.runtime import Simulator, execute, generate_cuda_like_source, lower
from repro.topology import ring


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-cache", action="store_true",
                        help="solve from scratch instead of consulting the algorithm cache")
    args = parser.parse_args()
    cache = None if args.no_cache else default_cache()

    # 1. The topology of Figure 2: four nodes on a bidirectional ring.
    topology = ring(4)
    print(topology.describe())
    print()

    # 2. The SynColl instance: Allgather, 1 chunk per node, S=2 steps, R=3 rounds.
    instance = make_instance("Allgather", topology, chunks_per_node=1, steps=2, rounds=3)
    print(f"Synthesizing {instance.describe()} ...")
    result = synthesize(instance, cache=cache)
    print(f"  -> {result.summary()}")
    if not result.cache_hit:
        print(f"     ({result.encoding_stats['variables']} vars, "
              f"{result.encoding_stats['clauses']} clauses)")
    algorithm = result.algorithm
    print()
    print(algorithm.describe())
    print()

    # 3. Verification (synthesize() already did this; shown here explicitly).
    algorithm.verify()
    print("verification: OK (run semantics, bandwidth and postcondition)")

    # 4. Lower to a per-rank program and execute it on real buffers.
    program = lower(algorithm, protocol="single_kernel_push")
    execution = execute(program, algorithm)
    print(f"functional execution: OK ({execution.transfers} chunk transfers)")

    # 5. Estimate wall-clock times for a few input sizes.
    simulator = Simulator(topology)
    print("\nsimulated times (per-node buffer size -> seconds):")
    for size in (1 << 10, 1 << 20, 1 << 27):
        sim = simulator.simulate(program, size)
        print(f"  {size:>12,d} B   {sim.total_time_s * 1e6:10.1f} us   "
              f"({sim.algorithmic_bandwidth() / 1e9:.2f} GB/s)")

    # 6. Emit the CUDA-like source.
    source = generate_cuda_like_source(program)
    print(f"\ngenerated CUDA-like source: {len(source.splitlines())} lines "
          f"(showing the first 12)")
    for line in source.splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()

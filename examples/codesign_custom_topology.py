#!/usr/bin/env python3
"""Interconnect co-design: probing what algorithms a topology admits.

Section 5.5 of the paper notes that synthesis "can help design future
interconnects and co-design them with communication libraries": asking the
solver whether an (S, R, C) algorithm exists is a direct probe of a
topology's algorithmic capabilities, and UNSAT answers are as informative
as SAT ones.

This example compares three candidate 8-GPU interconnects with the same
total link budget (24 unidirectional links):

* a single bidirectional ring (the Gigabyte Z52 shape),
* a 2x4 torus, and
* a "twin ring" similar in spirit to the DGX-1's double cycle.

For each candidate it computes the latency/bandwidth lower bounds for
Allgather and asks the solver which (steps, rounds-per-chunk) combinations
are actually achievable, producing the feasibility map a hardware architect
would look at.

Run:  python examples/codesign_custom_topology.py
"""

from fractions import Fraction

from repro.core import lower_bounds, make_instance, synthesize
from repro.evaluation import format_table
from repro.topology import Topology, ring, torus_2d


def twin_ring() -> Topology:
    """Two stacked rings over the same 8 nodes: one double-capacity, one single."""
    topo = Topology(name="twin_ring8", num_nodes=8)
    order_a = [0, 1, 2, 3, 4, 5, 6, 7]
    order_b = [0, 2, 4, 6, 1, 3, 5, 7]
    for order, bandwidth in ((order_a, 2), (order_b, 1)):
        for i, node in enumerate(order):
            nxt = order[(i + 1) % 8]
            topo.add_link(node, nxt, bandwidth)
            topo.add_link(nxt, node, bandwidth)
    return topo


CANDIDATES = {
    "ring8": ring(8),
    "torus2x4": torus_2d(2, 4),
    "twin_ring8": twin_ring(),
}

# (chunks, steps, rounds) probes: small latency-oriented and bandwidth-oriented points.
PROBES = [(1, 2, 2), (1, 3, 3), (1, 4, 4), (2, 4, 5), (2, 5, 7)]


def main() -> None:
    summary = []
    for name, topology in CANDIDATES.items():
        a_l, b_l = lower_bounds("Allgather", topology)
        summary.append({
            "topology": name,
            "links": len(topology.links()),
            "diameter (a_l)": a_l,
            "inv. bisection bw (b_l)": str(b_l),
        })
    print(format_table(summary, title="Candidate interconnects (equal link budget)"))
    print()

    rows = []
    for name, topology in CANDIDATES.items():
        for (chunks, steps, rounds) in PROBES:
            instance = make_instance("Allgather", topology, chunks, steps, rounds)
            result = synthesize(instance, time_limit=90)
            rows.append({
                "topology": name,
                "C": chunks,
                "S": steps,
                "R": rounds,
                "R/C": str(Fraction(rounds, chunks)),
                "achievable": result.status.value,
                "time_s": f"{result.total_time:.1f}",
            })
    print(format_table(rows, title="Allgather feasibility probes (SAT = achievable, UNSAT = impossible)"))
    print("\nAn architect reading this table sees, for instance, which topology can")
    print("finish an Allgather in 2 steps, and at what bandwidth cost — before any")
    print("hardware is built.")


if __name__ == "__main__":
    main()

"""Repo-wide pytest configuration.

The performance archive (:mod:`repro.telemetry.archive`) is *persistent*
by design — which is exactly wrong for tests: a full suite run records
thousands of probes, and letting those land in the developer's real
``~/.cache/repro/perf`` would both pollute their history and make test
outcomes depend on whatever history is already there (the calibrated
``strategy="auto"`` consults it).  Point every test at a throwaway
directory instead — unless the caller already pinned ``REPRO_PERF_DIR``
(CI does, so its benchmark runs can archive the trajectory as an
artifact).
"""

import os
import tempfile

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_perf_archive():
    if os.environ.get("REPRO_PERF_DIR"):
        yield  # explicit archive (e.g. CI): record into it for real
        return
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        os.environ["REPRO_PERF_DIR"] = tmp
        try:
            yield
        finally:
            os.environ.pop("REPRO_PERF_DIR", None)

"""CLI tests: in-process command coverage plus true subprocess smoke tests.

The subprocess tests exercise the ``python -m repro`` entrypoint end to end
on the quickstart instance (Allgather on the 4-node ring of Figure 2) — the
same path the CI smoke step runs — so the console entrypoint cannot regress
silently.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import TopologySpecError, main, parse_topology

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")

QUICKSTART = ["Allgather", "-t", "ring:4", "-C", "1", "-S", "2", "-R", "3"]


def run_cli(args, cache_dir):
    """Run the module entrypoint in a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


class TestTopologySpecs:
    def test_named_machines(self):
        assert parse_topology("dgx1").num_nodes == 8
        assert parse_topology("amd_z52").num_nodes == 8

    def test_parameterized(self):
        assert parse_topology("ring:6").num_nodes == 6
        assert parse_topology("fc:4:2").bandwidth_between(0, 1) == 2
        assert parse_topology("torus:2x3").num_nodes == 6
        assert parse_topology("hypercube:3").num_nodes == 8

    def test_bad_specs_rejected(self):
        for spec in ("", "ring", "ring:x", "torus:6", "mesh:4", "dgx1:8"):
            with pytest.raises(TopologySpecError):
                parse_topology(spec)


class TestInProcess:
    def test_synthesize_writes_cache_and_exports(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        xml = tmp_path / "ag.xml"
        plan = tmp_path / "ag.json"
        code = main(
            [
                "synthesize", *QUICKSTART,
                "--cache-dir", str(cache),
                "--xml", str(xml), "--plan", str(plan),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sat" in out
        assert xml.exists() and plan.exists()
        assert json.loads(plan.read_text())["format"] == "repro-sccl/plan"

        # Warm re-run replays from the cache.
        assert main(["synthesize", *QUICKSTART, "--cache-dir", str(cache), "-q"]) == 0
        assert "[cached" in capsys.readouterr().out

    def test_synthesize_unsat_exits_nonzero(self, tmp_path):
        code = main(
            [
                "synthesize", "Allgather", "-t", "ring:4",
                "-C", "1", "-S", "1", "-R", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 1

    def test_import_roundtrip_and_store(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        xml = tmp_path / "ag.xml"
        assert main(
            ["synthesize", *QUICKSTART, "--no-cache", "-q", "--xml", str(xml)]
        ) == 0
        assert main(
            ["import", str(xml), "--store", "--cache-dir", str(cache), "-q"]
        ) == 0
        out = capsys.readouterr().out
        assert "re-verified" in out and "stored into cache" in out
        # The stored entry is servable: export straight from the cache.
        assert main(
            [
                "export", *QUICKSTART,
                "--cache-dir", str(cache),
                "--format", "xml", "-o", str(tmp_path / "out.xml"),
            ]
        ) == 0
        assert (tmp_path / "out.xml").read_text().startswith("<algo")

    def test_import_rejects_tampered_file(self, tmp_path, capsys):
        xml = tmp_path / "ag.xml"
        assert main(
            ["synthesize", *QUICKSTART, "--no-cache", "-q", "--xml", str(xml)]
        ) == 0
        # Relabeling the copy-only Allgather as a combining collective must
        # fail spec re-verification (no reduction ever accumulates).
        xml.write_text(
            xml.read_text().replace('coll="allgather"', 'coll="reducescatter"')
        )
        assert main(["import", str(xml)]) == 1
        assert "verification" in capsys.readouterr().err

    def test_pareto_exports_frontier(self, tmp_path, capsys):
        export_dir = tmp_path / "plans"
        code = main(
            [
                "pareto", "Allgather", "-t", "ring:4", "-k", "1",
                "--max-steps", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--export-dir", str(export_dir),
                "--export-format", "both",
            ]
        )
        assert code == 0
        assert "Allgather" in capsys.readouterr().out
        names = sorted(p.name for p in export_dir.iterdir())
        assert any(n.endswith(".xml") for n in names)
        assert any(n.endswith(".json") for n in names)

    def test_pareto_speculative_with_portfolio(self, tmp_path, capsys):
        code = main(
            [
                "pareto", "Allgather", "-t", "ring:4",
                "--max-steps", "4",
                "--strategy", "speculative", "--max-workers", "2",
                "--portfolio", "cdcl",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy=speculative" in out
        assert "Bandwidth" in out

    def test_portfolio_requires_speculative(self, tmp_path, capsys):
        code = main(
            [
                "pareto", "Allgather", "-t", "ring:4",
                "--max-steps", "3",
                "--strategy", "serial", "--portfolio", "cdcl",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 1

    def test_cache_evict_prunes_to_n_entries(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        for rounds in ("3", "4", "5"):
            assert main(
                [
                    "synthesize", "Allgather", "-t", "ring:4",
                    "-C", "1", "-S", "2", "-R", rounds,
                    "--cache-dir", str(cache), "-q",
                ]
            ) == 0
        # Deterministic recency order for the assertion below.
        entries = sorted(cache.glob("*/*.json"))
        for index, path in enumerate(entries):
            os.utime(path, (2000.0 + index, 2000.0 + index))
        assert main(["cache", "evict", "--max-entries", "1", "--cache-dir", str(cache)]) == 0
        assert "evicted 2 of 3" in capsys.readouterr().out
        assert len(list(cache.glob("*/*.json"))) == 1

    def test_cache_evict_without_limits_errors(self, tmp_path, capsys):
        assert main(["cache", "evict", "--cache-dir", str(tmp_path / "c")]) == 1
        assert "nothing to do" in capsys.readouterr().err

    def test_cache_show_verify_clear(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["synthesize", *QUICKSTART, "--cache-dir", str(cache), "-q"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--keys", "--cache-dir", str(cache)]) == 0
        key = [
            line.split()[0]
            for line in capsys.readouterr().out.splitlines()
            if "Allgather" in line
        ][0]
        assert main(["cache", "show", key[:10], "--cache-dir", str(cache)]) == 0
        assert "Algorithm" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", str(cache)]) == 0
        assert "1 entries verified, 0 invalid" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert len(list(cache.glob("*/*.json"))) == 0

    def test_unknown_backend_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["synthesize", *QUICKSTART, "--no-cache", "--backend", "z3"]
        ) == 1
        assert "backend" in capsys.readouterr().err


class TestSubprocessSmoke:
    """The CI smoke path: the real entrypoint on the quickstart instance."""

    def test_module_entrypoint_synthesize_then_cache_ls(self, tmp_path):
        cache = tmp_path / "cache"
        solve = run_cli(["synthesize", *QUICKSTART, "--cache-dir", str(cache)], cache)
        assert solve.returncode == 0, solve.stderr
        assert "-> sat" in solve.stdout

        listing = run_cli(["cache", "ls", "--cache-dir", str(cache)], cache)
        assert listing.returncode == 0, listing.stderr
        assert "Allgather on ring4 C=1 S=2 R=3" in listing.stdout

    def test_module_entrypoint_help_and_version(self, tmp_path):
        result = run_cli(["--version"], tmp_path)
        assert result.returncode == 0
        assert "repro-sccl" in result.stdout


class TestReviewRegressions:
    """Behaviors pinned after review: corrupt-entry reporting, plan topology
    checks, and --no-cache only where it is honored."""

    def test_cache_verify_reports_unreadable_files(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["synthesize", *QUICKSTART, "--cache-dir", str(cache), "-q"]) == 0
        junk = cache / "zz"
        junk.mkdir()
        (junk / "deadbeef.json").write_text("garbage{")
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(cache)]) == 0
        assert "1 unreadable" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", str(cache)]) == 1
        assert "1 invalid" in capsys.readouterr().out
        assert main(["cache", "verify", "--drop", "--cache-dir", str(cache)]) == 0
        assert not (junk / "deadbeef.json").exists()

    def test_import_plan_checks_topology_fingerprint(self, tmp_path, capsys):
        plan = tmp_path / "ag.json"
        assert main(
            ["synthesize", *QUICKSTART, "--no-cache", "-q", "--plan", str(plan)]
        ) == 0
        assert main(["import", str(plan), "-t", "ring:4", "-q"]) == 0
        assert main(["import", str(plan), "-t", "ring:8", "-q"]) == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_no_cache_flag_only_on_synthesis_commands(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "ls", "--no-cache", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["import", "x.xml", "--no-cache"])

"""CLI observability surface: --trace exports, ``repro trace``, and
``repro request --stats``.
"""

import json

import pytest

from repro.cli import main

QUICKSTART = ["Allgather", "-t", "ring:4", "-C", "1", "-S", "2", "-R", "3"]


class TestTraceExport:
    def test_synthesize_trace_writes_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        code = main(
            ["synthesize", *QUICKSTART, "--no-cache", "-q", "--trace", str(trace)]
        )
        assert code == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"probe", "encode", "solve", "verify"} <= names

    def test_pareto_trace_writes_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        code = main(
            [
                "pareto", "Allgather", "-t", "ring:4", "--max-steps", "3",
                "--no-cache", "--trace", str(trace),
            ]
        )
        assert code == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"pareto", "sweep", "probe"} <= names

    def test_trace_command_summarizes(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(
            [
                "pareto", "Allgather", "-t", "ring:4", "--max-steps", "3",
                "--no-cache", "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events across" in out
        assert "probe" in out and "sweep" in out
        assert "probe coverage" in out

    def test_trace_command_rejects_bad_input(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "missing.json")]) == 1
        assert "no such file" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        assert main(["trace", str(bad)]) == 1
        assert "not valid trace JSON" in capsys.readouterr().err
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        assert main(["trace", str(array)]) == 1
        assert "expected a JSON object" in capsys.readouterr().err


class TestRequestStats:
    def test_stats_local_pretty_prints_sections(self, tmp_path, capsys):
        code = main(
            [
                "request", "--stats", "--local",
                "--cache-dir", str(tmp_path / "cache"),
                "--routes-dir", str(tmp_path / "routes"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for section in ("broker:", "resolver:", "engine:"):
            assert section in out
        assert "coalesced" in out
        assert "ladder rungs" in out
        assert "candidates pruned" in out
        assert "cache hit rate" in out

    def test_request_without_collective_or_stats_errors(self, tmp_path, capsys):
        assert main(["request", "--cache-dir", str(tmp_path)]) == 1
        assert "needs a COLLECTIVE" in capsys.readouterr().err

    def test_request_collective_without_topology_errors(self, tmp_path, capsys):
        assert main(["request", "Allgather", "--cache-dir", str(tmp_path)]) == 1
        assert "--topology" in capsys.readouterr().err

    def test_stats_against_unreachable_server_fails_cleanly(self, capsys):
        code = main(["request", "--stats", "--url", "http://127.0.0.1:1"])
        assert code == 1
        assert "cannot fetch stats" in capsys.readouterr().err

"""CLI coverage for the ``repro perf`` family and the ``repro trace``
``--top``/``--diff`` flags — the commands CI's sentinel step drives."""

import json

import pytest

from repro.cli import main
from repro.perf import flatten_bench_metrics
from repro.telemetry.archive import PerfArchive, RunRecord, host_context


@pytest.fixture
def archive_dir(tmp_path):
    return tmp_path / "perf"


@pytest.fixture
def archive(archive_dir):
    return PerfArchive(archive_dir)


def _seed_pareto_history(archive, *, samples=3):
    for index in range(samples):
        base = 0.1 + 0.01 * index
        for strategy, wall in (("serial", base), ("incremental", base * 10)):
            archive.append(RunRecord(
                kind="pareto", name="Allgather/ring:4",
                features={"nodes": 4, "k": 0, "chunks": 0},
                strategy=strategy, backend="cdcl", verdict="sat",
                wall_s=wall, host=host_context(),
            ))


# ----------------------------------------------------------------------
# repro perf history / compare
# ----------------------------------------------------------------------
def test_perf_history_lists_and_filters(archive_dir, archive, capsys):
    _seed_pareto_history(archive)
    archive.append(RunRecord(kind="bench", name="BENCH_service",
                             metrics={"warm.solve_s": 1.0}))

    assert main(["perf", "history", "--archive-dir", str(archive_dir)]) == 0
    out = capsys.readouterr().out
    assert "7 records" in out
    assert "Allgather/ring:4" in out and "BENCH_service" in out

    assert main(["perf", "history", "--archive-dir", str(archive_dir),
                 "--kind", "bench"]) == 0
    out = capsys.readouterr().out
    assert "BENCH_service" in out and "Allgather/ring:4" not in out

    assert main(["perf", "history", "--archive-dir", str(archive_dir),
                 "--json", "--limit", "1"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert len(records) == 1 and records[0]["kind"] == "bench"


def test_perf_history_empty_archive(archive_dir, capsys):
    assert main(["perf", "history", "--archive-dir", str(archive_dir)]) == 0
    assert "no matching records" in capsys.readouterr().out


def test_perf_compare_at_addresses(archive_dir, archive, capsys):
    archive.append(RunRecord(kind="pareto", name="run-a", wall_s=1.0,
                             phases={"solve_s": 0.5}))
    archive.append(RunRecord(kind="pareto", name="run-b", wall_s=2.0,
                             phases={"solve_s": 1.5}))
    assert main(["perf", "compare", "@1", "@0",
                 "--archive-dir", str(archive_dir)]) == 0
    out = capsys.readouterr().out
    assert "run-a" in out and "run-b" in out
    assert "phase.solve_s" in out


def test_perf_compare_rejects_unknown_token(archive_dir, archive, capsys):
    archive.append(RunRecord(kind="pareto", name="only"))
    assert main(["perf", "compare", "@0", "zzz-no-such",
                 "--archive-dir", str(archive_dir)]) == 1
    assert "no archived record matches" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro perf regressions (the CI gate)
# ----------------------------------------------------------------------
def _write_bench(bench_dir, payload, name="BENCH_service.json"):
    bench_dir.mkdir(parents=True, exist_ok=True)
    path = bench_dir / name
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _archive_bench_rows(archive, payload, *, runs=3, name="BENCH_service"):
    metrics = {k: v for k, (v, _) in flatten_bench_metrics(payload).items()}
    for _ in range(runs):
        archive.append(RunRecord(kind="bench", name=name, metrics=metrics,
                                 host=host_context()))


def test_perf_regressions_flags_injected_slowdown(tmp_path, archive_dir,
                                                  archive, capsys):
    bench_dir = tmp_path / "bench"
    good = {"warm": {"solve_s": 1.0, "cache_hit_rate": 0.95}}
    _archive_bench_rows(archive, good)
    _write_bench(bench_dir, {"warm": {"solve_s": 3.0, "cache_hit_rate": 0.95}})

    code = main(["perf", "regressions", "--bench-dir", str(bench_dir),
                 "--archive-dir", str(archive_dir)])
    out = capsys.readouterr().out
    assert code == 1
    assert "[FAIL] BENCH_service:warm.solve_s" in out

    # --warn-only keeps the report but neuters the exit code (first-run CI).
    code = main(["perf", "regressions", "--bench-dir", str(bench_dir),
                 "--archive-dir", str(archive_dir), "--warn-only"])
    assert code == 0
    # A wider band tolerates the same numbers.
    code = main(["perf", "regressions", "--bench-dir", str(bench_dir),
                 "--archive-dir", str(archive_dir), "--max-slowdown", "3.0"])
    assert code == 0


def test_perf_regressions_empty_archive_passes(tmp_path, archive_dir, capsys):
    bench_dir = tmp_path / "bench"
    _write_bench(bench_dir, {"warm": {"solve_s": 1.0}})
    code = main(["perf", "regressions", "--bench-dir", str(bench_dir),
                 "--archive-dir", str(archive_dir)])
    assert code == 0
    assert "first run: warn-only" in capsys.readouterr().out


def test_perf_regressions_requires_bench_files(tmp_path, archive_dir, capsys):
    empty = tmp_path / "nothing"
    empty.mkdir()
    assert main(["perf", "regressions", "--bench-dir", str(empty),
                 "--archive-dir", str(archive_dir)]) == 1
    assert "no BENCH_*.json" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro perf calibrate
# ----------------------------------------------------------------------
def test_perf_calibrate_reports_measured_pick(archive_dir, archive, capsys):
    _seed_pareto_history(archive)
    assert main(["perf", "calibrate", "--archive-dir", str(archive_dir),
                 "--check", "ring:4"]) == 0
    out = capsys.readouterr().out
    assert "6 pareto run(s) ingested" in out
    assert "<-- measured pick" in out
    assert "-> 'serial'" in out  # the measured pick overrides the static one


def test_perf_calibrate_cold_start(archive_dir, capsys):
    assert main(["perf", "calibrate", "--archive-dir", str(archive_dir)]) == 0
    assert "no calibration data yet" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro trace --top / --diff
# ----------------------------------------------------------------------
def _trace(events):
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _span(name, ts_us, dur_us, **args):
    return {"ph": "X", "name": name, "ts": ts_us, "dur": dur_us,
            "pid": 1, "tid": 1, "args": args}


def test_trace_top_lists_slowest_spans(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_trace([
        _span("solve", 0, 900_000, C=1, S=2),
        _span("encode", 900_000, 100_000),
        _span("verify", 1_000_000, 50_000),
    ])))
    assert main(["trace", str(path), "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "top 2 slowest spans:" in out
    assert "solve" in out and "C=1" in out
    assert "verify" not in out.split("top 2 slowest spans:")[1]


def test_trace_diff_ranks_phases_by_delta(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(_trace([
        _span("solve", 0, 1_000_000), _span("encode", 0, 100_000),
    ])))
    b.write_text(json.dumps(_trace([
        _span("solve", 0, 3_000_000), _span("encode", 0, 110_000),
    ])))
    assert main(["trace", str(a), "--diff", str(b)]) == 0
    out = capsys.readouterr().out
    # solve moved +2s, encode +0.01s: solve is the first data row.
    rows = [line for line in out.splitlines()
            if line.startswith(("solve", "encode"))]
    assert rows and rows[0].startswith("solve")
    assert "(+200%)" in rows[0]


def test_trace_diff_missing_file_errors(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_trace([_span("solve", 0, 1000)])))
    assert main(["trace", str(path), "--diff", str(tmp_path / "nope.json")]) == 1
    assert "no such file" in capsys.readouterr().err

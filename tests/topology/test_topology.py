"""Unit tests for the Topology model and bandwidth relation."""

import pytest

from repro.topology import (
    BandwidthConstraint,
    Topology,
    TopologyError,
    fully_connected,
    ring,
)


def test_basic_link_addition():
    topo = Topology(name="t", num_nodes=3)
    topo.add_link(0, 1, 2)
    topo.add_link(1, 2, 1)
    assert topo.has_link(0, 1)
    assert not topo.has_link(1, 0)
    assert topo.bandwidth_between(0, 1) == 2
    assert topo.bandwidth_between(1, 2) == 1
    assert topo.bandwidth_between(2, 0) == 0


def test_out_and_in_neighbors():
    topo = Topology(name="t", num_nodes=4)
    topo.add_link(0, 1)
    topo.add_link(0, 2)
    topo.add_link(3, 0)
    assert topo.out_neighbors(0) == [1, 2]
    assert topo.in_neighbors(0) == [3]
    assert topo.degree(0) == 2


def test_node_range_checked():
    topo = Topology(name="t", num_nodes=2)
    with pytest.raises(TopologyError):
        topo.add_link(0, 5)
    with pytest.raises(TopologyError):
        topo.out_neighbors(7)


def test_self_loop_rejected():
    with pytest.raises(TopologyError):
        Topology(
            name="t",
            num_nodes=2,
            constraints=[BandwidthConstraint(frozenset({(1, 1)}), 1)],
        )


def test_negative_bandwidth_rejected():
    with pytest.raises(TopologyError):
        BandwidthConstraint(frozenset({(0, 1)}), -1)


def test_zero_node_topology_rejected():
    with pytest.raises(TopologyError):
        Topology(name="t", num_nodes=0)


def test_shared_constraint_capacity():
    topo = Topology(name="t", num_nodes=3)
    topo.add_link(0, 1, 3)
    topo.add_link(0, 2, 3)
    topo.add_shared_constraint([(0, 1), (0, 2)], 1, name="egress0")
    # The shared constraint tightens the per-link capacity view.
    assert topo.bandwidth_between(0, 1) == 1
    assert topo.bandwidth_between(0, 2) == 1


def test_reversed_topology():
    topo = Topology(name="t", num_nodes=3)
    topo.add_link(0, 1, 2)
    topo.add_link(1, 2, 1)
    rev = topo.reversed()
    assert rev.has_link(1, 0)
    assert rev.has_link(2, 1)
    assert not rev.has_link(0, 1)
    assert rev.bandwidth_between(1, 0) == 2
    assert rev.num_nodes == 3


def test_symmetry_detection():
    assert ring(4).is_symmetric()
    asym = Topology(name="a", num_nodes=2)
    asym.add_link(0, 1, 1)
    assert not asym.is_symmetric()


def test_links_excludes_zero_bandwidth():
    topo = Topology(name="t", num_nodes=2)
    topo.add_link(0, 1, 0)
    assert topo.links() == set()


def test_describe_mentions_links():
    topo = ring(3)
    text = topo.describe()
    assert "0 -> 1" in text
    assert "3 nodes" in text


def test_serialization_roundtrip():
    topo = fully_connected(3)
    topo.add_shared_constraint([(0, 1), (0, 2)], 1, name="egress")
    data = topo.to_dict()
    restored = Topology.from_dict(data)
    assert restored.num_nodes == topo.num_nodes
    assert restored.link_capacity() == topo.link_capacity()
    assert restored.name == topo.name

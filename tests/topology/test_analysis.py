"""Tests for topology analysis: distances, diameter, capacities, bisection."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.topology import (
    TopologyError,
    Topology,
    cut_capacity,
    diameter,
    distance,
    fully_connected,
    hypercube,
    inverse_bisection_bandwidth,
    is_strongly_connected,
    latency_lower_bound,
    line,
    link_utilization,
    min_node_in_capacity,
    node_in_capacity,
    ring,
    shortest_path_lengths,
    star,
    to_networkx,
)


def test_shortest_paths_on_line():
    topo = line(4)
    dist = shortest_path_lengths(topo)
    assert dist[0][3] == 3
    assert dist[3][0] == 3
    assert dist[1][2] == 1


def test_distance_helper():
    assert distance(ring(6), 0, 3) == 3
    assert distance(ring(6), 0, 5) == 1


def test_unreachable_distance_is_none():
    topo = Topology(name="t", num_nodes=3)
    topo.add_link(0, 1)
    assert distance(topo, 1, 0) is None
    assert not is_strongly_connected(topo)


def test_diameter_values():
    assert diameter(fully_connected(5)) == 1
    assert diameter(ring(8)) == 4
    assert diameter(hypercube(4)) == 4
    assert diameter(star(6)) == 2


def test_diameter_requires_strong_connectivity():
    topo = Topology(name="t", num_nodes=2)
    topo.add_link(0, 1)
    with pytest.raises(TopologyError):
        diameter(topo)


def test_node_capacities():
    topo = ring(4, bandwidth=3)
    assert node_in_capacity(topo, 0) == 6
    assert min_node_in_capacity(topo) == 6


def test_cut_capacity():
    topo = ring(4)
    # Cutting {0, 1} from {2, 3}: links 3->0 and 2->1 enter the part.
    assert cut_capacity(topo, {0, 1}) == 2


def test_inverse_bisection_bandwidth_ring():
    # Ring of 8, capacity 2 in per node: (8-1)/2.
    assert inverse_bisection_bandwidth(ring(8)) == Fraction(7, 2)


def test_inverse_bisection_bandwidth_zero_capacity():
    topo = Topology(name="t", num_nodes=2)
    topo.add_link(0, 1)
    with pytest.raises(TopologyError):
        inverse_bisection_bandwidth(topo)


def test_latency_lower_bound_equals_diameter():
    assert latency_lower_bound(ring(6)) == 3


def test_link_utilization():
    topo = ring(4)
    util = link_utilization(topo, {(0, 1): 1})
    assert util[(0, 1)] == 1.0
    with pytest.raises(TopologyError):
        link_utilization(topo, {(0, 2): 1})


def test_networkx_export():
    graph = to_networkx(ring(5, bandwidth=2))
    assert graph.number_of_nodes() == 5
    assert graph.number_of_edges() == 10
    assert graph[0][1]["capacity"] == 2


@given(n=st.integers(2, 9))
def test_ring_diameter_formula(n):
    assert diameter(ring(n)) == n // 2


@given(n=st.integers(2, 16))
def test_fully_connected_bisection(n):
    topo = fully_connected(n)
    # Each node can receive from n-1 peers.
    assert min_node_in_capacity(topo) == n - 1


@given(dims=st.integers(1, 4))
def test_hypercube_properties(dims):
    topo = hypercube(dims)
    assert diameter(topo) == dims
    assert min_node_in_capacity(topo) == dims

"""Tests for the synthetic topology constructors."""

import pytest

from repro.topology import (
    TopologyError,
    diameter,
    fully_connected,
    from_edge_list,
    hypercube,
    is_strongly_connected,
    line,
    ring,
    shared_bus,
    star,
    torus_2d,
)


def test_ring_structure():
    topo = ring(5)
    assert topo.num_nodes == 5
    for node in range(5):
        assert topo.has_link(node, (node + 1) % 5)
        assert topo.has_link((node + 1) % 5, node)
    assert diameter(topo) == 2


def test_unidirectional_ring():
    topo = ring(4, bidirectional=False)
    assert topo.has_link(0, 1)
    assert not topo.has_link(1, 0)
    assert diameter(topo) == 3


def test_ring_too_small():
    with pytest.raises(TopologyError):
        ring(1)


def test_line_structure():
    topo = line(4)
    assert topo.has_link(0, 1) and topo.has_link(1, 0)
    assert not topo.has_link(0, 3)
    assert diameter(topo) == 3


def test_star_structure():
    topo = star(5)
    assert all(topo.has_link(0, n) and topo.has_link(n, 0) for n in range(1, 5))
    assert not topo.has_link(1, 2)
    assert diameter(topo) == 2


def test_star_center_out_of_range():
    with pytest.raises(TopologyError):
        star(4, center=9)


def test_fully_connected():
    topo = fully_connected(4)
    assert len(topo.links()) == 12
    assert diameter(topo) == 1


def test_hypercube():
    topo = hypercube(3)
    assert topo.num_nodes == 8
    assert diameter(topo) == 3
    # Every node has degree = dimensions.
    assert all(topo.degree(n) == 3 for n in range(8))


def test_torus():
    topo = torus_2d(3, 3)
    assert topo.num_nodes == 9
    assert is_strongly_connected(topo)
    assert all(topo.degree(n) == 4 for n in range(9))


def test_torus_too_small():
    with pytest.raises(TopologyError):
        torus_2d(1, 5)


def test_shared_bus_capacity():
    topo = shared_bus(4, bandwidth=1)
    # Individual links exist but the shared constraint caps everything at 1.
    shared = [c for c in topo.constraints if len(c.links) > 1]
    assert len(shared) == 1
    assert shared[0].bandwidth == 1
    assert len(shared[0].links) == 12


def test_from_edge_list():
    topo = from_edge_list(3, [(0, 1, 2), (1, 2, 1), (2, 0, 1)], name="tri")
    assert topo.name == "tri"
    assert topo.bandwidth_between(0, 1) == 2
    assert is_strongly_connected(topo)

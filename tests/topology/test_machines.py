"""Tests for the DGX-1 and Gigabyte Z52 machine models (paper Figures 1 and 3)."""

from fractions import Fraction

from repro.topology import (
    amd_z52,
    amd_z52_ring_order,
    diameter,
    dgx1,
    dgx1_logical_rings,
    inverse_bisection_bandwidth,
    is_strongly_connected,
    min_node_in_capacity,
    node_in_capacity,
    node_out_capacity,
    shortest_path_lengths,
)


class TestDGX1:
    def test_eight_gpus(self):
        assert dgx1().num_nodes == 8

    def test_strongly_connected(self):
        assert is_strongly_connected(dgx1())

    def test_diameter_is_two(self):
        # Section 2.5: "the DGX-1 topology has a diameter of 2".
        assert diameter(dgx1()) == 2

    def test_each_gpu_has_six_nvlink_ports(self):
        # 2 NVLinks on the double cycle + 1 on the single cycle, per direction.
        topo = dgx1()
        for gpu in range(8):
            assert node_in_capacity(topo, gpu) == 6
            assert node_out_capacity(topo, gpu) == 6

    def test_double_and_single_cycle_bandwidths(self):
        topo = dgx1()
        assert topo.bandwidth_between(0, 1) == 2  # double-NVLink cycle edge
        assert topo.bandwidth_between(0, 2) == 1  # single-NVLink cycle edge
        assert topo.bandwidth_between(0, 6) == 0  # not directly connected

    def test_allgather_bandwidth_lower_bound_is_seven_sixths(self):
        # Section 2.4: any Allgather needs at least 7/6 * L * beta.
        assert inverse_bisection_bandwidth(dgx1()) == Fraction(7, 6)

    def test_six_logical_rings(self):
        rings = dgx1_logical_rings()
        assert len(rings) == 6
        assert all(len(r) == 8 for r in rings)
        topo = dgx1()
        # Every consecutive pair in every logical ring is a real link.
        for ring_order in rings:
            for i, node in enumerate(ring_order):
                nxt = ring_order[(i + 1) % 8]
                assert topo.has_link(node, nxt)

    def test_symmetric(self):
        assert dgx1().is_symmetric()


class TestAmdZ52:
    def test_eight_gpus(self):
        assert amd_z52().num_nodes == 8

    def test_is_a_ring(self):
        topo = amd_z52()
        for gpu in range(8):
            assert node_in_capacity(topo, gpu) == 2
            assert node_out_capacity(topo, gpu) == 2

    def test_diameter_is_four(self):
        assert diameter(amd_z52()) == 4

    def test_ring_order_is_consistent(self):
        topo = amd_z52()
        order = amd_z52_ring_order()
        assert sorted(order) == list(range(8))
        for i, node in enumerate(order):
            nxt = order[(i + 1) % 8]
            assert topo.has_link(node, nxt)
            assert topo.has_link(nxt, node)

    def test_allgather_bandwidth_lower_bound(self):
        # Table 5: the bandwidth-optimal Allgather is (C=2, R=7) => 7/2.
        assert inverse_bisection_bandwidth(amd_z52()) == Fraction(7, 2)

    def test_symmetric(self):
        assert amd_z52().is_symmetric()

    def test_all_pairs_reachable(self):
        distances = shortest_path_lengths(amd_z52())
        assert all(len(distances[n]) == 8 for n in range(8))

"""Regression-sentinel tests: the acceptance criterion is that an injected
slowdown in a synthetic archive fixture turns into a failing finding, while
an empty archive — CI's first run — passes with warnings only."""

import pytest

from repro.perf import (
    ToleranceBand,
    classify_metric,
    compare_records,
    detect_regressions,
    flatten_bench_metrics,
)
from repro.telemetry.archive import (
    PerfArchive,
    RunRecord,
    host_context,
)


GOOD = {
    "benchmark": "planning_service_throughput",
    "warm": {
        "solve_s": 1.0,
        "requests_per_sec": 100.0,
        "cache_hit_rate": 0.95,
        "requests": 400,
    },
}


@pytest.fixture
def archive(tmp_path):
    return PerfArchive(tmp_path / "perf")


def _archive_payload(archive, payload, *, name="BENCH_service", host=None,
                     runs=3):
    """What benchmarks/conftest.py does: flatten and append one bench row."""
    metrics = {k: v for k, (v, _) in flatten_bench_metrics(payload).items()}
    for _ in range(runs):
        archive.append(RunRecord(
            kind="bench", name=name, metrics=metrics,
            host=host if host is not None else host_context(),
        ))


# ----------------------------------------------------------------------
# Classification / flattening
# ----------------------------------------------------------------------
def test_classify_metric_naming_conventions():
    assert classify_metric("warm.solve_s") == "time"
    assert classify_metric("warm.wall_s") == "time"
    assert classify_metric("warm.requests_per_sec") == "rate"
    assert classify_metric("warm.cache_hit_rate") == "ratio"
    assert classify_metric("cold.coalescing_ratio") == "ratio"
    assert classify_metric("bounds.coverage") == "ratio"
    assert classify_metric("warm.requests") is None
    assert classify_metric("warm.backend_solves") is None


def test_flatten_skips_context_subtrees_and_booleans():
    payload = {
        "warm": {"solve_s": 1.0, "ok": True},
        "host": {"cpu_count": 64},          # context, never gated
        "metrics": {"broker_total_s": 9.0},  # raw counter snapshot
        "since": 12345.0,
    }
    flat = flatten_bench_metrics(payload)
    assert flat == {"warm.solve_s": (1.0, "time")}


# ----------------------------------------------------------------------
# The sentinel
# ----------------------------------------------------------------------
def test_injected_slowdown_fails_the_gate(archive):
    """Acceptance criterion: a synthetic slowdown is detected and fails."""
    _archive_payload(archive, GOOD)
    slow = {
        "benchmark": "planning_service_throughput",
        "warm": {
            "solve_s": 2.0,              # +100% over the 25% band
            "requests_per_sec": 100.0,
            "cache_hit_rate": 0.95,
            "requests": 400,
        },
    }
    report = detect_regressions({"BENCH_service": slow}, archive)
    assert not report.ok
    assert [f.metric for f in report.failures] == ["warm.solve_s"]
    assert report.failures[0].kind == "time"
    assert "over the archived median" in report.failures[0].reason
    assert "1 failure(s)" in report.render()


def test_in_band_run_passes(archive):
    _archive_payload(archive, GOOD)
    within = {
        "warm": {
            "solve_s": 1.2,              # +20%: inside the 25% band
            "requests_per_sec": 85.0,    # -15%: inside
            "cache_hit_rate": 0.92,      # -0.03 absolute: inside
        },
    }
    report = detect_regressions({"BENCH_service": within}, archive)
    assert report.ok and report.findings == []
    assert report.checked == 3


def test_rate_and_ratio_drops_fail(archive):
    _archive_payload(archive, GOOD)
    degraded = {
        "warm": {
            "solve_s": 1.0,
            "requests_per_sec": 40.0,    # -60%
            "cache_hit_rate": 0.5,       # -0.45 absolute
        },
    }
    report = detect_regressions({"BENCH_service": degraded}, archive)
    kinds = {f.metric: f.kind for f in report.failures}
    assert kinds == {
        "warm.requests_per_sec": "rate",
        "warm.cache_hit_rate": "ratio",
    }


def test_empty_archive_is_warn_only(archive):
    """CI's first run: no history, everything warns, nothing fails."""
    report = detect_regressions({"BENCH_service": GOOD}, archive)
    assert report.ok
    assert len(report.warnings) == report.checked == 3
    assert all(f.baseline is None for f in report.warnings)
    assert "first run: warn-only" in report.render()


def test_thin_baseline_downgrades_to_warning(archive):
    _archive_payload(archive, GOOD, runs=1)  # under min_samples=2
    slow = {"warm": {"solve_s": 10.0}}
    report = detect_regressions({"BENCH_service": slow}, archive)
    assert report.ok
    assert [f.severity for f in report.findings] == ["warn"]
    assert report.findings[0].samples == 1


def test_cross_host_history_is_invisible(archive):
    alien = {"hostname": "big-box", "cpu_count": 96, "python": "3.12.0"}
    _archive_payload(archive, GOOD, host=alien)
    # Same benchmark name, but the trajectory is from another machine:
    # the sentinel must treat this host as having no baseline at all.
    slow = {"warm": {"solve_s": 50.0}}
    report = detect_regressions({"BENCH_service": slow}, archive)
    assert report.ok
    assert report.baseline_runs == {"BENCH_service": 0}
    assert all(f.baseline is None for f in report.findings)


def test_noise_floor_ignores_fast_timings(archive):
    _archive_payload(archive, {"warm": {"register_s": 0.001}})
    # 10x slower, but both sides are under min_wall_s: not judgeable.
    report = detect_regressions(
        {"BENCH_service": {"warm": {"register_s": 0.01}}}, archive
    )
    assert report.ok and report.findings == []


def test_wall_clock_warns_on_few_cores(archive):
    _archive_payload(archive, {"warm": {"wall_s": 1.0, "solve_s": 1.0}})
    slow = {"warm": {"wall_s": 2.0, "solve_s": 2.0}}
    single_core = dict(host_context(), cpu_count=1)
    # Same fingerprint trick won't fly: the archived rows carry the real
    # host, so judge against a trajectory recorded as single-core too.
    archive2 = PerfArchive(archive.root.parent / "perf1")
    _archive_payload(archive2, {"warm": {"wall_s": 1.0, "solve_s": 1.0}},
                     host=single_core)
    report = detect_regressions(
        {"BENCH_service": slow}, archive2, host=single_core
    )
    # The phase split still fails hard; the wall total only warns.
    assert [f.metric for f in report.failures] == ["warm.solve_s"]
    assert [f.metric for f in report.warnings] == ["warm.wall_s"]


def test_wider_band_tolerates_more(archive):
    _archive_payload(archive, GOOD)
    slow = {"warm": {"solve_s": 1.9}}
    default = detect_regressions({"BENCH_service": slow}, archive)
    assert not default.ok
    relaxed = detect_regressions(
        {"BENCH_service": slow}, archive, band=ToleranceBand(max_slowdown=1.0)
    )
    assert relaxed.ok


def test_baseline_token_pins_the_comparison(archive):
    fast = {"warm": {"solve_s": 1.0}}
    slower = {"warm": {"solve_s": 5.0}}
    _archive_payload(archive, fast, runs=2)
    _archive_payload(archive, slower, runs=2)
    # Whole-trajectory median mixes both eras; pinning to the latest run
    # (@0) judges against the slow era only, so 5.0 is in band.
    fresh = {"warm": {"solve_s": 5.0}}
    whole = detect_regressions({"BENCH_service": fresh}, archive)
    assert not whole.ok
    pinned = detect_regressions(
        {"BENCH_service": fresh}, archive, baseline="@0",
        band=ToleranceBand(min_samples=1),
    )
    assert pinned.ok


# ----------------------------------------------------------------------
# compare_records
# ----------------------------------------------------------------------
def test_compare_records_diffs_phases_and_flags_cross_host():
    a = RunRecord(
        kind="pareto", name="Allgather/ring:4", wall_s=1.0,
        phases={"solve_s": 0.6}, quantiles={"solve_p50": 0.1},
        metrics={"warm.solve_s": 1.0}, host=host_context(),
    )
    b = RunRecord(
        kind="pareto", name="Allgather/ring:4", wall_s=2.0,
        phases={"solve_s": 1.5}, quantiles={"solve_p50": 0.2},
        metrics={"warm.solve_s": 2.0},
        host={"hostname": "big-box", "cpu_count": 96, "python": "3.12.0"},
    )
    text = compare_records(a, b)
    assert "phase.solve_s" in text
    assert "quantile.solve_p50" in text
    assert "(+100%)" in text
    assert "different hosts" in text
    same_host = compare_records(a, a)
    assert "different hosts" not in same_host

"""End-to-end producer wiring: a real Pareto run populates the archive with
``probe``/``sweep``/``pareto`` rows carrying phase splits, and a planning
request adds a ``service`` row — the raw material for ``repro perf``."""

import pytest

from repro.core import pareto_synthesize
from repro.telemetry.archive import PerfArchive, set_archive
from repro.topology import ring


@pytest.fixture
def archive(tmp_path):
    archive = PerfArchive(tmp_path / "perf")
    previous = set_archive(archive)
    try:
        yield archive
    finally:
        set_archive(previous)


def test_pareto_run_records_sweeps_and_pareto(archive):
    frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=3)
    assert frontier.points

    pareto = archive.records(kind="pareto")
    assert len(pareto) == 1
    record = pareto[0]
    assert record.name == "Allgather/ring4"
    assert record.features == {"nodes": 4, "k": 0, "chunks": 0}
    assert record.strategy in ("serial", "incremental", "parallel",
                               "speculative")
    assert record.verdict == "sat"
    assert record.wall_s > 0
    assert set(record.phases) == {"encode_s", "solve_s", "verify_s"}
    assert record.extra["points"] == len(frontier.points)

    sweeps = archive.records(kind="sweep")
    assert sweeps and all(r.strategy for r in sweeps)
    assert all(r.features["nodes"] == 4 for r in sweeps)
    assert {r.name for r in sweeps} >= {"Allgather/ring4/S2"}


def test_direct_synthesize_records_a_probe(archive):
    from repro.core import make_instance, synthesize
    from repro.solver import SolveResult

    instance = make_instance("Allgather", ring(4), 1, 2, 3)
    result = synthesize(instance)
    assert result.status == SolveResult.SAT

    probes = archive.records(kind="probe")
    assert len(probes) == 1
    probe = probes[0]
    assert probe.name == "Allgather/ring4/C1S2R3"
    assert probe.fingerprint
    assert probe.verdict == "sat"
    assert probe.features == {"nodes": 4, "C": 1, "S": 2, "R": 3}


def test_cache_replays_do_not_rerecord_probes(archive, tmp_path):
    from repro.engine import AlgorithmCache

    from repro.core import make_instance, synthesize

    cache = AlgorithmCache(tmp_path / "cache")
    instance = make_instance("Allgather", ring(4), 1, 2, 3)
    synthesize(instance, cache=cache)
    assert len(archive.records(kind="probe")) == 1
    # The warm run replays from the cache: the replay carries the *original*
    # solve timings, which would skew the distributions — not re-recorded.
    replay = synthesize(instance, cache=cache)
    assert replay.cache_hit
    assert len(archive.records(kind="probe")) == 1

    # Pareto runs over a warm cache still record their own pareto row and
    # declare the replays.
    pareto_synthesize("Allgather", ring(4), k=0, max_steps=3, cache=cache)
    pareto_synthesize("Allgather", ring(4), k=0, max_steps=3, cache=cache)
    pareto = archive.records(kind="pareto")
    assert len(pareto) == 2
    assert pareto[1].extra["cache_replays"] > 0


def test_service_requests_record_resolver_rung(archive, tmp_path):
    from repro.engine import AlgorithmCache
    from repro.service import PlanRegistry, PlanRequest, SynthesisResolver

    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )
    resolver = SynthesisResolver(registry)
    request = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
    assert resolver(request, None).ok
    assert resolver(request, None).ok  # warm: served without solving

    rows = archive.records(kind="service")
    assert len(rows) == 2
    assert [r.extra["rung"] for r in rows] == ["synthesized", "cache"]
    assert all(r.name == "Allgather/ring4" for r in rows)
    assert all(r.fingerprint for r in rows)

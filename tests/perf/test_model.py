"""ProbeTimeModel tests: determinism, cold start, and the frontier-identity
property — calibrated ``strategy="auto"`` may change *which dispatcher
runs*, never the frontier bytes it commits."""

import json

import pytest

from repro.core import pareto_synthesize
from repro.core.pareto import resolve_strategy
from repro.perf import (
    KNOWN_STRATEGIES,
    ProbeTimeModel,
    ambient_model,
    feature_key,
    set_ambient_model,
    strategy_features,
)
from repro.telemetry.archive import (
    PerfArchive,
    RunRecord,
    host_context,
)
from repro.topology import ring


FEATURES = {"nodes": 4, "k": 0, "chunks": 0}


def _pareto_record(strategy, wall_s, *, features=FEATURES, host=None, **over):
    fields = dict(
        kind="pareto",
        name="Allgather/ring:4",
        features=dict(features),
        strategy=strategy,
        wall_s=wall_s,
        host=host if host is not None else host_context(),
    )
    fields.update(over)
    return RunRecord(**fields)


def _history(fast, slow, *, samples=3, ratio=10.0):
    """A history where ``fast`` is consistently ``ratio`` times quicker."""
    records = []
    for index in range(samples):
        base = 0.1 + 0.01 * index
        records.append(_pareto_record(fast, base))
        records.append(_pareto_record(slow, base * ratio))
    return records


# ----------------------------------------------------------------------
# Feature buckets
# ----------------------------------------------------------------------
def test_strategy_features_bucket_shape():
    assert strategy_features(ring(4), k=1, max_chunks=2) == {
        "nodes": 4, "k": 1, "chunks": 2,
    }
    assert strategy_features(ring(6)) == {"nodes": 6, "k": 0, "chunks": 0}
    assert feature_key({"k": 1, "nodes": 4, "chunks": 0}) \
        == feature_key({"nodes": 4, "chunks": 0, "k": 1})


# ----------------------------------------------------------------------
# Determinism and the pick rule
# ----------------------------------------------------------------------
def test_prediction_is_order_independent():
    records = _history("serial", "incremental")
    forward = ProbeTimeModel(records)
    backward = ProbeTimeModel(reversed(records))
    assert forward.predict(FEATURES) == backward.predict(FEATURES) == "serial"
    assert forward.report() == backward.report()


def test_pick_uses_median_not_mean():
    # serial: median 0.1 but one huge outlier; parallel: flat 0.5.
    records = [
        _pareto_record("serial", 0.1),
        _pareto_record("serial", 0.1),
        _pareto_record("serial", 100.0),
        _pareto_record("parallel", 0.5),
        _pareto_record("parallel", 0.5),
        _pareto_record("parallel", 0.5),
    ]
    assert ProbeTimeModel(records).predict(FEATURES) == "serial"


def test_tie_breaks_lexicographically():
    records = _history("parallel", "speculative", ratio=1.0)
    assert ProbeTimeModel(records).predict(FEATURES) == "parallel"


def test_cold_start_returns_none():
    assert ProbeTimeModel([]).predict(FEATURES) is None
    # One strategy's history alone proves nothing about alternatives.
    one_sided = ProbeTimeModel([_pareto_record("serial", 0.1)] * 5)
    assert one_sided.predict(FEATURES) is None
    # Two strategies but under min_samples each: still cold.
    thin = ProbeTimeModel(
        [_pareto_record("serial", 0.1), _pareto_record("parallel", 0.2)],
        min_samples=2,
    )
    assert thin.predict(FEATURES) is None


def test_ingest_rejects_uncalibratable_records():
    model = ProbeTimeModel()
    assert not model.ingest(RunRecord(kind="sweep", strategy="serial", wall_s=1.0,
                                      features=FEATURES))
    assert not model.ingest(_pareto_record("auto", 1.0))          # not concrete
    assert not model.ingest(_pareto_record("serial", 0.0))        # no timing
    assert not model.ingest(_pareto_record("serial", 1.0, features={}))
    assert len(model) == 0


def test_foreign_host_records_never_calibrate():
    from repro.telemetry.archive import host_fingerprint

    alien = {"hostname": "big-box", "cpu_count": 96, "python": "3.12.0"}
    records = _history("serial", "incremental")
    # A much faster foreign history for the *other* strategy must not leak in.
    records += [
        _pareto_record("incremental", 0.001, host=alien) for _ in range(10)
    ]
    model = ProbeTimeModel(records, host=host_fingerprint())
    assert model.predict(FEATURES) == "serial"
    assert model.ingested == len(_history("serial", "incremental"))


def test_different_feature_buckets_do_not_mix():
    records = _history("serial", "incremental")
    other = {"nodes": 8, "k": 0, "chunks": 0}
    model = ProbeTimeModel(records)
    assert model.predict(other) is None


def test_report_marks_the_pick():
    model = ProbeTimeModel(_history("serial", "incremental"))
    rows = model.report()
    picked = {row["strategy"]: row["picked"] for row in rows}
    assert picked == {"serial": True, "incremental": False}
    assert all(row["count"] == 3 for row in rows)


# ----------------------------------------------------------------------
# resolve_strategy: measured pick with static fallback
# ----------------------------------------------------------------------
def test_resolve_strategy_switches_on_contrasting_histories():
    """The acceptance criterion: two opposite histories, two picks."""
    features = strategy_features(ring(4))
    serial_wins = ProbeTimeModel(_history("serial", "incremental"))
    incremental_wins = ProbeTimeModel(_history("incremental", "serial"))
    assert serial_wins.predict(features) == "serial"
    assert incremental_wins.predict(features) == "incremental"

    pick_a = resolve_strategy(ring(4), cpu_count=8, model=serial_wins)
    pick_b = resolve_strategy(ring(4), cpu_count=8, model=incremental_wins)
    assert (pick_a, pick_b) == ("serial", "incremental")


def test_resolve_strategy_static_fallback_when_cold():
    cold = ProbeTimeModel([])
    measured = resolve_strategy(ring(4), cpu_count=8, model=cold)
    static = resolve_strategy(ring(4), cpu_count=8, model="off")
    assert measured == static == "incremental"
    # Large instances still escalate under the static thresholds.
    assert resolve_strategy(ring(8), cpu_count=8, model=cold) == "speculative"


def test_serial_guard_beats_the_model():
    # Even a history that says "speculative" loses to a one-core host.
    model = ProbeTimeModel(_history("speculative", "serial"))
    assert resolve_strategy(ring(4), cpu_count=1, model=model) == "serial"
    assert resolve_strategy(ring(4), cpu_count=8, max_workers=1, model=model) \
        == "serial"


def test_broken_model_falls_back_to_static():
    class Exploding:
        def predict(self, features):
            raise RuntimeError("archive on fire")

    assert resolve_strategy(ring(4), cpu_count=8, model=Exploding()) \
        == resolve_strategy(ring(4), cpu_count=8, model="off")


def test_model_recommending_garbage_is_ignored():
    class Liar:
        def predict(self, features):
            return "quantum"

    assert resolve_strategy(ring(4), cpu_count=8, model=Liar()) \
        == resolve_strategy(ring(4), cpu_count=8, model="off")


# ----------------------------------------------------------------------
# The ambient model
# ----------------------------------------------------------------------
def test_ambient_model_reads_archive_and_tracks_changes(tmp_path):
    archive = PerfArchive(tmp_path / "perf")
    model = ambient_model(archive)
    assert model.predict(FEATURES) is None

    for record in _history("serial", "incremental"):
        record.host = {}  # stamp with the real host at append time
        archive.append(record)
    # The memo keys on segment (name, size, mtime): new appends invalidate.
    refreshed = ambient_model(archive)
    assert refreshed is not model
    assert refreshed.predict(FEATURES) == "serial"
    # No change -> the cached model comes back without a reload.
    assert ambient_model(archive) is refreshed


def test_set_ambient_model_override():
    pinned = ProbeTimeModel(_history("serial", "incremental"))
    previous = set_ambient_model(pinned)
    try:
        assert ambient_model() is pinned
        assert resolve_strategy(ring(4), cpu_count=8) == "serial"
    finally:
        set_ambient_model(previous)


# ----------------------------------------------------------------------
# Frontier identity: the property calibration must preserve
# ----------------------------------------------------------------------
def _frontier_bytes(**kwargs):
    frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=3, **kwargs)
    return json.dumps(frontier.to_dict(include_timing=False), sort_keys=True)


def test_calibrated_auto_never_changes_frontier_bytes():
    """Whatever the model picks, the committed frontier is byte-identical."""
    reference = _frontier_bytes(strategy="serial")
    assert _frontier_bytes(strategy="incremental") == reference

    for winner in ("serial", "incremental"):
        loser = "incremental" if winner == "serial" else "serial"
        previous = set_ambient_model(ProbeTimeModel(_history(winner, loser)))
        try:
            assert resolve_strategy(ring(4), cpu_count=8) == winner
            assert _frontier_bytes(strategy="auto") == reference
        finally:
            set_ambient_model(previous)

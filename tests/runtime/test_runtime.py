"""Tests for lowering, execution, simulation and code generation."""

import pytest

from repro.baselines import nccl_allgather, nccl_allreduce, ring_allgather, single_ring
from repro.core import make_instance, synthesize
from repro.runtime import (
    ExecutionError,
    Instruction,
    LoweringError,
    OpCode,
    Program,
    ProgramError,
    Simulator,
    execute,
    generate_cuda_like_source,
    lower,
    lower_all_protocols,
    simulate,
    write_source,
)
from repro.topology import dgx1, ring


@pytest.fixture(scope="module")
def ring4_allgather():
    result = synthesize(make_instance("Allgather", ring(4), 1, 2, 3))
    assert result.is_sat
    return result.algorithm


@pytest.fixture(scope="module")
def ring4_topology():
    return ring(4)


class TestLowering:
    def test_lower_produces_matched_program(self, ring4_allgather):
        program = lower(ring4_allgather)
        program.validate()
        assert program.num_ranks == 4
        assert program.num_steps == ring4_allgather.num_steps
        # Every send has a matching receive.
        sends = sum(len(r.sends()) for r in program.ranks)
        recvs = sum(len(r.receives()) for r in program.ranks)
        assert sends == recvs == ring4_allgather.total_sends

    def test_multi_kernel_inserts_barriers(self, ring4_allgather):
        program = lower(ring4_allgather, protocol="multi_kernel_push")
        barriers = [
            i for r in program.ranks for i in r.instructions if i.op is OpCode.BARRIER
        ]
        assert len(barriers) == ring4_allgather.num_steps * program.num_ranks

    def test_unknown_protocol_rejected(self, ring4_allgather):
        with pytest.raises(LoweringError):
            lower(ring4_allgather, protocol="carrier_pigeon")

    def test_lower_all_protocols(self, ring4_allgather):
        programs = lower_all_protocols(ring4_allgather)
        assert set(programs) == {"single_kernel_push", "multi_kernel_push", "multi_kernel_memcpy"}

    def test_reduce_sends_become_recv_reduce(self):
        topo = ring(4)
        allgather = ring_allgather(topo, single_ring(topo))
        from repro.core import invert_algorithm

        program = lower(invert_algorithm(allgather))
        reduce_recvs = [
            i for r in program.ranks for i in r.instructions if i.op is OpCode.RECV_REDUCE
        ]
        assert reduce_recvs

    def test_program_validation_catches_unmatched_pairs(self):
        program = Program(name="bad", collective="X", num_ranks=2, num_chunks=1, chunks_per_node=1)
        program.rank(0).append(Instruction(op=OpCode.SEND, chunk=0, peer=1, step=0))
        with pytest.raises(ProgramError):
            program.validate()


class TestExecution:
    def test_synthesized_allgather_executes_correctly(self, ring4_allgather):
        program = lower(ring4_allgather)
        result = execute(program, ring4_allgather)
        assert result.transfers == ring4_allgather.total_sends
        assert result.steps_executed == ring4_allgather.num_steps

    def test_nccl_allgather_executes_correctly(self):
        algorithm = nccl_allgather()
        result = execute(lower(algorithm), algorithm)
        # 8 ranks x 6 rings x 7 steps sends.
        assert result.transfers == 336

    def test_nccl_allreduce_reduces_and_broadcasts(self):
        algorithm = nccl_allreduce()
        result = execute(lower(algorithm), algorithm)
        assert result.reduced_transfers == 336
        assert result.transfers == 672

    def test_corrupted_program_detected(self, ring4_allgather):
        program = lower(ring4_allgather)
        # Drop every instruction of rank 0: its sends never happen, so some
        # postcondition chunk is missing at the end.
        program.ranks[0].instructions = []
        with pytest.raises(ExecutionError):
            execute(program, ring4_allgather)


class TestSimulator:
    def test_larger_inputs_take_longer(self, ring4_allgather, ring4_topology):
        simulator = Simulator(ring4_topology)
        small = simulator.simulate_algorithm(ring4_allgather, 1 << 10)
        large = simulator.simulate_algorithm(ring4_allgather, 1 << 24)
        assert large.total_time_s > small.total_time_s

    def test_step_count_matches(self, ring4_allgather, ring4_topology):
        result = Simulator(ring4_topology).simulate_algorithm(ring4_allgather, 1 << 16)
        assert result.num_steps == ring4_allgather.num_steps
        assert result.algorithmic_bandwidth() > 0

    def test_latency_vs_bandwidth_crossover_on_dgx1(self):
        # The 2-step latency-optimal Allgather beats NCCL's 7-step ring at
        # small sizes; the ring wins (or ties) at very large sizes.
        topo = dgx1()
        latency_optimal = synthesize(make_instance("Allgather", topo, 1, 2, 2)).algorithm
        baseline = nccl_allgather(topo)
        simulator = Simulator(topo)
        small_lat = simulator.simulate_algorithm(latency_optimal, 1 << 10).total_time_s
        small_ring = simulator.simulate_algorithm(baseline, 1 << 10).total_time_s
        big_lat = simulator.simulate_algorithm(latency_optimal, 1 << 28).total_time_s
        big_ring = simulator.simulate_algorithm(baseline, 1 << 28).total_time_s
        assert small_lat < small_ring
        assert big_ring < big_lat

    def test_memcpy_protocol_helps_only_large_buffers(self):
        topo = dgx1()
        algorithm = nccl_allgather(topo)
        simulator = Simulator(topo)
        push_small = simulator.simulate_algorithm(algorithm, 1 << 10, protocol="single_kernel_push")
        memcpy_small = simulator.simulate_algorithm(algorithm, 1 << 10, protocol="multi_kernel_memcpy")
        push_big = simulator.simulate_algorithm(algorithm, 1 << 28, protocol="single_kernel_push")
        memcpy_big = simulator.simulate_algorithm(algorithm, 1 << 28, protocol="multi_kernel_memcpy")
        assert memcpy_small.total_time_s > push_small.total_time_s
        assert memcpy_big.total_time_s < push_big.total_time_s

    def test_unknown_protocol_rejected(self, ring4_allgather, ring4_topology):
        program = lower(ring4_allgather)
        program.protocol = "quantum"
        with pytest.raises(Exception):
            Simulator(ring4_topology).simulate(program, 1024)

    def test_module_level_simulate_wrapper(self, ring4_allgather, ring4_topology):
        direct = simulate(ring4_allgather, ring4_topology, 1 << 16)
        via_program = simulate(lower(ring4_allgather), ring4_topology, 1 << 16)
        assert direct.total_time_s == pytest.approx(via_program.total_time_s)


class TestCodegen:
    def test_source_structure(self, ring4_allgather):
        program = lower(ring4_allgather)
        source = generate_cuda_like_source(program)
        # One case per rank under a rank switch.
        assert "switch (rank)" in source
        for rank in range(4):
            assert f"case {rank}:" in source
        # Push copies with threadfence-before-flag signalling.
        assert "push_chunk" in source
        assert "__threadfence" in source
        assert "wait(" in source

    def test_memcpy_protocol_emits_cudamemcpy(self, ring4_allgather):
        program = lower(ring4_allgather, protocol="multi_kernel_memcpy")
        source = generate_cuda_like_source(program)
        assert "cudaMemcpyAsync" in source
        assert "for (int step = 0" in source

    def test_reduce_emits_accumulation(self):
        topo = ring(4)
        from repro.core import invert_algorithm

        allgather = ring_allgather(topo, single_ring(topo))
        program = lower(invert_algorithm(allgather))
        source = generate_cuda_like_source(program)
        assert "push_chunk_reduce" in source

    def test_write_source(self, ring4_allgather, tmp_path):
        program = lower(ring4_allgather)
        path = tmp_path / "kernel.cu"
        text = write_source(program, str(path))
        assert path.read_text() == text

"""Degraded-mode planning: fault board, registry invalidation, replanning.

Covers the fault-tolerance ladder end to end — FaultRequest validation,
the board's salted coalescing keys, routing-table/cache invalidation on
fault transitions, resolver replanning against the degraded fabric, the
hardened broker (bounded waits, resolver crash accounting), and the
DGX-1 acceptance scenario over real HTTP.
"""

import threading

import pytest

from repro.engine import AlgorithmCache
from repro.faults import (
    FaultError,
    FaultInjectionError,
    FaultSet,
    LinkDegraded,
    LinkDown,
    execute_with_faults,
)
from repro.runtime import execute, lower
from repro.service import (
    Broker,
    FaultBoard,
    FaultRequest,
    FaultResponse,
    PlanRegistry,
    PlanRequest,
    PlanningService,
    ServerThread,
    ServiceError,
    SynthesisResolver,
    apply_fault_request,
    make_server,
    request_fault,
    request_plan,
    routing_key,
)
from repro.topology import dgx1, ring


@pytest.fixture
def registry(tmp_path):
    return PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )


PINNED = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
ROUTED = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)

LINK_DOWN_01 = LinkDown(0, 1).to_json()


def used_links(algorithm):
    return {(s.src, s.dst) for step in algorithm.steps for s in step.sends}


class TestFaultRequestValidation:
    def test_round_trip(self):
        request = FaultRequest("ring:4", "register", (LINK_DOWN_01,))
        assert FaultRequest.from_json(request.to_json()) == request

    def test_unknown_action_rejected(self):
        with pytest.raises(ServiceError):
            FaultRequest("ring:4", "explode").validate()

    def test_register_requires_faults(self):
        with pytest.raises(ServiceError):
            FaultRequest("ring:4", "register").validate()

    def test_status_takes_no_faults(self):
        with pytest.raises(ServiceError):
            FaultRequest("ring:4", "status", (LINK_DOWN_01,)).validate()

    def test_malformed_fault_payload_rejected(self):
        with pytest.raises(ServiceError):
            FaultRequest("ring:4", "register", ({"kind": "gremlin"},)).validate()

    def test_bad_topology_spec_rejected(self):
        with pytest.raises(ServiceError):
            FaultRequest("nope:banana", "status").validate()

    def test_response_round_trip(self):
        response = FaultResponse(
            status="ok", topology="ring:4", action="register",
            faults=[LINK_DOWN_01], fingerprint="abc",
            degraded={"name": "ring4!deg-abc", "links_removed": 1},
            invalidated={"tables": 1, "cache_entries": 2},
        )
        restored = FaultResponse.from_json(response.to_json())
        assert restored == response
        assert "invalidated 1 tables / 2 cache entries" in restored.summary()


class TestFaultBoard:
    def test_healthy_board_is_transparent(self):
        board = FaultBoard()
        topology = ring(4)
        assert not board.get(topology)
        assert board.apply(topology) is topology
        assert board.salt(topology) == ""
        # Healthy fabric: the broker key is byte-identical to the unsalted one.
        assert board.salted_key(PINNED) == PINNED.request_key()

    def test_register_merges_and_clear_drops(self):
        board = FaultBoard()
        topology = ring(4)
        active = board.register(topology, FaultSet.of(LinkDown(0, 1)))
        assert len(active) == 1
        active = board.register(topology, FaultSet.of(LinkDown(1, 2)))
        assert len(active) == 2
        dropped = board.clear(topology)
        assert len(dropped) == 2
        assert not board.get(topology)

    def test_bad_registration_leaves_board_untouched(self):
        board = FaultBoard()
        topology = ring(4)
        board.register(topology, FaultSet.of(LinkDown(0, 1)))
        with pytest.raises(FaultError):
            board.register(topology, FaultSet.of(LinkDown(0, 2)))  # no chord in a ring
        assert len(board.get(topology)) == 1

    def test_salted_key_changes_with_fault_state(self):
        board = FaultBoard()
        topology = ring(4)
        healthy_key = board.salted_key(PINNED)
        board.register(topology, FaultSet.of(LinkDown(0, 1)))
        faulted_key = board.salted_key(PINNED)
        assert faulted_key != healthy_key
        board.register(topology, FaultSet.of(LinkDown(1, 2)))
        assert board.salted_key(PINNED) != faulted_key  # new fault, new epoch
        board.clear(topology)
        assert board.salted_key(PINNED) == healthy_key

    def test_degraded_view_drops_the_dead_link(self):
        board = FaultBoard()
        topology = ring(4)
        board.register(topology, FaultSet.of(LinkDown(0, 1)))
        degraded = board.apply(topology)
        assert (0, 1) not in degraded.links()
        assert degraded.name.startswith("ring4!deg-")

    def test_snapshot_lists_active_faults(self):
        board = FaultBoard()
        board.register(ring(4), FaultSet.of(LinkDown(0, 1)))
        snapshot = board.snapshot()
        assert snapshot["active_topologies"] == 1
        (described,) = snapshot["faults"]["ring4"]
        assert "0" in described and "1" in described


class TestRegistryInvalidation:
    def test_cost_change_addresses_a_fresh_routing_table(self, registry):
        """The routing key covers alpha/beta: degrading a link re-keys the
        table instead of silently reusing routes computed for old costs."""
        topology = ring(4)
        degraded = FaultSet.of(LinkDegraded(0, 1, beta_factor=4.0)).apply(topology)
        assert degraded.links() == topology.links()  # same structure...
        assert routing_key("Allgather", topology, synchrony=1) != routing_key(
            "Allgather", degraded, synchrony=1
        )

    def test_invalidate_drops_tables_and_cache_entries(self, registry):
        resolver = SynthesisResolver(registry)
        assert resolver(PINNED, None).ok
        assert resolver(ROUTED, None).ok
        assert len(registry.tables()) == 1
        dropped = registry.invalidate(ring(4))
        assert dropped["tables"] == 1
        assert dropped["cache_entries"] >= 1
        assert len(registry.tables()) == 0
        # The next resolution is a genuine re-solve, not a stale hit.
        solves_before = resolver.stats()["solves"]
        assert resolver(PINNED, None).source == "synthesized"
        assert resolver.stats()["solves"] == solves_before + 1

    def test_invalidate_spares_unrelated_topologies(self, registry):
        resolver = SynthesisResolver(registry)
        assert resolver(PINNED, None).ok
        dropped = registry.invalidate(ring(6))
        assert dropped == {"tables": 0, "cache_entries": 0}
        assert resolver(PINNED, None).source == "cache"


class TestApplyFaultRequest:
    def test_register_reports_degradation_and_invalidation(self, registry):
        resolver = SynthesisResolver(registry)
        assert resolver(ROUTED, None).ok
        board = FaultBoard()
        response = apply_fault_request(
            board,
            FaultRequest("ring:4", "register", (LINK_DOWN_01,)),
            registry=registry,
        )
        assert response.ok
        assert response.degraded["links_removed"] == 1
        assert response.invalidated["tables"] == 1
        assert board.get(ring(4))

    def test_status_reads_without_invalidating(self, registry):
        resolver = SynthesisResolver(registry)
        assert resolver(ROUTED, None).ok
        board = FaultBoard()
        board.register(ring(4), FaultSet.of(LinkDown(0, 1)))
        response = apply_fault_request(
            board, FaultRequest("ring:4", "status"), registry=registry
        )
        assert response.ok and len(response.faults) == 1
        assert response.invalidated is None
        assert len(registry.tables()) == 1

    def test_clear_also_invalidates_the_degraded_artifacts(self, registry):
        """Plans synthesized *while degraded* are stale once the fault is
        repaired: clear must drop them along with the healthy ones."""
        board = FaultBoard()
        board.register(ring(4), FaultSet.of(LinkDown(0, 1)))
        resolver = SynthesisResolver(registry, fault_board=board)
        assert resolver(ROUTED, None).ok  # builds a table for the DEGRADED ring
        assert len(registry.tables()) == 1
        response = apply_fault_request(
            board, FaultRequest("ring:4", "clear"), registry=registry
        )
        assert response.ok and not response.faults
        assert response.invalidated["tables"] == 1
        assert len(registry.tables()) == 0

    def test_invalid_fault_is_an_error_response(self, registry):
        board = FaultBoard()
        response = apply_fault_request(
            board,
            FaultRequest("ring:4", "register", (LinkDown(0, 2).to_json(),)),
            registry=registry,
        )
        assert response.status == "error"
        assert "0" in response.error and not board.get(ring(4))


class TestResolverReplanning:
    def test_routed_replan_avoids_the_dead_link(self, registry):
        board = FaultBoard()
        resolver = SynthesisResolver(registry, fault_board=board)
        healthy = resolver(ROUTED, None)
        assert healthy.ok
        board.register(ring(4), FaultSet.of(LinkDown(0, 1)))
        registry.invalidate(ring(4))
        replanned = resolver(ROUTED, None)
        assert replanned.ok
        plan = replanned.plan_object()
        assert (0, 1) not in used_links(plan.algorithm)
        assert resolver.stats()["replans"] >= 1

    def test_pinned_replan_verifies_against_degraded_topology(self, registry):
        board = FaultBoard()
        resolver = SynthesisResolver(registry, fault_board=board)
        board.register(ring(4), FaultSet.of(LinkDown(0, 1)))
        response = resolver(
            PlanRequest("Allgather", "ring:4", chunks=1, steps=3, rounds=4), None
        )
        assert response.ok
        plan = response.plan_object()  # re-verifies on import
        assert (0, 1) not in used_links(plan.algorithm)
        assert "!deg-" in plan.algorithm.topology.name


class TestBrokerHardening:
    def test_deadline_less_wait_is_bounded_by_the_server(self):
        broker = Broker(max_wait_s=0.2)
        ticket = broker.submit(PINNED)  # nobody will ever resolve this job
        response = ticket.wait()  # no timeout, no request deadline
        assert response.status == "timeout"
        assert broker.stats()["expired"] == 1
        broker.close()

    def test_resolver_crash_is_counted_and_surfaced(self, registry):
        calls = {"n": 0}
        inner = SynthesisResolver(registry)

        def flaky(request, remaining_s):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("resolver bug")
            return inner(request, remaining_s)

        with PlanningService(registry, num_workers=1, resolver=flaky) as service:
            crashed = service.request(PINNED, timeout=60.0)
            assert crashed.status == "error"
            assert "resolver failed" in crashed.error
            assert crashed.error_kind == "RuntimeError"
            # The pool survives the crash and keeps serving.
            recovered = service.request(PINNED, timeout=60.0)
            assert recovered.ok
            assert service.stats()["broker"]["resolver_crashes"] == 1


class TestConcurrentFaultAndPlan:
    def test_plans_racing_a_fault_registration_stay_consistent(self, registry):
        """Satellite race test: plan requests issued concurrently with a
        fault registration must each be internally consistent — whichever
        epoch they land in, the plan they carry re-verifies, and any plan
        issued under the degraded epoch avoids the dead link."""
        board = FaultBoard()
        resolver = SynthesisResolver(registry, fault_board=board)
        with PlanningService(
            registry, num_workers=4, resolver=resolver, fault_board=board
        ) as service:
            barrier = threading.Barrier(5)
            responses = [None] * 4
            fault_response = [None]

            def plan(index):
                barrier.wait()
                responses[index] = service.request(ROUTED, timeout=120.0)

            def fault():
                barrier.wait()
                fault_response[0] = service.fault(
                    FaultRequest("ring:4", "register", (LINK_DOWN_01,))
                )

            threads = [threading.Thread(target=plan, args=(i,)) for i in range(4)]
            threads.append(threading.Thread(target=fault))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)

            assert fault_response[0].ok
            for response in responses:
                assert response is not None and response.ok
                plan_obj = response.plan_object()  # re-verifies
                if "!deg-" in plan_obj.algorithm.topology.name:
                    assert (0, 1) not in used_links(plan_obj.algorithm)

            # After the dust settles the degraded epoch is authoritative.
            final = service.request(ROUTED, timeout=120.0)
            assert final.ok
            assert (0, 1) not in used_links(final.plan_object().algorithm)


class TestDGX1DegradedModeEndToEnd:
    """The acceptance scenario over real HTTP: LinkDown on a DGX-1
    service invalidates the stale plan, the next /v1/plan is verified
    against the degraded topology, and the fault-injecting executor
    proves the old plan fails where the new one runs clean."""

    REQUEST = PlanRequest(
        "Allgather", "dgx1", chunks=1, steps=2, rounds=2, deadline_s=120
    )

    def test_link_down_replan_old_fails_new_runs(self, registry):
        with PlanningService(registry, num_workers=2) as service:
            with ServerThread(make_server(service, port=0)) as thread:
                url = thread.url

                cold = request_plan(url, self.REQUEST)
                assert cold.ok and cold.source == "synthesized"
                old_plan = cold.plan_object()
                dead = sorted(used_links(old_plan.algorithm))[0]

                fault = request_fault(
                    url,
                    FaultRequest("dgx1", "register", (LinkDown(*dead).to_json(),)),
                )
                assert fault.ok
                assert fault.degraded["links_removed"] == 1
                assert fault.invalidated["cache_entries"] >= 1

                replanned = request_plan(url, self.REQUEST)
                assert replanned.ok and replanned.source == "synthesized"
                new_plan = replanned.plan_object()  # verified against degraded fabric
                assert "!deg-" in new_plan.algorithm.topology.name
                assert dead not in used_links(new_plan.algorithm)

                # The executor is the ground truth: the pre-fault plan dies
                # on the dead link, the replanned one completes.
                faults = FaultSet.of(LinkDown(*dead))
                healthy_topology = dgx1()
                with pytest.raises(FaultInjectionError) as excinfo:
                    execute_with_faults(
                        lower(old_plan.algorithm), old_plan.algorithm,
                        faults, healthy_topology,
                    )
                assert (excinfo.value.first.src, excinfo.value.first.dst) == dead
                result = execute_with_faults(
                    lower(new_plan.algorithm), new_plan.algorithm,
                    faults, healthy_topology,
                )
                assert result.transfers == execute(
                    lower(new_plan.algorithm), new_plan.algorithm
                ).transfers

                # Status sees the fault; clear repairs the fabric and drops
                # the degraded artifacts so healthy plans come back fresh.
                status = request_fault(url, FaultRequest("dgx1", "status"))
                assert status.ok and len(status.faults) == 1
                cleared = request_fault(url, FaultRequest("dgx1", "clear"))
                assert cleared.ok and not cleared.faults
                assert cleared.invalidated["cache_entries"] >= 1
                healthy_again = request_plan(url, self.REQUEST)
                assert healthy_again.ok
                assert "!deg-" not in healthy_again.plan_object().algorithm.topology.name

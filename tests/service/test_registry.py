"""Plan registry: routing-table construction, persistence, trust boundary."""

import json

import pytest

from repro.core import pareto_synthesize
from repro.engine import AlgorithmCache
from repro.service import (
    PlanRegistry,
    PlanRequest,
    RegistryError,
    build_routing_table,
    routing_key,
)
from repro.topology import ring


@pytest.fixture
def registry(tmp_path):
    return PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )


@pytest.fixture(scope="module")
def frontier():
    return pareto_synthesize("Allgather", ring(4), k=1, max_steps=3)


class TestBuildRoutingTable:
    def test_entries_tile_all_sizes(self, frontier):
        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        table.verify()  # tiling + plan re-verification
        assert table.entries[0].min_bytes == 0.0
        assert table.entries[-1].max_bytes is None
        for size in (1, 512, 1 << 20, 1 << 30):
            assert table.route(size) is not None

    def test_winner_matches_simulator_argmin(self, frontier):
        from repro.runtime import Simulator, lower

        algorithms = frontier.algorithms()
        table = build_routing_table("Allgather", ring(4), algorithms, synchrony=1)
        simulator = Simulator(ring(4))
        for size in table.probe_sizes:
            entry = table.route(size)
            best = min(
                algorithms,
                key=lambda a: simulator.simulate(lower(a), size).total_time_s,
            )
            assert entry.plan_name == best.name

    def test_probe_times_recorded_per_algorithm(self, frontier):
        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        for name, times in table.probe_times.items():
            assert len(times) == len(table.probe_sizes)
            assert all(t > 0 for t in times)

    def test_empty_frontier_rejected(self):
        with pytest.raises(RegistryError):
            build_routing_table("Allgather", ring(4), [])

    def test_json_roundtrip(self, frontier):
        from repro.service.registry import RoutingTable

        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        again = RoutingTable.from_json(
            json.loads(json.dumps(table.to_json())), verify=True
        )
        assert [e.to_json() for e in again.entries] == [e.to_json() for e in table.entries]
        assert again.route(1 << 20).plan_name == table.route(1 << 20).plan_name


class TestRegistryPersistence:
    def test_route_miss_then_hit(self, registry, frontier):
        request = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)
        assert registry.route(request) is None
        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        registry.install_table(request, table)
        routed = registry.route(request)
        assert routed is not None
        plan, entry, loaded = routed
        assert entry.covers(1 << 20)
        plan.algorithm.verify()
        assert registry.stats()["route_hits"] == 1

    def test_tables_memoized_until_file_changes(self, registry, frontier):
        request = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)
        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        key = registry.install_table(request, table)
        first = registry.load_table(key)
        assert registry.load_table(key) is first  # same object: memoized
        # Rewrite the file; the memo must refresh.
        path = registry._table_path(key)
        data = json.loads(path.read_text())
        path.write_text(json.dumps(data))
        import os

        os.utime(path, (path.stat().st_atime, path.stat().st_mtime + 10))
        assert registry.load_table(key) is not first

    def test_tampered_table_is_a_miss(self, registry, frontier):
        request = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)
        table = build_routing_table(
            "Allgather", ring(4), frontier.algorithms(), synchrony=1
        )
        key = registry.install_table(request, table)
        registry._tables.clear()  # force a disk reload
        path = registry._table_path(key)
        data = json.loads(path.read_text())
        # Drop every send from one embedded plan: spec re-verification on
        # load must reject the whole table (fail closed, serve a miss).
        name = next(iter(data["plans"]))
        for step in data["plans"][name]["algorithm"]["steps"]:
            step["sends"] = []
        path.write_text(json.dumps(data))
        assert registry.route(request) is None

    def test_routing_key_is_structural_and_size_free(self):
        key = routing_key("Allgather", ring(4), synchrony=1)
        assert key == routing_key("Allgather", ring(4), synchrony=1)
        assert key != routing_key("Allgather", ring(4), synchrony=2)
        assert key != routing_key("Allgather", ring(6), synchrony=1)
        assert key != routing_key("Broadcast", ring(4), synchrony=1)


class TestPinnedLookups:
    def test_lookup_pinned_round_trips_through_cache(self, registry):
        from repro.core import make_instance, synthesize

        request = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
        assert registry.lookup_pinned(request) is None
        synthesize(
            make_instance("Allgather", ring(4), 1, 2, 3), cache=registry.cache
        )
        plan = registry.lookup_pinned(request)
        assert plan is not None
        assert plan.algorithm.signature() == (1, 2, 3)

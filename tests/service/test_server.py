"""HTTP layer: in-process round-trips plus the CI subprocess smoke path
(`repro serve` + `repro request` + `repro run` as real processes)."""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.engine import AlgorithmCache
from repro.service import (
    PlanRegistry,
    PlanRequest,
    PlanningService,
    ServerThread,
    ServiceError,
    check_health,
    make_server,
    request_plan,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")


@pytest.fixture
def service(tmp_path):
    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )
    with PlanningService(registry, num_workers=2) as svc:
        yield svc


@pytest.fixture
def server_url(service):
    with ServerThread(make_server(service, port=0)) as thread:
        yield thread.url


class TestHTTP:
    def test_health_and_stats(self, server_url):
        assert check_health(server_url)
        with urllib.request.urlopen(server_url + "/v1/stats", timeout=5) as reply:
            stats = json.loads(reply.read())
        assert "broker" in stats and "registry" in stats

    def test_plan_round_trip(self, server_url):
        request = PlanRequest(
            "Allgather", "ring:4", chunks=1, steps=2, rounds=3, deadline_s=60
        )
        response = request_plan(server_url, request)
        assert response.ok and response.source == "synthesized"
        plan = response.plan_object()  # re-verifies against the spec
        assert plan.algorithm.signature() == (1, 2, 3)
        warm = request_plan(server_url, request)
        assert warm.ok and warm.source == "cache"

    def test_unsat_surfaces_as_http_422_with_payload(self, server_url):
        response = request_plan(
            server_url,
            PlanRequest("Allgather", "ring:4", chunks=1, steps=1, rounds=1, deadline_s=60),
        )
        assert response.status == "error"
        assert "unsatisfiable" in response.error

    def test_malformed_body_is_a_clean_400(self, server_url):
        body = b"{not json"
        http_request = urllib.request.Request(
            server_url + "/v1/plan", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(http_request, timeout=5)
        assert info.value.code == 400

    def test_unknown_endpoint_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(server_url + "/nope", timeout=5)
        assert info.value.code == 404

    def test_unreachable_service_raises_service_error(self):
        with pytest.raises(ServiceError):
            request_plan(
                "http://127.0.0.1:9",  # discard port: nothing listens
                PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3),
                timeout=0.5,
            )


class TestSubprocessSmoke:
    """The CI smoke step: serve, request and run as real processes."""

    def _env(self, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        return env

    def test_serve_request_run_round_trip(self, tmp_path):
        env = self._env(tmp_path / "cache")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--cache-dir", str(tmp_path / "cache"),
                "--routes-dir", str(tmp_path / "routes"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            url = match.group(0)
            for _ in range(100):
                if check_health(url):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("service never became healthy")

            plan_path = tmp_path / "plan.json"
            request = subprocess.run(
                [
                    sys.executable, "-m", "repro", "request",
                    "Allgather", "-t", "ring:4", "-C", "1", "-S", "2", "-R", "3",
                    "--deadline", "120", "--url", url, "-o", str(plan_path),
                ],
                capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
            )
            assert request.returncode == 0, request.stderr
            assert "-> ok" in request.stdout
            assert plan_path.exists()
            assert json.loads(plan_path.read_text())["format"] == "repro-sccl/plan"

            # The returned bundle re-verifies on import and executes.
            run = subprocess.run(
                [sys.executable, "-m", "repro", "run", str(plan_path)],
                capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
            )
            assert run.returncode == 0, run.stderr
            assert "re-verified" in run.stdout
            assert "functional execution: OK" in run.stdout
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            finally:
                server.stdout.close()

    def test_request_local_answers_without_a_server(self, tmp_path):
        env = self._env(tmp_path / "cache")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "request",
                "Allgather", "-t", "ring:4", "-C", "1", "-S", "2", "-R", "3",
                "--local", "--cache-dir", str(tmp_path / "cache"),
            ],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "-> ok" in result.stdout

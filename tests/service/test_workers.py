"""Resolver ladder (cache -> synthesis -> baseline) and the service facade."""

import threading

import pytest

from repro.engine import AlgorithmCache
from repro.service import (
    PlanRegistry,
    PlanRequest,
    PlanningService,
    SynthesisResolver,
    baseline_algorithm,
)
from repro.solver import SolveResult
from repro.topology import ring


@pytest.fixture
def registry(tmp_path):
    return PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )


PINNED = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
ROUTED = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)


class TestResolverLadder:
    def test_pinned_miss_synthesizes_then_hits_cache(self, registry):
        resolver = SynthesisResolver(registry)
        cold = resolver(PINNED, None)
        assert cold.ok and cold.source == "synthesized"
        cold.plan_object().algorithm.verify()
        warm = resolver(PINNED, None)
        assert warm.ok and warm.source == "cache"
        assert resolver.stats()["solves"] == 1
        assert resolver.stats()["registry_hits"] == 1

    def test_unsat_request_is_an_error(self, registry):
        resolver = SynthesisResolver(registry)
        response = resolver(
            PlanRequest("Allgather", "ring:4", chunks=1, steps=1, rounds=1), None
        )
        assert response.status == "error"
        assert "unsatisfiable" in response.error

    def test_unknown_degrades_to_baseline(self, registry, monkeypatch):
        """Solver deadline exceeded -> a verified baseline, not an error."""
        from repro.core.synthesizer import SynthesisResult

        def fake_synthesize(instance, **kwargs):
            return SynthesisResult(instance=instance, status=SolveResult.UNKNOWN)

        import repro.core

        monkeypatch.setattr(repro.core, "synthesize", fake_synthesize)
        resolver = SynthesisResolver(registry)
        response = resolver(PINNED, 0.1)
        assert response.ok and response.source == "baseline"
        plan = response.plan_object()
        assert plan.algorithm.collective == "Allgather"
        assert plan.provenance["backend"] == "baseline"

    def test_unknown_without_baseline_times_out(self, registry, monkeypatch):
        from repro.core.synthesizer import SynthesisResult

        def fake_synthesize(instance, **kwargs):
            return SynthesisResult(instance=instance, status=SolveResult.UNKNOWN)

        import repro.core

        monkeypatch.setattr(repro.core, "synthesize", fake_synthesize)
        resolver = SynthesisResolver(registry)
        # Alltoall has no hand-written baseline in repro.baselines.
        response = resolver(
            PlanRequest("Alltoall", "fc:4", chunks=1, steps=1, rounds=1), 0.1
        )
        assert response.status == "timeout"
        assert "no baseline" in response.error

    def test_routed_builds_persists_and_reroutes(self, registry):
        resolver = SynthesisResolver(registry)
        cold = resolver(ROUTED, None)
        assert cold.ok and cold.source == "synthesized"
        assert cold.route is not None
        warm = resolver(ROUTED, None)
        assert warm.ok and warm.source == "registry"
        # A different size reuses the same persisted table: no new solve.
        other = resolver(
            PlanRequest("Allgather", "ring:4", size_bytes=1 << 10, synchrony=1), None
        )
        assert other.ok and other.source == "registry"
        assert resolver.stats()["solves"] == 1

    def test_combining_pinned_request_is_a_clean_error(self, registry):
        resolver = SynthesisResolver(registry)
        response = resolver(
            PlanRequest("Allreduce", "ring:4", chunks=1, steps=2, rounds=3), None
        )
        assert response.status == "error"
        assert "combining" in response.error

    def test_routed_combining_collective_works(self, registry):
        # Routed mode goes through pareto_synthesize, which handles the
        # Section 3.5 delegation for combining collectives.
        resolver = SynthesisResolver(registry)
        response = resolver(
            PlanRequest("Allreduce", "ring:4", size_bytes=1 << 20, synchrony=1), None
        )
        assert response.ok
        plan = response.plan_object()
        assert plan.algorithm.collective == "Allreduce"


class TestRoutedBuildCoalescing:
    def test_mixed_size_burst_builds_one_table(self, registry):
        """Routed requests for different sizes share one routing table:
        a cold concurrent burst must run one frontier build, not N."""
        resolver = SynthesisResolver(registry)
        sizes = [1 << (10 + i) for i in range(8)]
        with PlanningService(registry, num_workers=4, resolver=resolver) as service:
            barrier = threading.Barrier(len(sizes))
            responses = [None] * len(sizes)

            def caller(index):
                barrier.wait()
                responses[index] = service.request(
                    PlanRequest(
                        "Allgather", "ring:4", size_bytes=sizes[index], synchrony=1
                    ),
                    timeout=120.0,
                )

            threads = [
                threading.Thread(target=caller, args=(i,)) for i in range(len(sizes))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)

        assert all(r is not None and r.ok for r in responses)
        assert resolver.stats()["solves"] == 1  # one pareto sweep for all sizes
        assert len(registry.tables()) == 1


class TestBaselines:
    @pytest.mark.parametrize(
        "collective", ["Allgather", "Allreduce", "Reducescatter", "Broadcast", "Reduce"]
    )
    def test_baseline_algorithms_verify(self, collective):
        algorithm = baseline_algorithm(collective, ring(4))
        assert algorithm is not None
        algorithm.verify()
        assert algorithm.collective == collective

    def test_no_baseline_for_alltoall(self):
        assert baseline_algorithm("Alltoall", ring(4)) is None


class TestEndToEndCoalescing:
    def test_eight_concurrent_identical_requests_one_solve(self, registry):
        """The acceptance criterion through the REAL resolver: 8 threads,
        one backend solve, seven coalesced waiters."""
        resolver = SynthesisResolver(registry)
        with PlanningService(registry, num_workers=4, resolver=resolver) as service:
            barrier = threading.Barrier(8)
            responses = [None] * 8

            def caller(index):
                barrier.wait()
                responses[index] = service.request(PINNED, timeout=60.0)

            threads = [threading.Thread(target=caller, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)

            stats = service.stats()

        assert all(r is not None and r.ok for r in responses)
        for response in responses:
            response.plan_object().algorithm.verify()
        # Every caller that shared another's in-flight work is marked; the
        # solver ran at most once (cache hits can substitute under unlucky
        # scheduling, but never a second solve).
        assert resolver.stats()["solves"] <= 1
        coalesced = stats["broker"]["coalesced"]
        solves = resolver.stats()["solves"]
        hits = resolver.stats()["registry_hits"]
        assert coalesced + solves + hits == 8

"""Broker semantics under contention: coalescing, deadlines, cancellation.

The acceptance criterion for the service PR lives here: N concurrent
identical requests perform exactly one unit of backend work, counted by a
shim resolver (and, one level up, by the real resolver's solve counter in
``test_server.py``'s sibling tests).
"""

import threading
import time

import pytest

from repro.service import (
    Broker,
    BrokerError,
    PlanRequest,
    PlanResponse,
    PlanningService,
    WorkerPool,
)

REQUEST = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
OTHER = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=4)


class CountingResolver:
    """Shim backend: counts invocations, optionally gated on an event."""

    def __init__(self, *, gate: threading.Event = None, delay: float = 0.0):
        self.calls = 0
        self.keys = []
        self.gate = gate
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, request, remaining_s=None):
        if self.gate is not None:
            assert self.gate.wait(10.0), "resolver gate never opened"
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.calls += 1
            self.keys.append(request.request_key())
        return PlanResponse(status="ok", request_key=request.request_key(), source="cache")


class TestCoalescing:
    def test_identical_queued_requests_coalesce_to_one_job(self):
        broker = Broker()
        tickets = [broker.submit(REQUEST) for _ in range(8)]
        stats = broker.stats()
        assert stats["submitted"] == 8
        assert stats["coalesced"] == 7
        assert stats["pending"] == 1  # one job for eight callers
        assert tickets[0].key == tickets[7].key

    def test_eight_threads_one_synthesis(self):
        """8 concurrent identical PlanRequests -> exactly 1 backend call."""
        gate = threading.Event()
        resolver = CountingResolver(gate=gate)
        broker = Broker()
        pool = WorkerPool(broker, resolver, num_workers=4)
        pool.start()
        try:
            barrier = threading.Barrier(8)
            responses = [None] * 8

            def caller(index):
                barrier.wait()
                ticket = broker.submit(REQUEST)
                responses[index] = ticket.wait(10.0)

            threads = [threading.Thread(target=caller, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            # Open the gate only after every caller has submitted, so the
            # in-flight window provably spans all eight submissions.
            while broker.stats()["submitted"] < 8:
                time.sleep(0.005)
            gate.set()
            for thread in threads:
                thread.join(10.0)
        finally:
            pool.stop()

        assert resolver.calls == 1
        assert all(r is not None and r.ok for r in responses)
        assert sum(1 for r in responses if r.coalesced) == 7
        assert sum(1 for r in responses if not r.coalesced) == 1
        assert broker.stats()["coalescing_ratio"] == pytest.approx(7 / 8)

    def test_distinct_requests_do_not_coalesce(self):
        resolver = CountingResolver()
        broker = Broker()
        pool = WorkerPool(broker, resolver, num_workers=2)
        pool.start()
        try:
            first = broker.submit(REQUEST)
            second = broker.submit(OTHER)
            assert first.wait(10.0).ok and second.wait(10.0).ok
        finally:
            pool.stop()
        assert resolver.calls == 2
        assert broker.stats()["coalesced"] == 0

    def test_completed_job_does_not_capture_later_requests(self):
        resolver = CountingResolver()
        broker = Broker()
        pool = WorkerPool(broker, resolver, num_workers=1)
        pool.start()
        try:
            assert broker.submit(REQUEST).wait(10.0).ok
            assert broker.submit(REQUEST).wait(10.0).ok
        finally:
            pool.stop()
        # No in-flight overlap: two submissions, two resolutions.
        assert resolver.calls == 2


class TestDeadlines:
    def test_wait_expires_into_timeout_response(self):
        gate = threading.Event()  # never opened: the job hangs
        broker = Broker()
        pool = WorkerPool(broker, CountingResolver(gate=gate), num_workers=1)
        pool.start()
        try:
            ticket = broker.submit(REQUEST)
            response = ticket.wait(0.2)
            assert response.status == "timeout"
            assert "deadline" in response.error
            assert broker.stats()["expired"] == 1
        finally:
            gate.set()
            pool.stop()

    def test_request_deadline_is_the_default_wait(self):
        gate = threading.Event()
        broker = Broker()
        pool = WorkerPool(broker, CountingResolver(gate=gate), num_workers=1)
        pool.start()
        try:
            impatient = PlanRequest(
                "Allgather", "ring:4", chunks=1, steps=2, rounds=3, deadline_s=0.2
            )
            started = time.monotonic()
            response = broker.submit(impatient).wait()
            assert response.status == "timeout"
            assert time.monotonic() - started < 5.0
        finally:
            gate.set()
            pool.stop()

    def test_late_result_still_lands_for_patient_waiters(self):
        gate = threading.Event()
        broker = Broker()
        pool = WorkerPool(broker, CountingResolver(gate=gate), num_workers=1)
        pool.start()
        try:
            impatient = broker.submit(REQUEST)
            patient = broker.submit(REQUEST)
            assert impatient.wait(0.1).status == "timeout"
            gate.set()
            response = patient.wait(10.0)
            assert response.ok and response.coalesced
        finally:
            pool.stop()


class TestCancellation:
    def test_cancel_before_start_drops_the_job(self):
        broker = Broker()  # no workers: the job stays queued
        ticket = broker.submit(REQUEST)
        assert ticket.cancel()
        assert ticket.wait(0.1).status == "cancelled"
        stats = broker.stats()
        assert stats["cancelled"] == 1
        assert stats["dropped_jobs"] == 1
        assert broker.next_job(timeout=0) is None  # nothing left to run

    def test_cancel_one_of_many_keeps_the_job(self):
        broker = Broker()
        first = broker.submit(REQUEST)
        second = broker.submit(REQUEST)
        assert first.cancel()
        assert broker.stats()["dropped_jobs"] == 0
        pool = WorkerPool(broker, CountingResolver(), num_workers=1)
        pool.start()
        try:
            assert second.wait(10.0).ok
        finally:
            pool.stop()

    def test_cancel_after_completion_returns_false(self):
        broker = Broker()
        pool = WorkerPool(broker, CountingResolver(), num_workers=1)
        pool.start()
        try:
            ticket = broker.submit(REQUEST)
            assert ticket.wait(10.0).ok
            assert not ticket.cancel()
        finally:
            pool.stop()

    def test_dropped_job_is_recoalescable(self):
        broker = Broker()
        broker.submit(REQUEST).cancel()
        fresh = broker.submit(REQUEST)
        assert not fresh.coalesced  # the dropped job must not capture it
        assert broker.stats()["pending"] == 1


class TestFailuresAndLimits:
    def test_resolver_exception_becomes_error_response(self):
        def explode(request, remaining_s=None):
            raise RuntimeError("backend on fire")

        broker = Broker()
        pool = WorkerPool(broker, explode, num_workers=1)
        pool.start()
        try:
            response = broker.submit(REQUEST).wait(10.0)
            assert response.status == "error"
            assert "backend on fire" in response.error
            # The pool survives a resolver crash and serves the next job.
            ok = broker.submit(OTHER).wait(10.0)
            assert ok.status == "error"
        finally:
            pool.stop()

    def test_queue_limit_rejects_excess_jobs(self):
        broker = Broker(max_pending=1)
        broker.submit(REQUEST)
        broker.submit(REQUEST)  # coalesces: not a new job
        with pytest.raises(BrokerError):
            broker.submit(OTHER)

    def test_closed_broker_rejects_submissions(self):
        broker = Broker()
        broker.close()
        with pytest.raises(BrokerError):
            broker.submit(REQUEST)

    def test_invalid_request_rejected_at_submit(self):
        from repro.service import ServiceError

        broker = Broker()
        with pytest.raises(ServiceError):
            broker.submit(PlanRequest("Allgather", "ring:4", chunks=1))


class TestServiceFacade:
    def test_stop_drains_pending_jobs(self):
        """Stopping the service must not strand submitted tickets."""
        resolver = CountingResolver(delay=0.05)
        service = PlanningService(resolver=resolver, num_workers=1)
        service.start()
        tickets = [service.submit(r) for r in (REQUEST, OTHER)]
        service.stop()
        for ticket in tickets:
            assert ticket.wait(5.0).ok

"""PlanRequest/PlanResponse: validation, wire forms, content addressing."""

import pytest

from repro.engine import fingerprint
from repro.service import PlanRequest, PlanResponse, ServiceError
from repro.topology import ring


class TestRequestValidation:
    def test_pinned_and_routed_modes(self):
        pinned = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
        assert pinned.mode == "pinned"
        routed = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20)
        assert routed.mode == "routed"

    def test_partial_pin_rejected(self):
        with pytest.raises(ServiceError):
            PlanRequest("Allgather", "ring:4", chunks=1, steps=2).mode

    def test_neither_mode_rejected(self):
        with pytest.raises(ServiceError):
            PlanRequest("Allgather", "ring:4").mode

    def test_bad_topology_spec_rejected(self):
        with pytest.raises(ServiceError):
            PlanRequest("Allgather", "mesh:4", chunks=1, steps=2, rounds=3).validate()

    def test_bad_ranges_rejected(self):
        with pytest.raises(ServiceError):
            PlanRequest("Allgather", "ring:4", chunks=0, steps=2, rounds=3).validate()
        with pytest.raises(ServiceError):
            PlanRequest("Allgather", "ring:4", size_bytes=0).validate()
        with pytest.raises(ServiceError):
            PlanRequest(
                "Allgather", "ring:4", chunks=1, steps=2, rounds=3, deadline_s=0
            ).validate()


class TestContentAddressing:
    def test_pinned_key_reuses_engine_fingerprint(self):
        request = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
        assert request.request_key() == fingerprint("Allgather", ring(4), 1, 2, 3)

    def test_deadline_and_backend_do_not_affect_key(self):
        base = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
        patient = PlanRequest(
            "Allgather", "ring:4", chunks=1, steps=2, rounds=3,
            deadline_s=1.0, backend="cdcl",
        )
        assert base.request_key() == patient.request_key()

    def test_topology_spelling_does_not_affect_key(self):
        # Content addressing is structural: ring:4 at bandwidth 1 written
        # two ways must coalesce.
        a = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
        b = PlanRequest("Allgather", "ring:4:1", chunks=1, steps=2, rounds=3)
        assert a.request_key() == b.request_key()

    def test_routed_keys_distinguish_work(self):
        base = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20)
        assert base.request_key() == PlanRequest(
            "Allgather", "ring:4", size_bytes=1 << 20
        ).request_key()
        assert base.request_key() != PlanRequest(
            "Allgather", "ring:4", size_bytes=1 << 21
        ).request_key()
        assert base.request_key() != PlanRequest(
            "Allgather", "ring:6", size_bytes=1 << 20
        ).request_key()
        assert base.request_key() != PlanRequest(
            "Broadcast", "ring:4", size_bytes=1 << 20
        ).request_key()


class TestWireForms:
    def test_request_roundtrip(self):
        request = PlanRequest(
            "Allgather", "ring:4", chunks=2, steps=3, rounds=4,
            deadline_s=5.0, backend="cdcl",
        )
        again = PlanRequest.from_json(request.to_json())
        assert again == request

    def test_routed_request_roundtrip(self):
        request = PlanRequest("Allgather", "dgx1", size_bytes=1 << 20, synchrony=1)
        again = PlanRequest.from_json(request.to_json())
        assert again == request
        assert again.request_key() == request.request_key()

    def test_from_json_validates(self):
        with pytest.raises(ServiceError):
            PlanRequest.from_json({"collective": "Allgather"})
        with pytest.raises(ServiceError):
            PlanRequest.from_json("not an object")

    def test_response_roundtrip(self):
        response = PlanResponse(
            status="ok", request_key="abc", plan=None, source="cache",
            solve_time_s=0.5, wait_time_s=0.1, coalesced=True,
            route={"plan": "x"},
        )
        again = PlanResponse.from_json(response.to_json())
        assert again.status == "ok" and again.coalesced and again.route == {"plan": "x"}

    def test_response_rejects_bad_status(self):
        with pytest.raises(ServiceError):
            PlanResponse.from_json({"status": "weird"})

    def test_plan_object_requires_plan(self):
        with pytest.raises(ServiceError):
            PlanResponse(status="error", request_key="k").plan_object()

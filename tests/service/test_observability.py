"""Service-layer observability: the /v1/metrics endpoint, the engine
section of /v1/stats, counter survival across restarts, and reset().
"""

import time
import urllib.request

import pytest

from repro.engine import AlgorithmCache
from repro.service import (
    PlanRegistry,
    PlanRequest,
    PlanningService,
    ServerThread,
    fetch_metrics,
    fetch_stats,
    make_server,
)
from repro.telemetry import Metrics, set_metrics

PINNED = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)


@pytest.fixture
def metrics():
    fresh = Metrics()
    previous = set_metrics(fresh)
    yield fresh
    set_metrics(previous)


@pytest.fixture
def service(tmp_path, metrics):
    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "algorithms"),
        routes_dir=tmp_path / "routes",
    )
    with PlanningService(registry, num_workers=2) as svc:
        yield svc


@pytest.fixture
def server_url(service):
    with ServerThread(make_server(service, port=0)) as thread:
        yield thread.url


class TestMetricsEndpoint:
    def test_prometheus_exposition_after_a_request(self, service, server_url, metrics):
        assert service.request(PINNED, timeout=120.0).ok

        endpoint = server_url + "/v1/metrics"
        with urllib.request.urlopen(endpoint, timeout=5) as reply:
            assert reply.headers["Content-Type"] == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            body = reply.read().decode("utf-8")
        assert "# TYPE repro_solver_calls_total counter" in body
        assert "repro_solver_calls_total" in body
        assert 'repro_broker_requests_total{outcome="enqueued"} 1' in body
        assert 'repro_broker_jobs_total{outcome="completed"} 1' in body
        assert 'repro_resolver_rung_total{rung="synthesized"} 1' in body
        assert "repro_metrics_since_timestamp_seconds" in body

        # The typed client helper returns the same payload.
        assert fetch_metrics(server_url) == body

    def test_metrics_match_stats_on_one_run(self, service, server_url, metrics):
        assert service.request(PINNED, timeout=120.0).ok
        # Identical re-request: answered from the registry, no new solve.
        assert service.request(PINNED, timeout=120.0).ok

        stats = fetch_stats(server_url)
        broker = stats["broker"]
        assert metrics.total(
            "repro_broker_requests_total", outcome="enqueued"
        ) + metrics.total(
            "repro_broker_requests_total", outcome="coalesced"
        ) == broker["submitted"]
        assert (
            metrics.total("repro_broker_jobs_total", outcome="completed")
            == broker["completed"]
        )
        resolver = stats["resolver"]
        assert metrics.total("repro_resolver_rung_total") == sum(
            resolver["rungs"].values()
        )


class TestStatsEngineSection:
    def test_engine_counters_and_windows(self, service, server_url):
        assert service.request(PINNED, timeout=120.0).ok
        stats = fetch_stats(server_url)

        engine = stats["engine"]
        assert set(engine["bounds"]) == {"probed", "pruned", "cut"}
        cache = engine["cache"]
        assert 0.0 <= cache["hit_rate"] <= 1.0
        # A pinned first-time synthesis stores through the cache.
        assert cache["misses"] >= 1

        # Satellite 2: every counter snapshot dates its own window.
        assert stats["broker"]["since"] == pytest.approx(time.time(), abs=300.0)
        assert stats["broker"]["uptime_s"] >= 0.0
        assert stats["resolver"]["since"] == pytest.approx(time.time(), abs=300.0)
        assert stats["resolver"]["rungs"].get("synthesized") == 1


class TestCountersAcrossRestarts:
    def test_counters_survive_stop_start(self, tmp_path, metrics):
        registry = PlanRegistry(
            cache=AlgorithmCache(tmp_path / "algorithms"),
            routes_dir=tmp_path / "routes",
        )
        service = PlanningService(registry, num_workers=2)
        service.start()
        try:
            assert service.request(PINNED, timeout=120.0).ok
            before = service.broker.stats()
            service.stop()
            service.start()
            after = service.broker.stats()
            # A restart is not a counter reset: scrapers would read a
            # rate discontinuity as lost work.
            assert after["submitted"] == before["submitted"] == 1
            assert after["completed"] == before["completed"] == 1
            assert after["since"] == before["since"]
            assert service.resolver.stats()["solves"] == 1
        finally:
            service.stop()

    def test_reset_stats_is_explicit_and_restamps_since(self, tmp_path, metrics):
        registry = PlanRegistry(
            cache=AlgorithmCache(tmp_path / "algorithms"),
            routes_dir=tmp_path / "routes",
        )
        with PlanningService(registry, num_workers=2) as service:
            assert service.request(PINNED, timeout=120.0).ok
            old_since = service.broker.stats()["since"]
            time.sleep(0.01)
            service.reset_stats()
            broker = service.broker.stats()
            assert broker["submitted"] == 0 and broker["completed"] == 0
            assert broker["resolver_crashes"] == 0
            assert broker["since"] > old_since
            resolver = service.resolver.stats()
            assert resolver["solves"] == 0 and resolver["rungs"] == {}

"""MSCCL-style XML round-trip and trust-boundary tests.

The acceptance criterion for the interchange layer: emit -> import ->
re-verify yields an algorithm equal to the original (same signature, same
rounds, same send sets), and tampered documents are rejected rather than
silently repaired.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.core import make_instance, synthesize
from repro.core.combining import synthesize_allreduce, synthesize_reduce
from repro.interchange import (
    InterchangeError,
    from_msccl_xml,
    read_msccl_xml,
    to_msccl_xml,
    write_msccl_xml,
)
from repro.topology import dgx1, line, ring


def synthesize_allgather(chunks=1, steps=2, rounds=3, nodes=4):
    result = synthesize(make_instance("Allgather", ring(nodes), chunks, steps, rounds))
    assert result.is_sat
    return result.algorithm


def assert_schedules_equal(imported, original):
    assert imported.collective == original.collective
    assert imported.signature() == original.signature()
    assert imported.combining == original.combining
    assert imported.precondition == original.precondition
    assert imported.postcondition == original.postcondition
    assert [s.rounds for s in imported.steps] == [s.rounds for s in original.steps]
    assert [frozenset(s.sends) for s in imported.steps] == [
        frozenset(s.sends) for s in original.steps
    ]


class TestRoundTrip:
    def test_allgather_ring(self):
        original = synthesize_allgather()
        imported = from_msccl_xml(to_msccl_xml(original))
        assert_schedules_equal(imported, original)

    def test_imported_algorithm_reverifies(self):
        imported = from_msccl_xml(to_msccl_xml(synthesize_allgather()))
        imported.verify()

    def test_broadcast_nonzero_root(self):
        result = synthesize(
            make_instance("Broadcast", ring(4), 2, 3, 3, root=2)
        )
        assert result.is_sat
        imported = from_msccl_xml(to_msccl_xml(result.algorithm))
        assert_schedules_equal(imported, result.algorithm)

    def test_combining_allreduce(self):
        result = synthesize_allreduce(ring(4), 1, 2, 3)
        assert result.is_sat
        imported = from_msccl_xml(to_msccl_xml(result.algorithm))
        assert_schedules_equal(imported, result.algorithm)
        assert imported.combining
        # recv-reduce steps survive the round trip as "rrc"
        assert 'type="rrc"' in to_msccl_xml(result.algorithm)

    def test_combining_reduce(self):
        result = synthesize_reduce(line(3), 1, 2, 2, root=1)
        assert result.is_sat
        imported = from_msccl_xml(to_msccl_xml(result.algorithm))
        assert_schedules_equal(imported, result.algorithm)

    def test_reemission_is_stable(self):
        original = synthesize_allgather()
        xml = to_msccl_xml(original)
        assert to_msccl_xml(from_msccl_xml(xml)) == xml

    def test_file_io(self, tmp_path):
        original = synthesize_allgather()
        path = write_msccl_xml(original, tmp_path / "algo.xml")
        assert_schedules_equal(read_msccl_xml(path), original)

    def test_explicit_topology_overrides_embedded(self):
        original = synthesize_allgather()
        imported = from_msccl_xml(to_msccl_xml(original), topology=ring(4))
        assert_schedules_equal(imported, original)

    def test_dgx1_allgather(self):
        result = synthesize(make_instance("Allgather", dgx1(), 1, 2, 2))
        assert result.is_sat
        imported = from_msccl_xml(to_msccl_xml(result.algorithm))
        assert_schedules_equal(imported, result.algorithm)


def mutate(xml: str, fn) -> str:
    root = ET.fromstring(xml)
    fn(root)
    return ET.tostring(root, encoding="unicode")


class TestTrustBoundary:
    def test_malformed_xml_rejected(self):
        with pytest.raises(InterchangeError, match="malformed"):
            from_msccl_xml("<algo><gpu></algo>")

    def test_unknown_collective_rejected(self):
        xml = to_msccl_xml(synthesize_allgather())
        with pytest.raises(InterchangeError, match="unknown collective"):
            from_msccl_xml(mutate(xml, lambda a: a.set("coll", "bitonic_sort")))

    def test_orphaned_send_rejected(self):
        # Drop one recv step: its matching send has no receiver.
        def drop_one_recv(algo):
            for gpu in algo.findall("gpu"):
                for tb in gpu.findall("tb"):
                    for step in tb.findall("step"):
                        if step.get("type") == "r":
                            tb.remove(step)
                            return
        xml = to_msccl_xml(synthesize_allgather())
        with pytest.raises(InterchangeError, match="matching"):
            from_msccl_xml(mutate(xml, drop_one_recv))

    def test_injected_send_on_missing_link_rejected(self):
        # Rewire a threadblock to a non-neighbour: ring 0->2 does not exist.
        def rewire(algo):
            gpu0 = next(g for g in algo.findall("gpu") if g.get("id") == "0")
            for tb in gpu0.findall("tb"):
                if tb.get("send") == "1":
                    tb.set("send", "2")
                    # keep the matching recv consistent so the schedule-level
                    # cross-check passes and verification must catch it
                    gpu2 = next(g for g in algo.findall("gpu") if g.get("id") == "2")
                    gpu1 = next(g for g in algo.findall("gpu") if g.get("id") == "1")
                    for peer_tb in gpu1.findall("tb"):
                        if peer_tb.get("recv") == "0":
                            gpu1.remove(peer_tb)
                            gpu2.append(peer_tb)
                    return
        xml = to_msccl_xml(synthesize_allgather())
        with pytest.raises(InterchangeError):
            from_msccl_xml(mutate(xml, rewire))

    def test_wrong_chunk_counts_rejected(self):
        xml = to_msccl_xml(synthesize_allgather())
        with pytest.raises(InterchangeError, match="G="):
            from_msccl_xml(mutate(xml, lambda a: a.set("nchunksperloop", "8")))

    def test_schedule_round_tampering_rejected(self):
        # Editing a phase without updating nrounds breaks self-consistency.
        def shrink_rounds(algo):
            phases = algo.find("schedule").findall("phase")
            phases[-1].set("rounds", "1")
        xml = to_msccl_xml(synthesize_allgather())  # declares nrounds=3
        with pytest.raises(InterchangeError, match="nrounds"):
            from_msccl_xml(mutate(xml, shrink_rounds))

    def test_overloaded_link_rejected(self):
        # Doubling a send on a unit-bandwidth link must fail the C5 check.
        def overload(algo):
            algo.set("nrounds", "2")
            for phase in algo.find("schedule").findall("phase"):
                phase.set("rounds", "1")
        result = synthesize(make_instance("Allgather", ring(4), 2, 2, 4))
        assert result.is_sat
        xml = to_msccl_xml(result.algorithm)
        with pytest.raises(InterchangeError):
            from_msccl_xml(mutate(xml, overload))

    def test_topology_node_count_mismatch_rejected(self):
        xml = to_msccl_xml(synthesize_allgather())
        with pytest.raises(InterchangeError, match="nodes"):
            from_msccl_xml(xml, topology=ring(6))

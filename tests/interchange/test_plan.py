"""Plan-bundle round-trip, fingerprint and provenance tests."""

import json

import pytest

from repro.core import make_instance, synthesize
from repro.interchange import (
    AlgorithmPlan,
    InterchangeError,
    plan_from_algorithm,
    plan_from_result,
    read_plan,
    topology_fingerprint,
    write_plan,
)
from repro.topology import dgx1, ring


@pytest.fixture(scope="module")
def allgather_result():
    result = synthesize(make_instance("Allgather", ring(4), 1, 2, 3))
    assert result.is_sat
    return result


class TestPlanRoundTrip:
    def test_json_roundtrip_verifies(self, allgather_result, tmp_path):
        plan = plan_from_result(allgather_result)
        path = write_plan(plan, tmp_path / "ag.json")
        restored = read_plan(path)
        restored.algorithm.verify()
        assert restored.algorithm.signature() == allgather_result.algorithm.signature()
        assert restored.fingerprint == plan.fingerprint

    def test_provenance_carried(self, allgather_result):
        plan = plan_from_result(allgather_result)
        data = plan.to_json()
        restored = AlgorithmPlan.from_json(data)
        assert restored.provenance["backend"] == allgather_result.backend
        assert restored.provenance["encoding"] == "sccl"
        assert restored.provenance["tool"]["name"] == "repro-sccl"
        assert restored.cost["steps"] == 2
        assert restored.cost["rounds"] == 3
        assert restored.cost["bandwidth_cost"] == [3, 1]

    def test_unsat_result_rejected(self):
        result = synthesize(make_instance("Allgather", ring(4), 1, 1, 1))
        assert result.is_unsat
        with pytest.raises(InterchangeError, match="unsat"):
            plan_from_result(result)


class TestFingerprint:
    def test_structural_not_nominal(self):
        import dataclasses

        topo = ring(4)
        renamed = dataclasses.replace(topo, name="other", alpha=1.0)
        assert topology_fingerprint(topo) == topology_fingerprint(renamed)
        assert topology_fingerprint(topo) != topology_fingerprint(ring(6))
        assert topology_fingerprint(topo) != topology_fingerprint(dgx1())

    def test_matches_topology(self, allgather_result):
        plan = plan_from_result(allgather_result)
        assert plan.matches_topology(ring(4))
        assert not plan.matches_topology(ring(6))


class TestTamperRejection:
    def test_tampered_topology_rejected(self, allgather_result):
        data = plan_from_result(allgather_result).to_json()
        data["algorithm"]["topology"]["constraints"].pop()
        with pytest.raises(InterchangeError, match="fingerprint"):
            AlgorithmPlan.from_json(data)

    def test_tampered_schedule_rejected(self, allgather_result):
        data = plan_from_result(allgather_result).to_json()
        data["algorithm"]["steps"][0]["sends"].pop()
        with pytest.raises(InterchangeError):
            AlgorithmPlan.from_json(data)

    def test_wrong_format_rejected(self):
        with pytest.raises(InterchangeError, match="format"):
            AlgorithmPlan.from_json({"format": "something-else"})

    def test_truncated_file_rejected(self, allgather_result, tmp_path):
        plan = plan_from_result(allgather_result)
        path = write_plan(plan, tmp_path / "ag.json")
        path.write_text(path.read_text()[:100])
        with pytest.raises(InterchangeError):
            read_plan(path)

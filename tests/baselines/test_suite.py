"""Tests for the baseline suite feeding bound-seeded synthesis.

The over-prune guard for the bounds layer is structural: every point the
ledger is seeded with must come from an algorithm that *verifies* on its
topology, so an infeasible "bound" can never enter the lattice.  These
tests pin that contract for every collective/topology pair the property
tests and benchmarks sweep.
"""

from fractions import Fraction

import pytest

from repro.baselines import BaselineAlgorithm, BaselineEntry, baseline_suite, nccl_table3
from repro.topology import dgx1, line, ring


SUITE_INSTANCES = [
    ("Allgather", dgx1()),
    ("Allgather", ring(4)),
    ("Allreduce", ring(4)),
    ("Reducescatter", ring(4)),
    ("Broadcast", ring(4)),
    ("Reduce", ring(4)),
    ("Broadcast", dgx1()),
]


class TestBaselineSuite:
    @pytest.mark.parametrize(
        "collective,topology", SUITE_INSTANCES,
        ids=[f"{c}-{t.name}" for c, t in SUITE_INSTANCES],
    )
    def test_every_suite_member_verifies(self, collective, topology):
        suite = baseline_suite(collective, topology)
        assert suite, f"no baseline applies to {collective} on {topology.name}"
        for baseline in suite:
            # verify() raises on any semantic violation; re-check here so a
            # future builder change cannot silently ship unverified bounds.
            baseline.algorithm.verify()

    @pytest.mark.parametrize(
        "collective,topology", SUITE_INSTANCES,
        ids=[f"{c}-{t.name}" for c, t in SUITE_INSTANCES],
    )
    def test_cost_matches_algorithm_accessors(self, collective, topology):
        for baseline in baseline_suite(collective, topology):
            steps, rounds, chunks = baseline.cost()
            assert steps == baseline.algorithm.num_steps
            assert rounds == baseline.algorithm.total_rounds
            assert chunks == baseline.algorithm.chunks_per_node
            assert steps >= 1 and rounds >= steps and chunks >= 1
            assert baseline.bandwidth_cost == Fraction(rounds, chunks)

    def test_dgx1_allgather_includes_nccl_bound(self):
        suite = baseline_suite("Allgather", dgx1())
        by_name = {b.name: b for b in suite}
        assert "nccl" in by_name
        # Table 3: (C, S, R) = (6, 7, 7) -> lattice cost (7, 7, 6).
        assert by_name["nccl"].cost() == (7, 7, 6)
        assert by_name["nccl"].bandwidth_cost == Fraction(7, 6)

    def test_ring4_allgather_ring_bound(self):
        suite = baseline_suite("Allgather", ring(4))
        by_name = {b.name: b for b in suite}
        assert "ring" in by_name
        # ring(4) is bidirectional, so single_ring finds two logical rings:
        # (C, S, R) = (2, 3, 3), lattice cost (3, 3, 2).
        assert by_name["ring"].cost() == (3, 3, 2)

    def test_inapplicable_builders_are_skipped(self):
        # line(3) has no Hamiltonian cycle, so the ring builder must be
        # skipped without failing the suite; NCCL's tables only model the
        # DGX-1 fabric, so it is skipped too.
        assert baseline_suite("Allgather", line(3)) == []
        # Gather has no hand-written baseline at all.
        assert baseline_suite("Gather", ring(4)) == []

    def test_wrapper_is_immutable(self):
        suite = baseline_suite("Allgather", ring(4))
        with pytest.raises(AttributeError):
            suite[0].name = "other"


class TestBaselineEntryCost:
    def test_table3_entries_expose_lattice_cost(self):
        for entry in nccl_table3(multiplier=2):
            assert entry.cost() == (entry.steps, entry.rounds, entry.chunks)

    def test_entry_cost_order(self):
        entry = BaselineEntry("Allgather/Reducescatter", 6, 7, 7)
        assert entry.cost() == (7, 7, 6)


class TestBaselineAlgorithmWrapper:
    def test_cost_reflects_wrapped_algorithm(self):
        suite = baseline_suite("Broadcast", ring(4))
        assert suite
        tree = next(b for b in suite if b.name == "tree")
        assert isinstance(tree, BaselineAlgorithm)
        steps, rounds, chunks = tree.cost()
        assert (chunks, steps, rounds) == tree.algorithm.signature()

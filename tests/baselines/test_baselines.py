"""Tests for the NCCL/RCCL baseline schedules (Table 3)."""

import pytest

from repro.baselines import (
    RingError,
    bfs_tree,
    nccl_allgather,
    nccl_allreduce,
    nccl_baseline,
    nccl_broadcast,
    nccl_reduce,
    nccl_reducescatter,
    nccl_table3,
    pipelined_broadcast,
    rccl_allgather,
    rccl_allreduce,
    rccl_baseline,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
    single_ring,
    tree_broadcast,
    tree_reduce,
)
from repro.topology import amd_z52, dgx1, ring


class TestTable3Signatures:
    """The baselines must land exactly on the (C, S, R) rows of Table 3."""

    def test_nccl_allgather_signature(self):
        assert nccl_allgather().signature() == (6, 7, 7)

    def test_nccl_reducescatter_signature(self):
        algo = nccl_reducescatter()
        assert algo.signature() == (6, 7, 7)
        assert algo.combining

    def test_nccl_allreduce_signature(self):
        assert nccl_allreduce().signature() == (48, 14, 14)

    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_nccl_broadcast_family(self, m):
        assert nccl_broadcast(m).signature() == (6 * m, 6 + m, 6 + m)

    @pytest.mark.parametrize("m", [1, 2])
    def test_nccl_reduce_family(self, m):
        algo = nccl_reduce(m)
        assert algo.signature() == (6 * m, 6 + m, 6 + m)
        assert algo.combining

    def test_table3_rows(self):
        rows = nccl_table3(multiplier=2)
        assert {(r.collective, r.chunks, r.steps, r.rounds) for r in rows} == {
            ("Allgather/Reducescatter", 6, 7, 7),
            ("Allreduce", 48, 14, 14),
            ("Broadcast/Reduce", 12, 8, 8),
        }

    def test_rccl_signatures(self):
        assert rccl_allgather().signature() == (2, 7, 7)
        assert rccl_allreduce().signature() == (16, 14, 14)


class TestBaselineValidity:
    """Every baseline must pass the same verification as synthesized algorithms."""

    @pytest.mark.parametrize(
        "builder",
        [nccl_allgather, nccl_allreduce, nccl_reducescatter, rccl_allgather, rccl_allreduce],
    )
    def test_baselines_verify(self, builder):
        builder().verify()

    def test_broadcast_reduce_verify(self):
        nccl_broadcast(2).verify()
        nccl_reduce(2).verify()

    def test_lookup_helpers(self):
        assert nccl_baseline("allgather").signature() == (6, 7, 7)
        assert nccl_baseline("broadcast", multiplier=2).signature() == (12, 8, 8)
        assert rccl_baseline("allreduce").signature() == (16, 14, 14)
        with pytest.raises(KeyError):
            nccl_baseline("alltoall")
        with pytest.raises(KeyError):
            rccl_baseline("broadcast")


class TestRingBuilders:
    def test_generic_ring_allgather(self):
        topo = ring(6)
        algo = ring_allgather(topo, single_ring(topo))
        algo.verify()
        assert algo.signature() == (2, 5, 5)

    def test_ring_must_cover_all_nodes(self):
        topo = ring(4)
        with pytest.raises(RingError):
            ring_allgather(topo, [[0, 1, 2]])

    def test_ring_must_use_real_links(self):
        topo = ring(4)
        with pytest.raises(RingError):
            ring_allgather(topo, [[0, 2, 1, 3]])

    def test_reduce_scatter_and_allreduce(self):
        topo = ring(4)
        rings = single_ring(topo)
        ring_reduce_scatter(topo, rings).verify()
        allreduce = ring_allreduce(topo, rings)
        allreduce.verify()
        assert allreduce.signature() == (8, 6, 6)

    def test_pipelined_broadcast_needs_positive_chunks(self):
        topo = ring(4)
        with pytest.raises(RingError):
            pipelined_broadcast(topo, single_ring(topo), chunks_per_ring=0)


class TestTrees:
    def test_bfs_tree_covers_topology(self):
        parents = bfs_tree(dgx1(), 0)
        assert len(parents) == 7
        assert 0 not in parents

    def test_tree_broadcast_on_dgx1_is_two_steps(self):
        algo = tree_broadcast(dgx1(), chunks=1)
        algo.verify()
        assert algo.num_steps == 2

    def test_tree_reduce_on_amd(self):
        algo = tree_reduce(amd_z52(), chunks=1)
        algo.verify()
        assert algo.combining

"""Tests for the Table 2 collective specifications."""

import pytest
from hypothesis import given, strategies as st

from repro.collectives import (
    COLLECTIVES,
    CollectiveError,
    CollectiveSpec,
    chunks_at,
    combining_collectives,
    get_collective,
    non_combining_collectives,
)


def test_all_paper_collectives_present():
    names = set(COLLECTIVES)
    assert {"Gather", "Allgather", "Alltoall", "Broadcast", "Scatter",
            "Reduce", "Reducescatter", "Allreduce"} <= names


def test_lookup_is_case_insensitive():
    assert get_collective("allgather").name == "Allgather"
    assert get_collective("ALLREDUCE").name == "Allreduce"


def test_unknown_collective():
    with pytest.raises(CollectiveError):
        get_collective("Gossip")


def test_combining_split():
    combining = {spec.name for spec in combining_collectives()}
    non_combining = {spec.name for spec in non_combining_collectives()}
    assert combining == {"Reduce", "Reducescatter", "Allreduce"}
    assert "Allgather" in non_combining
    assert combining.isdisjoint(non_combining)


def test_combining_point_to_inverse():
    assert get_collective("Reduce").inverse_of == "Broadcast"
    assert get_collective("Reducescatter").inverse_of == "Allgather"
    assert get_collective("Allreduce").inverse_of == "Allgather"


def test_global_chunk_counts_match_paper_conventions():
    # Table 4 footnote: for Reducescatter and Scatter, C is multiplied by 8.
    p = 8
    assert get_collective("Allgather").global_chunks(p, 6) == 48
    assert get_collective("Broadcast").global_chunks(p, 6) == 6
    assert get_collective("Scatter").global_chunks(p, 6) == 48
    assert get_collective("Alltoall").global_chunks(p, 24) == 192
    assert get_collective("Allreduce").global_chunks(p, 6) == 48


def test_per_node_roundtrip():
    spec = get_collective("Allgather")
    assert spec.per_node_chunks(8, spec.global_chunks(8, 5)) == 5
    with pytest.raises(CollectiveError):
        spec.per_node_chunks(8, 11)  # not divisible


def test_allgather_pre_post():
    spec = get_collective("Allgather")
    pre = spec.precondition(4, 2)
    post = spec.postcondition(4, 2)
    # Every node starts with its own 2 chunks and ends with all 8.
    for node in range(4):
        assert len(chunks_at(pre, node)) == 2
        assert len(chunks_at(post, node)) == 8
    assert pre <= post  # Allgather only adds copies


def test_broadcast_pre_post_root():
    spec = get_collective("Broadcast")
    pre = spec.precondition(4, 3, root=2)
    post = spec.postcondition(4, 3, root=2)
    assert chunks_at(pre, 2) == {0, 1, 2}
    assert chunks_at(pre, 0) == set()
    assert all(len(chunks_at(post, n)) == 3 for n in range(4))


def test_scatter_and_gather_are_reverses():
    scatter = get_collective("Scatter")
    gather = get_collective("Gather")
    assert scatter.precondition(4, 2, root=1) == gather.postcondition(4, 2, root=1)
    assert scatter.postcondition(4, 2, root=1) == gather.precondition(4, 2, root=1)


def test_alltoall_moves_every_nodes_data():
    spec = get_collective("Alltoall")
    pre = spec.precondition(4, 4)
    post = spec.postcondition(4, 4)
    # Balanced: each node starts and ends with 4 chunks.
    for node in range(4):
        assert len(chunks_at(pre, node)) == 4
        assert len(chunks_at(post, node)) == 4


def test_combining_collective_has_no_direct_relations():
    spec = get_collective("Allreduce")
    with pytest.raises(CollectiveError):
        spec.precondition(4, 1)
    with pytest.raises(CollectiveError):
        spec.postcondition(4, 1)


def test_negative_chunks_rejected():
    with pytest.raises(CollectiveError):
        get_collective("Allgather").global_chunks(4, -1)


@given(nodes=st.integers(2, 10), chunks=st.integers(1, 6))
def test_non_combining_pre_post_mention_same_chunks(nodes, chunks):
    for spec in non_combining_collectives():
        pre = spec.precondition(nodes, chunks)
        post = spec.postcondition(nodes, chunks)
        assert {c for (c, _) in pre} == {c for (c, _) in post}


@given(nodes=st.integers(2, 8), chunks=st.integers(1, 5))
def test_every_chunk_has_a_source_and_a_destination(nodes, chunks):
    for spec in non_combining_collectives():
        g = spec.global_chunks(nodes, chunks)
        pre = spec.precondition(nodes, chunks)
        post = spec.postcondition(nodes, chunks)
        for chunk in range(g):
            assert any(c == chunk for (c, _) in pre)
            assert any(c == chunk for (c, _) in post)

"""Tests for the Table 1 chunk-placement relations."""

import pytest
from hypothesis import given, strategies as st

from repro.collectives import (
    RelationError,
    all_nodes,
    chunk_count,
    chunks_at,
    is_function_of_chunk,
    nodes_with,
    root,
    scattered,
    transpose,
)


def test_all_relation():
    rel = all_nodes(3, 2)
    assert rel == frozenset({(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)})


def test_root_relation():
    rel = root(3, 4, root_node=2)
    assert rel == frozenset({(0, 2), (1, 2), (2, 2)})
    assert is_function_of_chunk(rel)


def test_root_out_of_range():
    with pytest.raises(RelationError):
        root(2, 4, root_node=7)


def test_scattered_relation():
    rel = scattered(8, 4)
    assert (0, 0) in rel and (1, 1) in rel and (4, 0) in rel and (7, 3) in rel
    assert is_function_of_chunk(rel)
    for node in range(4):
        assert len(chunks_at(rel, node)) == 2


def test_transpose_relation():
    # With G = P*C and P=4, chunk c goes to node (c // 4) % 4.
    rel = transpose(16, 4)
    assert (0, 0) in rel and (4, 1) in rel and (8, 2) in rel and (15, 3) in rel
    assert is_function_of_chunk(rel)


def test_negative_chunks_rejected():
    with pytest.raises(RelationError):
        scattered(-1, 4)
    with pytest.raises(RelationError):
        all_nodes(4, 0)


def test_helpers():
    rel = all_nodes(2, 3)
    assert chunks_at(rel, 1) == {0, 1}
    assert nodes_with(rel, 0) == {0, 1, 2}
    assert chunk_count(rel) == 2
    assert not is_function_of_chunk(rel)


@given(chunks=st.integers(1, 40), nodes=st.integers(1, 10))
def test_scattered_is_balanced_when_divisible(chunks, nodes):
    total = chunks * nodes
    rel = scattered(total, nodes)
    counts = [len(chunks_at(rel, n)) for n in range(nodes)]
    assert all(c == chunks for c in counts)


@given(chunks=st.integers(0, 60), nodes=st.integers(1, 8))
def test_relation_sizes(chunks, nodes):
    assert len(all_nodes(chunks, nodes)) == chunks * nodes
    assert len(root(chunks, nodes)) == chunks
    assert len(scattered(chunks, nodes)) == chunks
    assert len(transpose(chunks, nodes)) == chunks


@given(chunks=st.integers(1, 60), nodes=st.integers(1, 8))
def test_scattered_and_transpose_are_functions(chunks, nodes):
    assert is_function_of_chunk(scattered(chunks, nodes))
    assert is_function_of_chunk(transpose(chunks, nodes))

"""Round-trip serialization tests for the cache format.

The algorithm cache persists ``Algorithm.to_dict()`` as JSON; these tests
pin the invariant the cache relies on: serializing a synthesized algorithm
through actual JSON text and deserializing it yields an algorithm that
still passes full verification, for both a plain (non-combining) Allgather
and a combined (Reducescatter + Allgather) Allreduce.
"""

import json

from repro.core import Algorithm, make_instance, synthesize, synthesize_allreduce
from repro.topology import ring


def roundtrip(algorithm: Algorithm) -> Algorithm:
    text = json.dumps(algorithm.to_dict())
    return Algorithm.from_dict(json.loads(text))


class TestAllgatherRoundtrip:
    def test_json_roundtrip_verifies(self):
        result = synthesize(make_instance("Allgather", ring(4), 1, 2, 3))
        assert result.is_sat
        restored = roundtrip(result.algorithm)
        restored.verify()

    def test_roundtrip_preserves_schedule(self):
        result = synthesize(make_instance("Allgather", ring(4), 2, 3, 3))
        original = result.algorithm
        restored = roundtrip(original)
        assert restored.name == original.name
        assert restored.collective == original.collective
        assert restored.signature() == original.signature()
        assert restored.precondition == original.precondition
        assert restored.postcondition == original.postcondition
        assert [s.rounds for s in restored.steps] == [s.rounds for s in original.steps]
        assert [s.sends for s in restored.steps] == [s.sends for s in original.steps]

    def test_roundtrip_is_stable(self):
        # A second serialization of the restored algorithm is byte-identical.
        result = synthesize(make_instance("Allgather", ring(4), 1, 2, 2))
        first = json.dumps(result.algorithm.to_dict(), sort_keys=True)
        second = json.dumps(roundtrip(result.algorithm).to_dict(), sort_keys=True)
        assert first == second


class TestCombinedAllreduceRoundtrip:
    def test_json_roundtrip_verifies(self):
        result = synthesize_allreduce(ring(4), 1, 2, 3)
        assert result.is_sat
        original = result.algorithm
        assert original.combining
        restored = roundtrip(original)
        assert restored.combining
        restored.verify()

    def test_roundtrip_preserves_reduce_ops(self):
        result = synthesize_allreduce(ring(4), 1, 2, 2)
        restored = roundtrip(result.algorithm)
        ops = {send.op for _, send in restored.all_sends()}
        # Both the reducing phase and the copy (allgather) phase survive.
        assert ops == {"reduce", "copy"}
        assert restored.signature() == result.algorithm.signature()

"""Tests for the combining-collective reduction (inversion, Allreduce composition)."""

import pytest

from repro.baselines import ring_allgather, single_ring
from repro.core import (
    CombiningError,
    allreduce_from_allgather,
    invert_algorithm,
    make_instance,
    synthesize,
    synthesize_allreduce,
    synthesize_reduce,
    synthesize_reducescatter,
)
from repro.topology import Topology, fully_connected, line, ring, star


def synthesized_allgather(topology, chunks, steps, rounds):
    result = synthesize(make_instance("Allgather", topology, chunks, steps, rounds))
    assert result.is_sat
    return result.algorithm


class TestInversion:
    def test_reducescatter_from_ring_allgather(self):
        allgather = ring_allgather(ring(4), single_ring(ring(4)))
        reducescatter = invert_algorithm(allgather)
        reducescatter.verify()
        assert reducescatter.collective == "Reducescatter"
        assert reducescatter.combining
        assert reducescatter.num_steps == allgather.num_steps
        assert reducescatter.total_rounds == allgather.total_rounds

    def test_reduce_from_synthesized_broadcast(self):
        result = synthesize(make_instance("Broadcast", star(5), 2, 2, 2, root=0))
        assert result.is_sat
        reduce_algo = invert_algorithm(result.algorithm)
        reduce_algo.verify()
        assert reduce_algo.collective == "Reduce"
        # Every contribution ends at the root.
        final = reduce_algo.run()[-1]
        for chunk in range(reduce_algo.num_chunks):
            assert final[(chunk, 0)] == frozenset(range(5))

    def test_scatter_from_gather_via_copy_inversion(self):
        result = synthesize(make_instance("Gather", ring(4), 1, 2, 3, root=0))
        assert result.is_sat
        scatter = invert_algorithm(result.algorithm, op="copy")
        assert scatter.collective == "Scatter"
        assert not scatter.combining
        scatter.verify()

    def test_inverting_combining_algorithm_rejected(self):
        allgather = ring_allgather(ring(4), single_ring(ring(4)))
        reducescatter = invert_algorithm(allgather)
        with pytest.raises(CombiningError):
            invert_algorithm(reducescatter)

    def test_asymmetric_topology_requires_explicit_target(self):
        asym = Topology(name="asym", num_nodes=3)
        asym.add_link(0, 1)
        asym.add_link(1, 2)
        asym.add_link(2, 0)
        result = synthesize(make_instance("Broadcast", asym, 1, 2, 2, root=0))
        assert result.is_sat
        with pytest.raises(CombiningError):
            invert_algorithm(result.algorithm)
        # Providing the reversed topology works and verifies.
        inverted = invert_algorithm(result.algorithm, target_topology=asym.reversed())
        inverted.verify()

    def test_multi_source_chunk_rejected(self):
        allgather = ring_allgather(ring(4), single_ring(ring(4)))
        # Corrupt the precondition so one chunk has two sources.
        allgather.precondition = frozenset(set(allgather.precondition) | {(0, 1)})
        with pytest.raises(CombiningError):
            invert_algorithm(allgather)


class TestAllreduceComposition:
    def test_allreduce_from_ring_allgather(self):
        topo = ring(4)
        allgather = ring_allgather(topo, single_ring(topo))
        allreduce = allreduce_from_allgather(allgather)
        allreduce.verify()
        assert allreduce.collective == "Allreduce"
        assert allreduce.chunks_per_node == allgather.num_chunks
        assert allreduce.num_steps == 2 * allgather.num_steps
        assert allreduce.total_rounds == 2 * allgather.total_rounds
        # Every node ends with the full reduction of every chunk.
        final = allreduce.run()[-1]
        for chunk in range(allreduce.num_chunks):
            for node in range(4):
                assert final[(chunk, node)] == frozenset(range(4))

    def test_allreduce_from_synthesized_allgather(self):
        allgather = synthesized_allgather(ring(4), 1, 2, 3)
        allreduce = allreduce_from_allgather(allgather)
        allreduce.verify()
        assert allreduce.signature() == (4, 4, 6)

    def test_wrong_collective_rejected(self):
        result = synthesize(make_instance("Broadcast", star(4), 1, 1, 1, root=0))
        with pytest.raises(CombiningError):
            allreduce_from_allgather(result.algorithm)


class TestOneCallHelpers:
    def test_synthesize_reducescatter(self):
        result = synthesize_reducescatter(ring(4), 1, 2, 3)
        assert result.is_sat
        assert result.algorithm.collective == "Reducescatter"
        result.algorithm.verify()

    def test_synthesize_reduce(self):
        result = synthesize_reduce(star(5), 1, 1, 1, root=0)
        assert result.is_sat
        assert result.algorithm.collective == "Reduce"

    def test_synthesize_allreduce(self):
        result = synthesize_allreduce(ring(4), 1, 2, 2)
        assert result.is_sat
        allreduce = result.algorithm
        assert allreduce.collective == "Allreduce"
        assert allreduce.signature() == (4, 4, 4)

    def test_unsat_propagates(self):
        result = synthesize_allreduce(ring(4), 1, 1, 1)
        assert result.is_unsat
        assert result.algorithm is None

"""Tests for lower bounds and SynColl instance construction."""

from fractions import Fraction

import pytest

from repro.collectives import get_collective
from repro.core import (
    InstanceError,
    bandwidth_lower_bound,
    latency_lower_bound,
    lower_bounds,
    make_instance,
)
from repro.topology import amd_z52, dgx1, fully_connected, line, ring


class TestLowerBounds:
    def test_dgx1_allgather_bounds_match_paper(self):
        # Section 2.4/2.5: latency bound 2 steps, bandwidth bound 7/6.
        assert lower_bounds("Allgather", dgx1()) == (2, Fraction(7, 6))

    def test_dgx1_alltoall_bandwidth_bound(self):
        # Table 4: bandwidth-optimal Alltoall has R/C = 8/24 = 1/3.
        a_l, b_l = lower_bounds("Alltoall", dgx1())
        assert a_l == 2
        assert b_l == Fraction(1, 3)

    def test_dgx1_broadcast_bound(self):
        a_l, b_l = lower_bounds("Broadcast", dgx1())
        assert a_l == 2
        assert b_l == Fraction(1, 6)

    def test_amd_allgather_bounds_match_table5(self):
        # Table 5: latency-optimal S=4, bandwidth-optimal R/C = 7/2.
        assert lower_bounds("Allgather", amd_z52()) == (4, Fraction(7, 2))

    def test_gather_bound_equals_allgather_on_dgx1(self):
        assert lower_bounds("Gather", dgx1())[1] == Fraction(7, 6)

    def test_combining_collective_rejected(self):
        with pytest.raises(Exception):
            lower_bounds("Allreduce", dgx1())

    def test_latency_bound_respects_root_position(self):
        topo = line(4)
        spec = get_collective("Broadcast")
        pre_end = spec.precondition(4, 1, root=0)
        post_end = spec.postcondition(4, 1, root=0)
        assert latency_lower_bound(topo, pre_end, post_end) == 3
        pre_mid = spec.precondition(4, 1, root=1)
        post_mid = spec.postcondition(4, 1, root=1)
        assert latency_lower_bound(topo, pre_mid, post_mid) == 2

    def test_bandwidth_bound_scale_invariance(self):
        topo = ring(6)
        spec = get_collective("Allgather")
        b1 = bandwidth_lower_bound(topo, spec.precondition(6, 1), spec.postcondition(6, 1), 1)
        b3 = bandwidth_lower_bound(topo, spec.precondition(6, 3), spec.postcondition(6, 3), 3)
        assert b1 == b3 == Fraction(5, 2)


class TestInstances:
    def test_make_instance_allgather(self):
        inst = make_instance("Allgather", ring(4), 2, 3, 4)
        assert inst.num_chunks == 8
        assert inst.synchrony == 1
        assert inst.bandwidth_cost == Fraction(4, 2)
        assert inst.latency_cost == 3
        assert "Allgather" in inst.describe()

    def test_combining_collective_rejected(self):
        with pytest.raises(InstanceError):
            make_instance("Allreduce", ring(4), 1, 2, 2)

    def test_rounds_below_steps_rejected(self):
        with pytest.raises(InstanceError):
            make_instance("Allgather", ring(4), 1, 3, 2)

    def test_zero_chunks_rejected(self):
        with pytest.raises(InstanceError):
            make_instance("Allgather", ring(4), 0, 2, 2)

    def test_broadcast_respects_root(self):
        inst = make_instance("Broadcast", fully_connected(4), 2, 1, 1, root=3)
        assert all(node == 3 for (_, node) in inst.precondition)

    def test_precondition_chunks_all_sourced(self):
        inst = make_instance("Alltoall", ring(4), 4, 2, 2)
        chunks_with_source = {c for (c, _) in inst.precondition}
        assert chunks_with_source == set(range(inst.num_chunks))

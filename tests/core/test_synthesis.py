"""Tests for the SMT encoding and single-instance synthesis (small topologies).

The DGX-1-scale instances are exercised by the benchmark harness; the unit
tests here keep instances small enough (rings/lines/cliques of 3-6 nodes,
plus the cheap DGX-1 latency-optimal points) to run in seconds.
"""

import pytest

from repro.core import (
    NaiveEncoding,
    ScclEncoding,
    make_instance,
    synthesize,
    synthesize_collective,
)
from repro.solver import SolveResult
from repro.topology import dgx1, fully_connected, line, ring, star


def assert_sat_and_valid(result):
    assert result.is_sat, result.summary()
    assert result.algorithm is not None
    result.algorithm.verify()
    return result.algorithm


class TestRingAllgather:
    def test_figure2_one_synchronous_instance(self):
        # Figure 2: Allgather on a 4-ring with S=2, R=3 (1-synchronous).
        result = synthesize(make_instance("Allgather", ring(4), 1, 2, 3))
        algo = assert_sat_and_valid(result)
        assert algo.signature() == (1, 2, 3)
        assert algo.num_steps == 2
        assert algo.total_rounds == 3

    def test_zero_synchronous_instance(self):
        result = synthesize(make_instance("Allgather", ring(4), 1, 2, 2))
        assert_sat_and_valid(result)

    def test_one_step_is_unsat_on_a_ring_of_four(self):
        # Diameter 2: one step cannot reach the opposite node.
        result = synthesize(make_instance("Allgather", ring(4), 1, 1, 1))
        assert result.is_unsat
        assert result.algorithm is None

    def test_insufficient_rounds_unsat(self):
        # With C=2 on a 6-ring each node must receive 10 chunks over an
        # in-capacity of 2/round, so 4 rounds (at most 8 receptions) cannot
        # suffice even though the latency bound (diameter 3) is met.
        result = synthesize(make_instance("Allgather", ring(6), 2, 4, 4))
        assert result.is_unsat

    def test_ring6_allgather_bandwidth_optimal(self):
        # 5 peers / 2 incoming links -> R/C = 5/2; C=2, R=5, S=5 is feasible.
        result = synthesize(make_instance("Allgather", ring(6), 2, 5, 5))
        algo = assert_sat_and_valid(result)
        assert algo.bandwidth_cost == pytest.approx(2.5)


class TestOtherCollectives:
    def test_broadcast_on_star(self):
        result = synthesize_collective("Broadcast", star(5), 1, 1, 1, root=0)
        algo = assert_sat_and_valid(result)
        assert algo.num_steps == 1

    def test_broadcast_from_leaf_of_line(self):
        result = synthesize_collective("Broadcast", line(4), 1, 3, 3, root=0)
        assert_sat_and_valid(result)

    def test_broadcast_too_few_steps_unsat(self):
        result = synthesize_collective("Broadcast", line(4), 1, 2, 2, root=0)
        assert result.is_unsat

    def test_gather_on_ring(self):
        result = synthesize_collective("Gather", ring(4), 1, 2, 3, root=0)
        algo = assert_sat_and_valid(result)
        # Root ends with every chunk.
        final = algo.run()[-1]
        assert all((c, 0) in final for c in range(4))

    def test_scatter_on_ring(self):
        result = synthesize_collective("Scatter", ring(4), 1, 2, 3, root=0)
        assert_sat_and_valid(result)

    def test_alltoall_on_fully_connected(self):
        result = synthesize_collective("Alltoall", fully_connected(4), 4, 1, 1)
        algo = assert_sat_and_valid(result)
        assert algo.num_steps == 1

    def test_alltoall_on_ring(self):
        result = synthesize_collective("Alltoall", ring(4), 4, 2, 4)
        assert_sat_and_valid(result)


class TestDgx1CheapPoints:
    def test_latency_optimal_allgather(self):
        # Table 4 row (1, 2, 2): the novel 2-step latency-optimal Allgather.
        result = synthesize(make_instance("Allgather", dgx1(), 1, 2, 2))
        algo = assert_sat_and_valid(result)
        assert algo.num_steps == 2
        assert algo.bandwidth_cost == 2

    def test_latency_optimal_with_better_bandwidth(self):
        # Table 4 row (2, 2, 3): 2 steps, bandwidth cost 3/2 (Section 2.5).
        result = synthesize(make_instance("Allgather", dgx1(), 2, 2, 3))
        algo = assert_sat_and_valid(result)
        assert float(algo.bandwidth_cost) == pytest.approx(1.5)

    def test_one_step_allgather_unsat_on_dgx1(self):
        result = synthesize(make_instance("Allgather", dgx1(), 1, 1, 1))
        assert result.is_unsat


class TestEncodingMechanics:
    def test_statistics_populated(self):
        encoder = ScclEncoding(make_instance("Allgather", ring(4), 1, 2, 2))
        encoder.encode()
        stats = encoder.stats.as_dict()
        assert stats["variables"] > 0
        assert stats["clauses"] > 0
        assert stats["send_vars"] > 0

    def test_pruning_reduces_send_variables(self):
        instance = make_instance("Gather", line(5), 1, 4, 4, root=0)
        pruned = ScclEncoding(instance, prune=True)
        pruned.encode()
        unpruned = ScclEncoding(instance, prune=False)
        unpruned.encode()
        assert pruned.stats.send_vars < unpruned.stats.send_vars

    def test_decode_before_encode_rejected(self):
        encoder = ScclEncoding(make_instance("Allgather", ring(4), 1, 2, 2))
        with pytest.raises(Exception):
            encoder.decode({})

    def test_unpruned_encoding_agrees(self):
        instance = make_instance("Allgather", ring(4), 1, 2, 2)
        assert synthesize(instance, prune=False).is_sat
        assert synthesize(instance, prune=True).is_sat

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            synthesize(make_instance("Allgather", ring(4), 1, 2, 2), encoding="magic")

    def test_resource_limit_gives_unknown_or_answer(self):
        result = synthesize(
            make_instance("Allgather", ring(6), 2, 5, 5), conflict_limit=1
        )
        assert result.status in (SolveResult.SAT, SolveResult.UNSAT, SolveResult.UNKNOWN)


class TestNaiveEncodingAblation:
    """The Section 5.4.3 ablation encoding must agree with the main encoding."""

    @pytest.mark.parametrize(
        "collective,topo,chunks,steps,rounds,expected_sat",
        [
            ("Allgather", ring(4), 1, 2, 3, True),
            ("Allgather", ring(4), 1, 1, 1, False),
            ("Broadcast", star(5), 1, 1, 1, True),
            ("Gather", ring(4), 1, 2, 3, True),
            ("Broadcast", line(4), 1, 2, 2, False),
        ],
    )
    def test_agreement_with_sccl_encoding(self, collective, topo, chunks, steps, rounds, expected_sat):
        instance = make_instance(collective, topo, chunks, steps, rounds, root=0)
        naive = synthesize(instance, encoding="naive")
        sccl = synthesize(instance, encoding="sccl")
        assert naive.is_sat == sccl.is_sat == expected_sat
        if expected_sat:
            naive.algorithm.verify()
            sccl.algorithm.verify()

    def test_naive_encoding_is_larger(self):
        instance = make_instance("Allgather", ring(6), 1, 3, 3)
        naive = NaiveEncoding(instance)
        naive.encode()
        sccl = ScclEncoding(instance)
        sccl.encode()
        assert naive.stats.variables > sccl.stats.variables

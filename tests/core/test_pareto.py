"""Tests for Pareto-Synthesize (Algorithm 1) on small topologies."""

from fractions import Fraction

import pytest

from repro.core import ParetoError, candidate_set, pareto_synthesize
from repro.solver import SolveResult
from repro.topology import fully_connected, line, ring, star


class TestCandidateSet:
    def test_orders_by_bandwidth_cost(self):
        candidates = candidate_set(steps=3, k=4, bandwidth_lower=Fraction(7, 6))
        ratios = [Fraction(r, c) for (r, c) in candidates]
        assert ratios == sorted(ratios)
        # All candidates respect the bounds.
        assert all(3 <= r <= 7 for (r, c) in candidates)
        assert all(Fraction(r, c) >= Fraction(7, 6) for (r, c) in candidates)
        # The bandwidth-optimal candidate (7, 6) comes first.
        assert candidates[0] == (7, 6)

    def test_k_zero_single_round_choice(self):
        candidates = candidate_set(steps=2, k=0, bandwidth_lower=Fraction(7, 6))
        assert candidates == [(2, 1)]

    def test_max_chunks_cap(self):
        candidates = candidate_set(steps=2, k=0, bandwidth_lower=Fraction(1, 6), max_chunks=3)
        assert all(c <= 3 for (_, c) in candidates)

    def test_invalid_bound_rejected(self):
        with pytest.raises(ParetoError):
            candidate_set(2, 0, Fraction(0))


class TestRingAllgatherFrontier:
    def test_frontier_on_ring4(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=4)
        assert frontier.latency_lower_bound == 2
        assert frontier.bandwidth_lower_bound == Fraction(3, 2)
        signatures = [p.signature for p in frontier.points]
        # S=2: best k=0 candidate is (R=2, C=1); S=3: (3, 2) hits the 3/2 bound.
        assert (1, 2, 2) in signatures
        assert (2, 3, 3) in signatures
        assert frontier.points[0].latency_optimal
        assert frontier.points[-1].bandwidth_optimal
        for point in frontier.points:
            assert point.algorithm is not None
            point.algorithm.verify()

    def test_stops_at_bandwidth_optimal(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=8)
        assert frontier.points[-1].bandwidth_optimal
        assert max(p.steps for p in frontier.points) == 3

    def test_k_one_latency_point_improves_bandwidth(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=1, max_steps=3)
        # With one extra round the 2-step algorithm reaches R/C = 3/2.
        assert (2, 2, 3) in [p.signature for p in frontier.points]
        assert frontier.points[0].bandwidth_optimal and frontier.points[0].latency_optimal

    def test_table_rows_shape(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=3)
        rows = frontier.table_rows()
        assert all({"collective", "C", "S", "R", "optimality", "time_s"} <= set(row) for row in rows)

    def test_best_for_size_switches_algorithm(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=1, max_steps=4)
        small = frontier.best_for_size(64, alpha=5e-6, beta=4e-11)
        large = frontier.best_for_size(1 << 30, alpha=5e-6, beta=4e-11)
        assert small.steps <= large.steps
        assert large.bandwidth_cost <= small.bandwidth_cost


class TestOtherCollectives:
    def test_broadcast_on_star_is_immediately_optimal(self):
        frontier = pareto_synthesize("Broadcast", star(5), k=0, max_steps=3)
        assert frontier.points
        first = frontier.points[0]
        assert first.latency_optimal
        assert first.steps == 1

    def test_gather_frontier_on_line(self):
        frontier = pareto_synthesize("Gather", line(3), k=0, max_steps=4)
        assert frontier.points
        for point in frontier.points:
            point.algorithm.verify()

    def test_alltoall_on_fully_connected(self):
        frontier = pareto_synthesize("Alltoall", fully_connected(3), k=0, max_steps=3)
        assert frontier.points
        assert frontier.points[0].steps == 1


class TestCombiningDelegation:
    def test_reducescatter_frontier(self):
        frontier = pareto_synthesize("Reducescatter", ring(4), k=0, max_steps=3)
        assert frontier.collective == "Reducescatter"
        assert frontier.points
        for point in frontier.points:
            assert point.algorithm.combining
            point.algorithm.verify()

    def test_allreduce_frontier_doubles_steps(self):
        frontier = pareto_synthesize("Allreduce", ring(4), k=0, max_steps=3)
        assert frontier.points
        for point in frontier.points:
            assert point.steps % 2 == 0
            assert point.chunks_per_node % 4 == 0
            point.algorithm.verify()
        assert frontier.latency_lower_bound == 4

    def test_reduce_frontier(self):
        frontier = pareto_synthesize("Reduce", star(4), k=0, max_steps=2)
        assert frontier.points
        assert frontier.points[0].algorithm.collective == "Reduce"

    def test_negative_k_rejected(self):
        with pytest.raises(ParetoError):
            pareto_synthesize("Allgather", ring(4), k=-1)


class TestResourceLimits:
    def test_unknown_results_recorded_not_fabricated(self):
        frontier = pareto_synthesize(
            "Allgather", ring(6), k=0, max_steps=5, conflict_limit=1
        )
        # With an absurd conflict limit some probes return UNKNOWN; any point
        # reported must still be a genuine SAT with a verified algorithm.
        for point in frontier.points:
            assert point.status is SolveResult.SAT
            point.algorithm.verify()

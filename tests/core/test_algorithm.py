"""Tests for Algorithm run semantics, verification and cost."""

from fractions import Fraction

import pytest

from repro.collectives import get_collective
from repro.core import Algorithm, AlgorithmError, Send, Step
from repro.topology import ring, fully_connected


def make_ring_allgather_c1():
    """Hand-written 2-step Allgather on a 4-ring (each node forwards left/right)."""
    topo = ring(4)
    spec = get_collective("Allgather")
    pre = spec.precondition(4, 1)
    post = spec.postcondition(4, 1)
    step0 = Step(rounds=1, sends=tuple(
        Send(chunk=n, src=n, dst=(n + 1) % 4) for n in range(4)
    ) + tuple(
        Send(chunk=n, src=n, dst=(n - 1) % 4) for n in range(4)
    ))
    step1 = Step(rounds=1, sends=tuple(
        Send(chunk=(n - 1) % 4, src=n, dst=(n + 1) % 4) for n in range(4)
    ))
    return Algorithm(
        name="ring4_allgather_hand",
        collective="Allgather",
        topology=topo,
        chunks_per_node=1,
        num_chunks=4,
        precondition=pre,
        postcondition=post,
        steps=[step0, step1],
    )


class TestSendAndStep:
    def test_self_send_rejected(self):
        with pytest.raises(AlgorithmError):
            Send(chunk=0, src=1, dst=1)

    def test_bad_op_rejected(self):
        with pytest.raises(AlgorithmError):
            Send(chunk=0, src=0, dst=1, op="teleport")

    def test_reversed_send(self):
        send = Send(chunk=3, src=1, dst=2)
        rev = send.reversed()
        assert (rev.src, rev.dst, rev.op) == (2, 1, "reduce")

    def test_negative_rounds_rejected(self):
        with pytest.raises(AlgorithmError):
            Step(rounds=-1)

    def test_sends_on_link(self):
        step = Step(rounds=1, sends=(Send(0, 0, 1), Send(1, 0, 1), Send(2, 1, 0)))
        assert len(step.sends_on_link(0, 1)) == 2


class TestAlgorithmProperties:
    def test_signature_and_costs(self):
        algo = make_ring_allgather_c1()
        assert algo.signature() == (1, 2, 2)
        assert algo.num_steps == 2
        assert algo.total_rounds == 2
        assert algo.bandwidth_cost == Fraction(2, 1)
        assert algo.synchrony == 0
        assert algo.rounds_per_step == [1, 1]
        assert algo.total_sends == 12

    def test_cost_model(self):
        algo = make_ring_allgather_c1()
        cost = algo.cost(size_bytes=1000, alpha=1e-6, beta=1e-9)
        assert cost == pytest.approx(2 * 1e-6 + 2 * 1000 * 1e-9)

    def test_verify_valid_algorithm(self):
        make_ring_allgather_c1().verify()

    def test_is_valid(self):
        assert make_ring_allgather_c1().is_valid()

    def test_describe_contains_schedule(self):
        text = make_ring_allgather_c1().describe()
        assert "step 0" in text and "step 1" in text
        assert "Allgather" in text


class TestVerificationFailures:
    def test_missing_chunk_detected(self):
        algo = make_ring_allgather_c1()
        algo.steps = [algo.steps[0]]  # drop the second step
        with pytest.raises(AlgorithmError):
            algo.verify()
        assert not algo.is_valid()

    def test_send_of_absent_chunk_detected(self):
        algo = make_ring_allgather_c1()
        # Node 0 sends chunk 2 it does not hold at step 0.
        bad = Step(rounds=1, sends=(Send(chunk=2, src=0, dst=1),))
        algo.steps = [bad] + algo.steps
        with pytest.raises(AlgorithmError, match="does not hold"):
            algo.run()

    def test_bandwidth_violation_detected(self):
        algo = make_ring_allgather_c1()
        # Cram an extra send onto an already-full unit link at step 0.
        extra = Send(chunk=1, src=1, dst=2)
        algo.steps[0] = Step(rounds=1, sends=algo.steps[0].sends + (extra,))
        with pytest.raises(AlgorithmError, match="exceed bandwidth"):
            algo.check_bandwidth()

    def test_send_on_missing_link_detected(self):
        algo = make_ring_allgather_c1()
        algo.steps[0] = Step(rounds=1, sends=(Send(chunk=0, src=0, dst=2),))
        with pytest.raises(AlgorithmError, match="non-existent link"):
            algo.check_bandwidth()

    def test_double_counting_in_reduction_detected(self):
        topo = fully_connected(3)
        pre = frozenset((0, n) for n in range(3))
        post = frozenset({(0, 0)})
        # Node 1 and node 2 both fold their partial into node 0, but node 2
        # first absorbs node 1's partial — then node 1 sends again: overlap.
        steps = [
            Step(rounds=1, sends=(Send(0, 1, 2, op="reduce"),)),
            Step(rounds=1, sends=(Send(0, 2, 0, op="reduce"), Send(0, 1, 0, op="reduce"))),
        ]
        algo = Algorithm(
            name="bad_reduce", collective="Reduce", topology=topo,
            chunks_per_node=1, num_chunks=1, precondition=pre, postcondition=post,
            steps=steps, combining=True,
        )
        with pytest.raises(AlgorithmError, match="double-counts"):
            algo.verify()

    def test_incomplete_reduction_detected(self):
        topo = fully_connected(3)
        pre = frozenset((0, n) for n in range(3))
        post = frozenset({(0, 0)})
        steps = [Step(rounds=1, sends=(Send(0, 1, 0, op="reduce"),))]
        algo = Algorithm(
            name="partial_reduce", collective="Reduce", topology=topo,
            chunks_per_node=1, num_chunks=1, precondition=pre, postcondition=post,
            steps=steps, combining=True,
        )
        with pytest.raises(AlgorithmError, match="missing contributions"):
            algo.verify()


class TestTransformations:
    def test_concatenate(self):
        a = make_ring_allgather_c1()
        b = make_ring_allgather_c1()
        combined = a.concatenate(b)
        assert combined.num_steps == 4
        assert combined.total_rounds == 4

    def test_concatenate_mismatched_chunks_rejected(self):
        a = make_ring_allgather_c1()
        b = make_ring_allgather_c1()
        b.num_chunks = 8
        with pytest.raises(AlgorithmError):
            a.concatenate(b)

    def test_serialization_roundtrip(self):
        algo = make_ring_allgather_c1()
        data = algo.to_dict()
        restored = Algorithm.from_dict(data)
        restored.verify()
        assert restored.signature() == algo.signature()
        assert restored.sends_per_link() == algo.sends_per_link()

    def test_sends_per_link(self):
        counts = make_ring_allgather_c1().sends_per_link()
        # Step 0 uses every link once; step 1 uses the 4 forward links once more.
        assert counts[(0, 1)] == 2
        assert counts[(1, 0)] == 1

"""Tests for the alpha-beta cost model and Pareto utilities."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CostError,
    CostPoint,
    algorithm_cost,
    best_algorithm_for_size,
    cost_point,
    crossover_size,
    is_pareto_optimal,
    pareto_frontier,
    speedup,
)


def test_algorithm_cost_formula():
    # 7 alpha + 7/6 L beta: the DGX-1 6-ring Allgather (Section 2.4).
    cost = algorithm_cost(steps=7, rounds=7, chunks=6, size_bytes=6_000_000,
                          alpha=5e-6, beta=4e-11)
    assert cost == pytest.approx(7 * 5e-6 + (7 / 6) * 6_000_000 * 4e-11)


def test_cost_validation():
    with pytest.raises(CostError):
        algorithm_cost(-1, 1, 1, 1, 1, 1)
    with pytest.raises(CostError):
        algorithm_cost(1, 1, 0, 1, 1, 1)
    with pytest.raises(CostError):
        algorithm_cost(1, 1, 1, -5, 1, 1)


def test_cost_point_dominance():
    fast = CostPoint(2, Fraction(3, 2))
    slow = CostPoint(3, Fraction(3, 2))
    assert fast.dominates(slow)
    assert not slow.dominates(fast)
    assert not fast.dominates(fast)


def test_pareto_frontier_filters_dominated():
    points = [
        cost_point(2, 2, 1),        # (2, 2)
        cost_point(3, 3, 2),        # (3, 1.5)
        cost_point(7, 7, 6),        # (7, 7/6)
        cost_point(7, 14, 6),       # (7, 7/3) dominated by (7, 7/6)
        cost_point(8, 7, 6),        # (8, 7/6) dominated by (7, 7/6)
    ]
    frontier = pareto_frontier(points)
    assert cost_point(7, 14, 6) not in frontier
    assert cost_point(8, 7, 6) not in frontier
    assert len(frontier) == 3


def test_is_pareto_optimal_matches_paper_definition():
    points = [cost_point(2, 2, 1), cost_point(3, 3, 2), cost_point(7, 7, 6)]
    for p in points:
        assert is_pareto_optimal(p, [q for q in points if q != p])
    # Same latency, worse bandwidth: not Pareto-optimal.
    assert not is_pareto_optimal(cost_point(2, 3, 1), points)


def test_crossover_size():
    latency_optimal = CostPoint(2, Fraction(2, 1))
    bandwidth_optimal = CostPoint(7, Fraction(7, 6))
    alpha, beta = 5e-6, 4e-11
    size = crossover_size(latency_optimal, bandwidth_optimal, alpha, beta)
    assert size is not None and size > 0
    # Below the crossover the latency-optimal algorithm is cheaper, above it
    # the bandwidth-optimal one is.
    below, above = size * 0.5, size * 2
    assert latency_optimal.evaluate(below, alpha, beta) < bandwidth_optimal.evaluate(below, alpha, beta)
    assert latency_optimal.evaluate(above, alpha, beta) > bandwidth_optimal.evaluate(above, alpha, beta)


def test_crossover_none_for_dominance():
    a = CostPoint(2, Fraction(1))
    b = CostPoint(3, Fraction(1))
    assert crossover_size(a, b, 1e-6, 1e-9) is None


def test_best_algorithm_for_size():
    points = [CostPoint(2, Fraction(2)), CostPoint(7, Fraction(7, 6))]
    assert best_algorithm_for_size(points, 1024, 5e-6, 4e-11) == 0
    assert best_algorithm_for_size(points, 1 << 30, 5e-6, 4e-11) == 1
    with pytest.raises(CostError):
        best_algorithm_for_size([], 1, 1, 1)


def test_speedup():
    assert speedup(2.0, 1.0) == 2.0
    with pytest.raises(CostError):
        speedup(1.0, 0.0)


@given(
    steps=st.integers(1, 20),
    rounds=st.integers(1, 40),
    chunks=st.integers(1, 48),
    size=st.floats(1, 1e9),
)
def test_cost_monotone_in_size(steps, rounds, chunks, size):
    small = algorithm_cost(steps, rounds, chunks, size, 1e-6, 1e-10)
    large = algorithm_cost(steps, rounds, chunks, size * 2, 1e-6, 1e-10)
    assert large >= small


@given(st.lists(st.tuples(st.integers(1, 10), st.integers(1, 20), st.integers(1, 10)), min_size=1, max_size=20))
def test_pareto_frontier_is_non_dominated_and_complete(raw):
    points = [cost_point(s, max(r, s), c) for (s, r, c) in raw]
    frontier = pareto_frontier(points)
    # No frontier point dominates another frontier point.
    for a in frontier:
        for b in frontier:
            if a != b:
                assert not a.dominates(b)
    # Every input point is dominated by or equal to some frontier point.
    for p in points:
        assert any(f == p or f.dominates(p) or (f.latency <= p.latency and f.bandwidth <= p.bandwidth) for f in frontier)

"""End-to-end telemetry tests: the instrumented hot path under every
dispatcher, metric/stat agreement, worker-span re-parenting, the JSONL
bridge, and the no-op overhead guard.
"""

import json
import os
import time

import pytest

from repro.core import pareto_synthesize
from repro.telemetry import (
    NULL_TRACER,
    Metrics,
    Tracer,
    get_tracer,
    iter_spans,
    jsonl_logging,
    set_metrics,
    span_coverage,
    tracing,
)
from repro.topology import line, ring


def _spans(tracer, name):
    return [s for s in iter_spans(tracer.roots()) if s.name == name]


@pytest.fixture
def metrics():
    """A fresh process-global registry, restored afterwards."""
    fresh = Metrics()
    previous = set_metrics(fresh)
    yield fresh
    set_metrics(previous)


# ----------------------------------------------------------------------
# Serial / incremental: spans mirror the engine's own counters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["serial", "incremental"])
def test_sweep_spans_match_engine_stats(strategy, metrics):
    with tracing() as tracer:
        frontier = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4, strategy=strategy
        )
    stats = frontier.engine_stats

    (pareto,) = _spans(tracer, "pareto")
    assert pareto.attrs["strategy"] == strategy
    assert pareto.attrs["points"] == len(frontier.points)
    # One sweep span per probed step count, all nested under the pareto span.
    sweeps = _spans(tracer, "sweep")
    assert sweeps and all(s.attrs["strategy"] == strategy for s in sweeps)
    assert {id(c) for c in pareto.children} >= {id(s) for s in sweeps}

    probes = _spans(tracer, "probe")
    replays = [p for p in probes if p.attrs.get("cache_hit")]
    assert len(probes) - len(replays) == stats["candidates_probed"]
    for probe in probes:
        assert {"collective", "C", "S", "R", "verdict"} <= set(probe.attrs)
    # Every solver probe carries its phase children.
    solved = [p for p in probes if not p.attrs.get("cache_hit")]
    assert all(any(c.name == "solve" for c in p.children) for p in solved)

    # Metric registry and committed stats agree exactly on these paths.
    assert metrics.total("repro_solver_calls_total") == stats["solver_calls"]
    assert (
        metrics.total("repro_bounds_candidates_total", action="probed")
        == stats["candidates_probed"]
    )
    assert (
        metrics.total("repro_bounds_candidates_total", action="pruned")
        == stats["probes_pruned"]
    )


# ----------------------------------------------------------------------
# Parallel: worker spans are re-parented under the dispatching sweep span
# ----------------------------------------------------------------------
def test_parallel_worker_spans_reparented(metrics):
    # bounds="off" keeps every candidate, so multi-candidate sweeps are
    # guaranteed and the dispatcher cannot fall back to inline solving.
    with tracing() as tracer:
        frontier = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4,
            strategy="parallel", max_workers=2, bounds="off",
        )
    probes = [p for p in _spans(tracer, "probe") if not p.attrs.get("cache_hit")]
    assert len(probes) == frontier.engine_stats["candidates_probed"]
    # Probe spans recorded inside pool workers keep their worker pid, and
    # every one of them hangs off a parent-side sweep span.
    pool_probes = [p for p in probes if p.pid != os.getpid()]
    assert pool_probes, "no probe spans came back from pool workers"
    sweeps = _spans(tracer, "sweep")
    sweep_children = {id(c) for s in sweeps for c in iter_spans(s.children)}
    for probe in pool_probes:
        assert id(probe) in sweep_children
        assert any(c.name == "solve" for c in probe.children)


def test_speculative_sweep_many_spans(metrics):
    with tracing() as tracer:
        frontier = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4,
            strategy="speculative", max_workers=2,
        )
    assert frontier.points
    batches = _spans(tracer, "sweep_batch")
    assert batches and batches[0].attrs["strategy"] == "speculative"
    sweeps = _spans(tracer, "sweep")
    # Cross-S pipelining keeps one sweep span per step count; exactly the
    # committed ones are flagged.
    assert all("committed" in s.attrs for s in sweeps)
    assert any(s.attrs["committed"] for s in sweeps)
    committed = [s for s in sweeps if s.attrs["committed"]]
    for sweep in committed:
        assert any(c.name == "probe" for c in sweep.children)
    # Solver-call metrics also count speculative losers (honest work), so
    # the registry reads >= the committed stats.
    assert (
        metrics.total("repro_solver_calls_total")
        >= frontier.engine_stats["solver_calls"]
    )
    assert (
        metrics.total("repro_bounds_candidates_total", action="probed")
        == frontier.engine_stats["candidates_probed"]
    )


# ----------------------------------------------------------------------
# Concurrent sweeps: one registry, no lost increments
# ----------------------------------------------------------------------
def test_metrics_under_concurrent_sweeps(metrics):
    import threading

    threads, stats = 8, [None] * 8
    barrier = threading.Barrier(threads)

    def work(index):
        barrier.wait()
        frontier = pareto_synthesize(
            "Gather", line(3), k=0, max_steps=4, strategy="serial"
        )
        stats[index] = frontier.engine_stats

    workers = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert all(s is not None for s in stats)
    assert metrics.total("repro_solver_calls_total") == sum(
        s["solver_calls"] for s in stats
    )
    assert metrics.total("repro_bounds_candidates_total", action="probed") == sum(
        s["candidates_probed"] for s in stats
    )


# ----------------------------------------------------------------------
# Chrome trace + coverage on a real sweep
# ----------------------------------------------------------------------
def test_pareto_trace_kwarg_writes_perfetto_trace(tmp_path):
    path = tmp_path / "trace.json"
    started = time.perf_counter()
    frontier = pareto_synthesize(
        "Allgather", ring(4), k=0, max_steps=4, strategy="serial", trace=path
    )
    wall = time.perf_counter() - started
    assert frontier.points
    trace = json.loads(path.read_text())
    assert trace["traceEvents"]
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"pareto", "sweep", "probe", "solve"} <= names
    # Per-candidate spans account for nearly all of the sweep wall clock.
    probe_s = sum(
        e["dur"] for e in trace["traceEvents"] if e["name"] == "probe"
    ) / 1e6
    assert probe_s <= wall * 1.05


def test_pareto_trace_kwarg_accepts_tracer():
    tracer = Tracer()
    pareto_synthesize(
        "Allgather", ring(4), k=0, max_steps=4, strategy="serial", trace=tracer
    )
    assert span_coverage(tracer.roots(), "probe") > 0.0


# ----------------------------------------------------------------------
# JSONL logging bridge
# ----------------------------------------------------------------------
def test_jsonl_bridge_streams_span_records(tmp_path, metrics):
    from repro.telemetry import log_metrics_snapshot

    path = tmp_path / "spans.jsonl"
    tracer = Tracer()
    with jsonl_logging(path, tracer):
        with tracing(tracer):
            pareto_synthesize("Gather", line(3), k=0, max_steps=4, strategy="serial")
        log_metrics_snapshot(metrics)

    records = [json.loads(row) for row in path.read_text().splitlines()]
    spans = [r for r in records if r["event"] == "span"]
    assert {"pareto", "sweep", "probe"} <= {r["name"] for r in spans}
    for record in spans:
        assert set(record) == {
            "event", "name", "start_s", "duration_s", "pid", "tid", "attrs"
        }
    (snapshot,) = [r for r in records if r["event"] == "metrics"]
    assert any(
        key.startswith("repro_solver_calls_total") for key in snapshot["counters"]
    )


# ----------------------------------------------------------------------
# Zero-overhead-when-disabled guard
# ----------------------------------------------------------------------
def test_disabled_tracing_overhead_guard():
    """Instrumentation must cost <=5% of sweep wall clock when disabled.

    Measured structurally rather than by racing two sweeps (which would
    flake on a loaded runner): the per-site cost of a disabled span is
    microbenchmarked, multiplied by the number of sites a traced run of
    the same sweep actually hits, and compared against that sweep's wall
    clock.
    """
    assert get_tracer() is NULL_TRACER

    calls = 20_000
    started = time.perf_counter()
    for _ in range(calls):
        with get_tracer().span("probe", collective="Allgather", C=1, S=2, R=2):
            pass
    per_site = (time.perf_counter() - started) / calls

    with tracing() as tracer:
        started = time.perf_counter()
        pareto_synthesize("Allgather", ring(4), k=0, max_steps=4, strategy="serial")
        wall = time.perf_counter() - started
    sites = sum(1 for _ in iter_spans(tracer.roots()))
    assert sites > 0
    assert per_site * sites <= 0.05 * wall, (
        f"no-op tracing would cost {per_site * sites:.4f}s over {sites} spans "
        f"on a {wall:.4f}s sweep"
    )

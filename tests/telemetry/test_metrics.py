"""Metrics registry unit tests: types, labels, exposition, concurrency."""

import threading
import time

import pytest

from repro.telemetry import (
    Metrics,
    MetricsError,
    get_metrics,
    set_metrics,
)


# ----------------------------------------------------------------------
# Counters / gauges / histograms
# ----------------------------------------------------------------------
def test_counters_accumulate_per_label_set():
    metrics = Metrics()
    metrics.inc("repro_solver_calls_total", backend="cdcl")
    metrics.inc("repro_solver_calls_total", backend="cdcl")
    metrics.inc("repro_solver_calls_total", backend="dpll")
    metrics.inc("repro_solver_calls_total", value=3.0, backend="dpll")

    assert metrics.value("repro_solver_calls_total", backend="cdcl") == 2.0
    assert metrics.value("repro_solver_calls_total", backend="dpll") == 4.0
    assert metrics.total("repro_solver_calls_total") == 6.0
    assert metrics.total("repro_solver_calls_total", backend="cdcl") == 2.0
    # Unknown series read as zero, not KeyError.
    assert metrics.value("repro_solver_calls_total", backend="z3") == 0.0


def test_gauges_overwrite():
    metrics = Metrics()
    metrics.set_gauge("repro_broker_queue_depth", 4.0)
    metrics.set_gauge("repro_broker_queue_depth", 2.0)
    assert metrics.value("repro_broker_queue_depth") == 2.0


def test_histograms_track_sum_count_and_buckets():
    metrics = Metrics()
    for value in (0.004, 0.04, 0.4, 4.0):
        metrics.observe("repro_solve_seconds", value, backend="cdcl")
    assert metrics.value("repro_solve_seconds", backend="cdcl") == pytest.approx(4.444)
    text = metrics.render_prometheus()
    assert 'repro_solve_seconds_count{backend="cdcl"} 4' in text
    assert 'repro_solve_seconds_bucket{backend="cdcl",le="0.005"} 1' in text
    assert 'repro_solve_seconds_bucket{backend="cdcl",le="+Inf"} 4' in text


def test_type_confusion_is_an_error():
    metrics = Metrics()
    metrics.inc("repro_solver_calls_total")
    with pytest.raises(MetricsError):
        metrics.set_gauge("repro_solver_calls_total", 1.0)
    with pytest.raises(MetricsError):
        metrics.observe("repro_solver_calls_total", 1.0)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_rendering_format():
    metrics = Metrics()
    metrics.describe("repro_cache_lookups_total", "algorithm cache lookups")
    metrics.inc("repro_cache_lookups_total", outcome="hit")
    metrics.inc("repro_cache_lookups_total", value=2.0, outcome="miss")
    metrics.set_gauge("repro_broker_queue_depth", 3.0)

    text = metrics.render_prometheus()
    lines = text.splitlines()
    assert "# HELP repro_cache_lookups_total algorithm cache lookups" in lines
    assert "# TYPE repro_cache_lookups_total counter" in lines
    assert 'repro_cache_lookups_total{outcome="hit"} 1' in lines
    assert 'repro_cache_lookups_total{outcome="miss"} 2' in lines
    assert "# TYPE repro_broker_queue_depth gauge" in lines
    assert "repro_broker_queue_depth 3" in lines
    # The registry's window is dated so scrapers can detect resets.
    assert any(
        line.startswith("repro_metrics_since_timestamp_seconds ") for line in lines
    )
    assert text.endswith("\n")


def test_label_values_are_escaped():
    metrics = Metrics()
    metrics.inc("repro_test_total", path='a"b\\c')
    assert 'repro_test_total{path="a\\"b\\\\c"} 1' in metrics.render_prometheus()


def test_snapshot_is_json_friendly():
    import json

    metrics = Metrics()
    metrics.inc("repro_solver_calls_total", backend="cdcl")
    metrics.observe("repro_solve_seconds", 0.5)
    snapshot = json.loads(json.dumps(metrics.snapshot()))
    assert snapshot["counters"] == {'repro_solver_calls_total{backend="cdcl"}': 1.0}
    hist = snapshot["histograms"]["repro_solve_seconds"]
    assert hist["count"] == 1 and hist["sum"] == 0.5
    # A single observation pins every quantile to the observed value.
    assert hist["p50"] == hist["p95"] == hist["p99"] == pytest.approx(0.5)
    assert snapshot["since"] == pytest.approx(metrics.since)


# ----------------------------------------------------------------------
# Quantile estimation (satellite: p50/p95/p99 from histogram buckets)
# ----------------------------------------------------------------------
def test_quantiles_interpolate_within_buckets():
    metrics = Metrics()
    for value in (0.004, 0.04, 0.4, 4.0):
        metrics.observe("repro_solve_seconds", value, backend="cdcl")
    q = metrics.quantiles("repro_solve_seconds", backend="cdcl")
    assert set(q) == {"p50", "p95", "p99"}
    # Monotone, bracketed by the observed extremes.
    assert 0.004 <= q["p50"] <= q["p95"] <= q["p99"] <= 4.0


def test_quantiles_merge_across_label_sets():
    metrics = Metrics()
    metrics.observe("repro_solve_seconds", 0.001, backend="cdcl")
    metrics.observe("repro_solve_seconds", 8.0, backend="dpll")
    merged = metrics.quantiles("repro_solve_seconds")
    assert merged["p99"] >= merged["p50"] >= 0.001
    # Filtering by label uses only that series.
    only = metrics.quantiles("repro_solve_seconds", backend="cdcl")
    assert only["p50"] == pytest.approx(0.001)


def test_quantiles_unknown_series_is_empty():
    assert Metrics().quantiles("repro_solve_seconds") == {}


def test_prometheus_estimate_family():
    metrics = Metrics()
    for value in (0.004, 0.04, 0.4, 4.0):
        metrics.observe("repro_solve_seconds", value, backend="cdcl")
    text = metrics.render_prometheus()
    assert "# TYPE repro_solve_seconds_estimate summary" in text
    assert 'repro_solve_seconds_estimate{backend="cdcl",quantile="0.5"}' in text
    assert 'repro_solve_seconds_estimate{backend="cdcl",quantile="0.99"}' in text
    assert 'repro_solve_seconds_estimate_count{backend="cdcl"} 4' in text


def test_histogram_buckets_are_per_bucket_counts():
    """Intermediate cumulative bucket lines must be correct, not just the
    first and +Inf ones (a double-cumulation bug once hid here)."""
    metrics = Metrics()
    for value in (0.004, 0.04, 0.4, 4.0):
        metrics.observe("repro_solve_seconds", value, backend="cdcl")
    text = metrics.render_prometheus()
    assert 'repro_solve_seconds_bucket{backend="cdcl",le="0.01"} 1' in text
    assert 'repro_solve_seconds_bucket{backend="cdcl",le="0.05"} 2' in text
    assert 'repro_solve_seconds_bucket{backend="cdcl",le="0.5"} 3' in text


# ----------------------------------------------------------------------
# Reset / windowing (satellite: counters survive restarts, reset is explicit)
# ----------------------------------------------------------------------
def test_reset_zeros_series_and_restamps_since():
    metrics = Metrics()
    before = metrics.since
    metrics.inc("repro_solver_calls_total")
    time.sleep(0.01)
    metrics.reset()
    assert metrics.total("repro_solver_calls_total") == 0.0
    assert metrics.since > before
    # The name is free for a different type after a reset.
    metrics.set_gauge("repro_solver_calls_total", 1.0)


def test_set_metrics_swaps_registry():
    fresh = Metrics()
    previous = set_metrics(fresh)
    try:
        assert get_metrics() is fresh
    finally:
        set_metrics(previous)
    assert get_metrics() is previous


# ----------------------------------------------------------------------
# Concurrency: 8 threads hammering one registry lose no increments
# ----------------------------------------------------------------------
def test_concurrent_increments_are_lossless():
    metrics = Metrics()
    threads, per_thread = 8, 2000
    barrier = threading.Barrier(threads)

    def work(index):
        barrier.wait()
        backend = "cdcl" if index % 2 else "dpll"
        for _ in range(per_thread):
            metrics.inc("repro_solver_calls_total", backend=backend)
            metrics.observe("repro_solve_seconds", 0.001, backend=backend)
            metrics.set_gauge("repro_broker_queue_depth", float(index))

    workers = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert metrics.total("repro_solver_calls_total") == threads * per_thread
    assert metrics.value("repro_solver_calls_total", backend="cdcl") == 4 * per_thread
    text = metrics.render_prometheus()
    assert f'repro_solve_seconds_count{{backend="cdcl"}} {4 * per_thread}' in text

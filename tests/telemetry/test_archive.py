"""Performance archive tests: round-trip, corruption tolerance, concurrency.

The archive is the substrate everything in ``repro.perf`` stands on — the
regression sentinel and the probe-time model both read it cold — so these
tests pin the storage contract: whole-line appends from many processes,
torn tails skipped (and counted) on read, recording that never raises.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.telemetry.archive import (
    ARCHIVE_DISABLE_ENV,
    ArchiveError,
    PerfArchive,
    RunRecord,
    exact_quantiles,
    get_archive,
    host_context,
    host_fingerprint,
    record_run,
    set_archive,
)


@pytest.fixture
def archive(tmp_path):
    return PerfArchive(tmp_path / "perf")


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_append_and_read_back_round_trip(archive):
    record = RunRecord(
        kind="pareto",
        name="Allgather/ring:4",
        fingerprint="abc123",
        features={"nodes": 4, "k": 1, "chunks": 0},
        strategy="incremental",
        backend="cdcl",
        verdict="sat",
        wall_s=1.25,
        phases={"encode_s": 0.5, "solve_s": 0.6, "verify_s": 0.15},
        quantiles={"solve_p50": 0.1, "solve_p95": 0.3, "solve_p99": 0.4},
        extra={"points": 3},
    )
    assert archive.append(record)
    # append stamps the bookkeeping fields.
    assert record.run_id and record.session and record.created_at > 0
    assert record.host == host_context()

    loaded = archive.records()
    assert len(loaded) == 1
    back = loaded[0]
    assert back.kind == "pareto"
    assert back.features == {"nodes": 4, "k": 1, "chunks": 0}
    assert back.phases["solve_s"] == pytest.approx(0.6)
    assert back.quantiles["solve_p95"] == pytest.approx(0.3)
    assert back.run_id == record.run_id
    assert back.host_key() == host_fingerprint()


def test_records_filter_by_kind_and_host(archive):
    archive.append(RunRecord(kind="probe", name="a", wall_s=0.1))
    archive.append(RunRecord(kind="sweep", name="b", wall_s=0.2))
    alien = RunRecord(
        kind="probe", name="c", wall_s=0.3,
        host={"hostname": "elsewhere", "cpu_count": 64, "python": "3.0.0"},
    )
    archive.append(alien)

    assert [r.name for r in archive.records(kind="probe")] == ["a", "c"]
    mine = archive.records(kind="probe", host=host_fingerprint())
    assert [r.name for r in mine] == ["a"]
    assert [r.name for r in archive.records(predicate=lambda r: r.wall_s > 0.15)] \
        == ["b", "c"]


def test_find_by_prefix_and_at_address(archive):
    first = RunRecord(kind="bench", name="one", fingerprint="feedbeef01")
    second = RunRecord(kind="bench", name="two", fingerprint="cafebabe02")
    archive.append(first)
    archive.append(second)

    assert [r.name for r in archive.find(first.run_id)] == ["one"]
    assert [r.name for r in archive.find("feedbeef")] == ["one"]
    assert [r.name for r in archive.find("@0")] == ["two"]  # latest
    assert [r.name for r in archive.find("@1")] == ["one"]
    with pytest.raises(ArchiveError):
        archive.find("@99")
    with pytest.raises(ArchiveError):
        archive.find("@nope")


def test_stats_and_prune(archive):
    archive.append(RunRecord(kind="probe", name="p"))
    archive.append(RunRecord(kind="bench", name="b"))
    stats = archive.stats()
    assert stats["records"] == 2
    assert stats["kinds"] == {"probe": 1, "bench": 1}
    assert stats["segments"] == 1 and stats["bytes"] > 0

    # Nothing younger than the horizon goes away; everything older does.
    assert archive.prune(max_age_s=3600) == []
    removed = archive.prune(max_age_s=0.0, now=time.time() + 10)
    assert len(removed) == 1
    assert archive.records() == []


# ----------------------------------------------------------------------
# Corruption tolerance
# ----------------------------------------------------------------------
def test_truncated_tail_is_skipped_and_counted(archive):
    archive.append(RunRecord(kind="probe", name="intact-1"))
    archive.append(RunRecord(kind="probe", name="intact-2"))
    segment = archive.segments()[0]
    # A writer killed mid-append leaves half a line with no newline.
    with open(segment, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "probe", "name": "torn')

    loaded = archive.records()
    assert [r.name for r in loaded] == ["intact-1", "intact-2"]
    assert archive.corrupt_lines == 1
    assert archive.stats()["corrupt_lines"] == 1
    # The archive stays appendable after the torn tail: the next record
    # starts on its own line or is itself skipped — never both lost.
    archive.append(RunRecord(kind="probe", name="after"))
    names = [r.name for r in archive.records()]
    assert names[:2] == ["intact-1", "intact-2"]
    assert archive.corrupt_lines >= 1


def test_garbage_lines_do_not_break_reads(archive):
    archive.append(RunRecord(kind="probe", name="good"))
    segment = archive.segments()[0]
    with open(segment, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"no": "kind field"}\n')
        handle.write("\n")  # blank lines are not corruption
        handle.write('{"kind": "probe", "name": "also-good"}\n')

    assert [r.name for r in archive.records()] == ["good", "also-good"]
    assert archive.corrupt_lines == 2


def test_missing_directory_reads_empty(tmp_path):
    archive = PerfArchive(tmp_path / "never-created")
    assert archive.records() == []
    assert archive.segments() == []
    assert archive.stats()["records"] == 0


def test_from_json_tolerates_unknown_fields():
    record = RunRecord.from_json(
        {"kind": "probe", "name": "x", "wall_s": "1.5", "future_field": True}
    )
    assert record.name == "x"
    assert record.wall_s == pytest.approx(1.5)
    with pytest.raises(ArchiveError):
        RunRecord.from_json({"name": "missing kind"})


# ----------------------------------------------------------------------
# Concurrency: several processes appending into one archive
# ----------------------------------------------------------------------
_WRITER = """
import sys
from repro.telemetry.archive import PerfArchive, RunRecord
archive = PerfArchive(sys.argv[1])
writer, count = sys.argv[2], int(sys.argv[3])
for index in range(count):
    assert archive.append(RunRecord(kind="probe", name=f"{writer}-{index}"))
"""


def test_concurrent_multiprocess_appends_interleave_whole_lines(tmp_path):
    root = tmp_path / "perf"
    writers, per_writer = 4, 25
    env = dict(os.environ, PYTHONPATH="src")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(root), f"w{i}", str(per_writer)],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        for i in range(writers)
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0

    archive = PerfArchive(root)
    records = archive.records()
    assert archive.corrupt_lines == 0
    assert len(records) == writers * per_writer
    # Every record from every writer survived, none torn or interleaved.
    names = {r.name for r in records}
    assert names == {
        f"w{i}-{j}" for i in range(writers) for j in range(per_writer)
    }
    # All lines in the segment parse as standalone JSON objects.
    for segment in archive.segments():
        for line in segment.read_text().splitlines():
            assert json.loads(line)["kind"] == "probe"


# ----------------------------------------------------------------------
# The ambient record hook
# ----------------------------------------------------------------------
def test_record_run_writes_to_ambient_archive(tmp_path):
    previous = set_archive(PerfArchive(tmp_path / "perf"))
    try:
        record = record_run("service", name="req", wall_s=0.01)
        assert record is not None
        assert [r.name for r in get_archive().records(kind="service")] == ["req"]
    finally:
        set_archive(previous)


def test_record_run_disabled_by_env(tmp_path, monkeypatch):
    previous = set_archive(PerfArchive(tmp_path / "perf"))
    try:
        monkeypatch.setenv(ARCHIVE_DISABLE_ENV, "1")
        assert record_run("service", name="req") is None
        assert get_archive().records() == []
    finally:
        set_archive(previous)


def test_record_run_never_raises_on_bad_fields(tmp_path):
    previous = set_archive(PerfArchive(tmp_path / "perf"))
    try:
        # Unknown dataclass fields would raise TypeError — swallowed.
        assert record_run("probe", not_a_field=object()) is None
    finally:
        set_archive(previous)


def test_record_run_survives_unwritable_root(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.write_text("a file where the directory should be\n")
    previous = set_archive(PerfArchive(blocked / "perf"))
    try:
        assert record_run("probe", name="x") is None  # failed, silently
    finally:
        set_archive(previous)


# ----------------------------------------------------------------------
# exact_quantiles
# ----------------------------------------------------------------------
def test_exact_quantiles_ceil_rank():
    values = list(range(1, 101))  # 1..100
    q = exact_quantiles(values)
    assert q == {"p50": 50, "p95": 95, "p99": 99}
    assert exact_quantiles([]) == {}
    assert exact_quantiles([7.0]) == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

"""Tracer unit tests: nesting, re-parenting, export formats, no-op path."""

import json
import threading

import pytest

from repro.telemetry import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    iter_spans,
    set_tracer,
    span_coverage,
    spans_to_chrome_trace,
    summarize_chrome_trace,
    tracing,
)


# ----------------------------------------------------------------------
# Nesting and attributes
# ----------------------------------------------------------------------
def test_span_nesting_follows_with_blocks():
    tracer = Tracer()
    with tracer.span("sweep", strategy="serial") as sweep:
        with tracer.span("probe", S=2) as probe:
            with tracer.span("encode"):
                pass
            with tracer.span("solve"):
                pass
            probe.set(verdict="sat")

    roots = tracer.roots()
    assert [r.name for r in roots] == ["sweep"]
    assert sweep.attrs == {"strategy": "serial"}
    assert [c.name for c in sweep.children] == ["probe"]
    assert [c.name for c in probe.children] == ["encode", "solve"]
    assert probe.attrs == {"S": 2, "verdict": "sat"}
    assert probe.duration_s >= 0.0
    assert probe.end_s == pytest.approx(probe.start_s + probe.duration_s)


def test_sibling_spans_attach_in_order():
    tracer = Tracer()
    for index in range(3):
        with tracer.span("probe", index=index):
            pass
    assert [r.attrs["index"] for r in tracer.roots()] == [0, 1, 2]


def test_exception_marks_span_and_still_attaches():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("solve"):
            raise RuntimeError("boom")
    (root,) = tracer.roots()
    assert root.attrs["error"] == "RuntimeError"


def test_nesting_is_per_thread():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def work(tag):
        with tracer.span("outer", tag=tag):
            barrier.wait()  # both threads hold an open span at once
            with tracer.span("inner", tag=tag):
                pass

    threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    roots = tracer.roots()
    assert sorted(r.attrs["tag"] for r in roots) == ["a", "b"]
    for root in roots:
        # Each thread's inner span nests under its own outer span.
        assert [c.attrs["tag"] for c in root.children] == [root.attrs["tag"]]


def test_instant_records_zero_duration_event():
    tracer = Tracer()
    with tracer.span("sweep"):
        tracer.instant("probe", cache_hit=True)
    (sweep,) = tracer.roots()
    (probe,) = sweep.children
    assert probe.duration_s == 0.0
    assert probe.attrs == {"cache_hit": True}


def test_open_close_allows_overlapping_spans():
    tracer = Tracer()
    first = tracer.open("sweep", S=2)
    second = tracer.open("sweep", S=3)  # both open on one thread
    tracer.close(second, committed=False)
    tracer.close(first, committed=True)
    tracer.close(first)  # idempotent
    roots = tracer.roots()
    assert [r.attrs["S"] for r in roots] == [3, 2]
    assert roots[1].attrs["committed"] is True
    # The internal monotonic stamp never leaks into attributes.
    assert all("_mono0" not in r.attrs for r in roots)


# ----------------------------------------------------------------------
# Cross-process re-parenting
# ----------------------------------------------------------------------
def test_adopt_reparents_exported_spans_keeping_pid_tid():
    worker = Tracer()
    with worker.span("probe", S=3) as probe:
        with worker.span("solve"):
            pass
    exported = worker.export()
    # Simulate the pickled round trip through the pool result.
    exported = json.loads(json.dumps(exported))

    parent = Tracer()
    with parent.span("sweep") as sweep:
        sweep.adopt(exported)

    (sweep,) = parent.roots()
    (adopted,) = sweep.children
    assert adopted.name == "probe"
    assert adopted.attrs == {"S": 3}
    assert adopted.pid == probe.pid and adopted.tid == probe.tid
    assert [c.name for c in adopted.children] == ["solve"]
    assert adopted.duration_s == pytest.approx(probe.duration_s)


def test_span_dict_round_trip():
    span = Span("probe", {"S": 2, "verdict": "sat"}, start_s=10.0, duration_s=0.5)
    span.children.append(Span("solve", start_s=10.1, duration_s=0.3))
    clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
    assert clone.to_dict() == span.to_dict()


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_schema_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("sweep", strategy="serial"):
        with tracer.span("probe", S=2, C=1, R=2, verdict="sat"):
            pass
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(path)
    trace = json.loads(path.read_text())

    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert [e["name"] for e in events] == ["sweep", "probe"]
    for event in events:
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
    assert events[1]["args"] == {"S": 2, "C": 1, "R": 2, "verdict": "sat"}
    # Timestamps are normalized to the earliest span.
    assert min(e["ts"] for e in events) == 0.0

    summary = summarize_chrome_trace(trace)
    assert "2 events" in summary
    assert "probe" in summary and "sweep" in summary


def test_chrome_trace_of_empty_tracer():
    assert spans_to_chrome_trace([]) == {
        "traceEvents": [],
        "displayTimeUnit": "ms",
        "otherData": {"origin_epoch_s": 0.0, "producer": "repro.telemetry"},
    }
    assert summarize_chrome_trace({"traceEvents": []}) == "empty trace (no events)"


# ----------------------------------------------------------------------
# Coverage helper
# ----------------------------------------------------------------------
def test_span_coverage_merges_overlaps():
    spans = [
        Span("probe", start_s=0.0, duration_s=2.0),
        Span("probe", start_s=1.0, duration_s=2.0),  # overlaps the first
        Span("probe", start_s=5.0, duration_s=1.0),
        Span("other", start_s=0.0, duration_s=10.0),
    ]
    # Union of probe intervals: [0,3] + [5,6] = 4s of a 10s extent.
    assert span_coverage(spans, "probe") == pytest.approx(0.4)
    assert span_coverage(spans, "probe", total_s=8.0) == pytest.approx(0.5)
    assert span_coverage([], "probe") == 0.0


def test_iter_spans_walks_whole_forest():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                pass
        with tracer.span("d"):
            pass
    names = sorted(s.name for s in iter_spans(tracer.roots()))
    assert names == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# Installation / no-op path
# ----------------------------------------------------------------------
def test_default_tracer_is_the_null_singleton():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    # Every call site shares one immutable object: nothing is allocated.
    span = NULL_TRACER.span("probe", S=3)
    assert span is NULL_SPAN
    assert NULL_TRACER.instant("x") is NULL_SPAN
    assert NULL_TRACER.open("x") is NULL_SPAN
    with span as inner:
        inner.set(verdict="sat")
        inner.adopt([{"name": "probe"}])
    assert span.attrs == {} and span.children == ()
    assert NULL_TRACER.roots() == [] and NULL_TRACER.export() == []
    assert NULL_TRACER.chrome_trace()["traceEvents"] == []


def test_tracing_swaps_and_restores():
    assert get_tracer() is NULL_TRACER
    with tracing() as tracer:
        assert get_tracer() is tracer
        assert tracer.enabled
        nested = Tracer()
        with tracing(nested):
            assert get_tracer() is nested
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_set_tracer_none_restores_null():
    previous = set_tracer(Tracer())
    assert previous is NULL_TRACER
    set_tracer(None)
    assert get_tracer() is NULL_TRACER


def test_listener_sees_finished_spans():
    tracer = Tracer()
    seen = []
    tracer.add_listener(seen.append)
    with tracer.span("sweep"):
        with tracer.span("probe"):
            pass
    # Children finish before their parents.
    assert [s.name for s in seen] == ["probe", "sweep"]
    tracer.remove_listener(seen.append)
    with tracer.span("late"):
        pass
    assert [s.name for s in seen] == ["probe", "sweep"]

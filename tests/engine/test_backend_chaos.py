"""Chaos tests: crashing subprocess solvers, retry/backoff and quarantine.

The "solver" here is a tiny Python script whose exit code follows a plan
written next to it: SAT-competition codes (10/20/0) are verdicts, anything
else is a crash.  A side-car counter file makes crash-then-recover
scenarios deterministic without real kissat/cadical binaries.
"""

import sys
import textwrap

import pytest

from repro.core import make_instance, synthesize
from repro.engine import (
    BackendQuarantine,
    DimacsSolverBackend,
    classify_dimacs_exit,
    register_backend,
    unregister_backend,
)
from repro.solver.sat import SolveResult
from repro.solver.cnf import CNF
from repro.topology import ring


def make_crashy_solver(tmp_path, exit_codes):
    """A fake DIMACS solver whose Nth invocation exits with exit_codes[N]
    (the last code repeats forever).  Returns (script_path, counter_path)."""
    counter = tmp_path / "attempts.txt"
    script = tmp_path / "crashy_solver.py"
    script.write_text(
        textwrap.dedent(
            f"""
            import pathlib, sys
            counter = pathlib.Path({str(counter)!r})
            n = int(counter.read_text()) if counter.exists() else 0
            counter.write_text(str(n + 1))
            codes = {list(exit_codes)!r}
            code = codes[min(n, len(codes) - 1)]
            if code == 10:
                print("s SATISFIABLE")
                print("v 1 0")
            sys.exit(code)
            """
        )
    )
    return script, counter


def crashy_backend(tmp_path, exit_codes, **kwargs):
    # name="crashy" keeps the backend out of _DIMACS_LIMIT_FLAGS, so no
    # solver-specific limit flags are appended to the command line.
    script, counter = make_crashy_solver(tmp_path, exit_codes)
    backend = DimacsSolverBackend(
        sys.executable,
        name="crashy",
        extra_args=(str(script),),
        **kwargs,
    )
    return backend, counter


def tiny_cnf():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clause([a])
    return cnf


class TestExitClassification:
    def test_sat_competition_codes(self):
        assert classify_dimacs_exit(10) == "sat"
        assert classify_dimacs_exit(20) == "unsat"
        assert classify_dimacs_exit(0) == "unknown"

    @pytest.mark.parametrize("code", [1, 7, 127, -9, -11])
    def test_everything_else_is_a_crash(self, code):
        assert classify_dimacs_exit(code) == "crash"


class TestQuarantine:
    def test_benches_after_threshold_consecutive_crashes(self):
        q = BackendQuarantine(threshold=3)
        assert not q.record_crash("x")
        assert not q.record_crash("x")
        assert q.record_crash("x")  # third consecutive crash benches
        assert q.is_quarantined("x")

    def test_success_resets_the_counter(self):
        q = BackendQuarantine(threshold=2)
        q.record_crash("x")
        q.record_success("x")
        q.record_crash("x")
        assert not q.is_quarantined("x")

    def test_cooldown_readmits(self):
        clock = [0.0]
        q = BackendQuarantine(threshold=1, cooldown_s=10.0, clock=lambda: clock[0])
        q.record_crash("x")
        assert q.is_quarantined("x")
        clock[0] = 11.0
        assert not q.is_quarantined("x")

    def test_release_and_stats(self):
        q = BackendQuarantine(threshold=1)
        q.record_crash("x")
        assert q.quarantined() == ["x"]
        q.release("x")
        assert q.quarantined() == []
        stats = q.stats()
        assert stats["total_crashes"] == {"x": 1}


class TestCrashRetry:
    def test_crash_then_verdict_is_retried(self, tmp_path):
        backend, counter = crashy_backend(
            tmp_path, [7, 7, 20], max_retries=2, retry_backoff_s=0.0,
            quarantine=BackendQuarantine(threshold=3),
        )
        handle = backend.create()
        handle.load(tiny_cnf())
        assert handle.solve() is SolveResult.UNSAT
        assert int(counter.read_text()) == 3
        stats = handle.stats()
        assert stats["crashes"] == 2
        assert stats["retries"] == 2
        assert stats["exhausted_calls"] == 0

    def test_crash_then_sat_parses_model(self, tmp_path):
        backend, _ = crashy_backend(
            tmp_path, [137, 10], max_retries=1, retry_backoff_s=0.0,
            quarantine=BackendQuarantine(),
        )
        handle = backend.create()
        handle.load(tiny_cnf())
        assert handle.solve() is SolveResult.SAT
        assert handle.model()[1] is True

    def test_exhausted_retries_report_unknown_not_crash(self, tmp_path):
        backend, counter = crashy_backend(
            tmp_path, [9], max_retries=2, retry_backoff_s=0.0,
            quarantine=BackendQuarantine(threshold=100),
        )
        handle = backend.create()
        handle.load(tiny_cnf())
        assert handle.solve() is SolveResult.UNKNOWN
        assert int(counter.read_text()) == 3  # 1 attempt + 2 retries
        assert handle.stats()["exhausted_calls"] == 1

    def test_exhausted_calls_feed_the_quarantine(self, tmp_path):
        quarantine = BackendQuarantine(threshold=2)
        backend, _ = crashy_backend(
            tmp_path, [9], max_retries=0, retry_backoff_s=0.0, quarantine=quarantine,
        )
        handle = backend.create()
        handle.load(tiny_cnf())
        handle.solve()
        assert not quarantine.is_quarantined("crashy")
        handle.solve()
        assert quarantine.is_quarantined("crashy")

    def test_verdict_resets_quarantine_counter(self, tmp_path):
        quarantine = BackendQuarantine(threshold=2)
        backend, _ = crashy_backend(
            tmp_path, [9, 20, 9], max_retries=0, retry_backoff_s=0.0,
            quarantine=quarantine,
        )
        handle = backend.create()
        handle.load(tiny_cnf())
        handle.solve()  # crash -> counter 1
        handle.solve()  # unsat -> counter reset
        handle.solve()  # crash -> counter 1 again
        assert not quarantine.is_quarantined("crashy")


class TestSweepSurvival:
    def test_synthesis_survives_an_always_crashing_backend(self, tmp_path):
        """A dying solver degrades the answer to UNKNOWN; it never raises."""
        backend, _ = crashy_backend(
            tmp_path, [9], max_retries=1, retry_backoff_s=0.0,
            quarantine=BackendQuarantine(threshold=100),
        )
        register_backend(backend, replace=True)
        try:
            result = synthesize(
                make_instance("Allgather", ring(4), 1, 2, 3), backend="crashy"
            )
            assert result.is_unknown
            assert result.solver_stats.get("exhausted_calls", 0) >= 1
        finally:
            unregister_backend("crashy")

    def test_worker_crashes_feed_the_parent_quarantine(self, tmp_path):
        """Crash counters travel back from pool workers: a portfolio
        member that dies in child processes gets benched in the parent."""
        from repro.engine import SpeculativeDispatcher, SweepRequest

        quarantine = BackendQuarantine(threshold=2)
        backend, counter = crashy_backend(
            tmp_path, [9], max_retries=0, retry_backoff_s=0.0, quarantine=quarantine,
        )
        register_backend(backend, replace=True)
        try:
            dispatcher = SpeculativeDispatcher(
                max_workers=2, portfolio=["crashy"], quarantine=quarantine
            )
            request = SweepRequest(
                collective="Allgather", topology=ring(4), steps=3,
                candidates=((3, 1), (4, 1)),
            )
            outcome = dispatcher.sweep(request)
            # A dying solver degrades every probe to UNKNOWN, never raises.
            assert outcome.results
            assert all(r.is_unknown for r in outcome.results)
            assert int(counter.read_text()) >= 2
            assert quarantine.is_quarantined("crashy")
        finally:
            unregister_backend("crashy")

    def test_quarantined_backend_is_not_raced(self, tmp_path):
        """Submit-time filtering: a benched portfolio member receives no
        work, and the sweep completes on the healthy backends alone."""
        from repro.engine import SpeculativeDispatcher, SweepRequest

        quarantine = BackendQuarantine(threshold=1)
        quarantine.record_crash("crashy")  # benched before the sweep
        backend, counter = crashy_backend(
            tmp_path, [9], max_retries=0, retry_backoff_s=0.0, quarantine=quarantine,
        )
        register_backend(backend, replace=True)
        try:
            dispatcher = SpeculativeDispatcher(
                max_workers=2, portfolio=["cdcl", "crashy"], quarantine=quarantine
            )
            request = SweepRequest(
                collective="Allgather", topology=ring(4), steps=3,
                candidates=((3, 1), (4, 1)),
            )
            outcome = dispatcher.sweep(request)
            assert any(r.is_sat for r in outcome.results)
            assert not counter.exists()  # crashy was never invoked
        finally:
            unregister_backend("crashy")

    def test_fully_quarantined_portfolio_still_solves(self, tmp_path):
        """When every member is benched the full portfolio races anyway —
        refusing to solve would be worse than racing flaky solvers."""
        from repro.engine import SpeculativeDispatcher, SweepRequest

        quarantine = BackendQuarantine(threshold=1)
        quarantine.record_crash("cdcl")
        dispatcher = SpeculativeDispatcher(
            max_workers=2, portfolio=["cdcl"], quarantine=quarantine
        )
        request = SweepRequest(
            collective="Allgather", topology=ring(4), steps=3,
            candidates=((3, 1), (4, 1)),
        )
        outcome = dispatcher.sweep(request)
        assert any(r.is_sat for r in outcome.results)

"""Tests for the solver-backend registry."""

import pytest

from repro.core import make_instance, synthesize
from repro.engine import (
    BackendError,
    CdclBackend,
    CdclHandle,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.solver import SolveResult
from repro.topology import ring


class TestRegistry:
    def test_default_backend_is_cdcl(self):
        assert get_backend().name == "cdcl"
        assert get_backend(None).name == "cdcl"
        assert "cdcl" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            get_backend("z3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError):
            register_backend(CdclBackend())

    def test_default_cannot_be_unregistered(self):
        with pytest.raises(BackendError):
            unregister_backend("cdcl")

    def test_nameless_backend_rejected(self):
        class Nameless:
            name = ""

            def create(self):  # pragma: no cover
                return CdclHandle()

        with pytest.raises(BackendError):
            register_backend(Nameless())


class CountingBackend:
    """A custom backend wrapping the CDCL handle, counting create() calls."""

    name = "counting"

    def __init__(self):
        self.created = 0

    def create(self):
        self.created += 1
        return CdclHandle()


class TestCustomBackend:
    def test_synthesize_routes_through_registered_backend(self):
        backend = CountingBackend()
        register_backend(backend, replace=True)
        try:
            result = synthesize(
                make_instance("Allgather", ring(4), 1, 2, 3), backend="counting"
            )
            assert backend.created == 1
            assert result.backend == "counting"
            assert result.is_sat
            result.algorithm.verify()
        finally:
            unregister_backend("counting")

    def test_pareto_reports_backend_on_points(self):
        backend = CountingBackend()
        register_backend(backend, replace=True)
        try:
            from repro.core import pareto_synthesize

            frontier = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=3, backend="counting"
            )
            assert frontier.backend == "counting"
            assert frontier.points
            assert all(p.backend == "counting" for p in frontier.points)
            assert backend.created > 0
        finally:
            unregister_backend("counting")


class TestCdclHandle:
    def test_handle_solves_and_models(self):
        from repro.solver import CNF

        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([-a])
        handle = CdclHandle()
        assert handle.load(cnf)
        assert handle.solve() is SolveResult.SAT
        model = handle.model()
        assert model[b] and not model[a]
        # Incremental: assumptions flip the answer without reloading.
        assert handle.solve([-b]) is SolveResult.UNSAT
        assert handle.solve([b]) is SolveResult.SAT

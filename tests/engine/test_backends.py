"""Tests for the solver-backend registry."""

import pytest

from repro.core import make_instance, synthesize
from repro.engine import (
    BackendError,
    CdclBackend,
    CdclHandle,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.solver import SolveResult
from repro.topology import ring


class TestRegistry:
    def test_default_backend_is_cdcl(self):
        assert get_backend().name == "cdcl"
        assert get_backend(None).name == "cdcl"
        assert "cdcl" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            get_backend("z3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError):
            register_backend(CdclBackend())

    def test_default_cannot_be_unregistered(self):
        with pytest.raises(BackendError):
            unregister_backend("cdcl")

    def test_nameless_backend_rejected(self):
        class Nameless:
            name = ""

            def create(self):  # pragma: no cover
                return CdclHandle()

        with pytest.raises(BackendError):
            register_backend(Nameless())


class CountingBackend:
    """A custom backend wrapping the CDCL handle, counting create() calls."""

    name = "counting"

    def __init__(self):
        self.created = 0

    def create(self):
        self.created += 1
        return CdclHandle()


class TestCustomBackend:
    def test_synthesize_routes_through_registered_backend(self):
        backend = CountingBackend()
        register_backend(backend, replace=True)
        try:
            result = synthesize(
                make_instance("Allgather", ring(4), 1, 2, 3), backend="counting"
            )
            assert backend.created == 1
            assert result.backend == "counting"
            assert result.is_sat
            result.algorithm.verify()
        finally:
            unregister_backend("counting")

    def test_pareto_reports_backend_on_points(self):
        backend = CountingBackend()
        register_backend(backend, replace=True)
        try:
            from repro.core import pareto_synthesize

            frontier = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=3, backend="counting"
            )
            assert frontier.backend == "counting"
            assert frontier.points
            assert all(p.backend == "counting" for p in frontier.points)
            assert backend.created > 0
        finally:
            unregister_backend("counting")


class TestCdclHandle:
    def test_handle_solves_and_models(self):
        from repro.solver import CNF

        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        cnf.add_clause([-a])
        handle = CdclHandle()
        assert handle.load(cnf)
        assert handle.solve() is SolveResult.SAT
        model = handle.model()
        assert model[b] and not model[a]
        # Incremental: assumptions flip the answer without reloading.
        assert handle.solve([-b]) is SolveResult.UNSAT
        assert handle.solve([b]) is SolveResult.SAT


FAKE_DIMACS_SOLVER = '''#!/usr/bin/env python3
"""A SAT-competition-style DIMACS solver wrapping the project's CDCL core."""
import sys
sys.path.insert(0, {src!r})
from repro.solver import CNF, SATSolver, SolveResult

cnf = CNF.from_dimacs(open(sys.argv[-1]).read())
solver = SATSolver()
if not solver.add_cnf(cnf):
    print("s UNSATISFIABLE")
    sys.exit(20)
result = solver.solve()
if result is SolveResult.SAT:
    print("s SATISFIABLE")
    lits = [v if val else -v for v, val in sorted(solver.model().items())]
    print("v " + " ".join(map(str, lits)) + " 0")
    sys.exit(10)
print("s UNSATISFIABLE")
sys.exit(20)
'''


@pytest.fixture
def fake_dimacs_solver(tmp_path):
    """An executable DIMACS solver script usable as a subprocess backend."""
    import os
    from pathlib import Path

    src = str(Path(__file__).resolve().parents[2] / "src")
    script = tmp_path / "fakesat"
    script.write_text(FAKE_DIMACS_SOLVER.format(src=src))
    script.chmod(0o755)
    return str(script)


class TestDimacsBackend:
    def test_subprocess_solver_sat_and_unsat(self, fake_dimacs_solver):
        from repro.engine import DimacsSolverBackend

        register_backend(DimacsSolverBackend(fake_dimacs_solver, name="fakesat"))
        try:
            sat = synthesize(
                make_instance("Allgather", ring(4), 1, 2, 3), backend="fakesat"
            )
            assert sat.is_sat and sat.backend == "fakesat"
            sat.algorithm.verify()
            assert sat.solver_stats["subprocess_calls"] == 1
            unsat = synthesize(
                make_instance("Allgather", ring(4), 1, 1, 1), backend="fakesat"
            )
            assert unsat.is_unsat
        finally:
            unregister_backend("fakesat")

    def test_assumptions_become_unit_clauses(self, fake_dimacs_solver):
        from repro.engine import DimacsSolverBackend
        from repro.solver import CNF

        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        handle = DimacsSolverBackend(fake_dimacs_solver, name="fakesat2").create()
        assert handle.load(cnf)
        assert handle.solve([-a]) is SolveResult.SAT
        assert handle.model()[b]
        assert handle.solve([-a, -b]) is SolveResult.UNSAT

    def test_missing_binary_raises_backend_error(self):
        from repro.engine import DimacsSolverBackend
        from repro.solver import CNF

        handle = DimacsSolverBackend("/nonexistent/kissat", name="kissat").create()
        cnf = CNF()
        cnf.add_clause([cnf.new_var()])
        handle.load(cnf)
        with pytest.raises(BackendError, match="cannot run"):
            handle.solve()

    def test_path_registration_is_gated(self):
        from repro.engine import register_dimacs_backends

        # The CI container ships neither kissat nor cadical: nothing new is
        # registered for absent binaries, and the call is idempotent.
        registered = register_dimacs_backends(("definitely-not-a-solver",))
        assert registered == []

    def test_conflict_limit_without_native_flag_fails_fast(self, fake_dimacs_solver):
        from repro.engine import DimacsSolverBackend
        from repro.solver import CNF

        handle = DimacsSolverBackend(fake_dimacs_solver, name="fakesat3").create()
        cnf = CNF()
        cnf.add_clause([cnf.new_var()])
        handle.load(cnf)
        with pytest.raises(BackendError, match="conflict-budget"):
            handle.solve(conflict_limit=100)

"""Tests for the candidate-sweep dispatchers, including the determinism
acceptance criterion: the parallel dispatcher returns byte-identical Pareto
frontiers to the serial path on the small test topologies.
"""

import json

import pytest

from repro.core import pareto_synthesize
from repro.engine import (
    DispatchError,
    IncrementalDispatcher,
    ParallelDispatcher,
    SerialDispatcher,
    SweepRequest,
    make_dispatcher,
)
from repro.topology import fully_connected, line, ring, star


def frontier_bytes(frontier) -> bytes:
    return json.dumps(frontier.to_dict(include_timing=False), sort_keys=True).encode()


class TestMakeDispatcher:
    def test_strategies(self):
        assert isinstance(make_dispatcher("serial"), SerialDispatcher)
        assert isinstance(make_dispatcher("incremental"), IncrementalDispatcher)
        assert isinstance(make_dispatcher("parallel"), ParallelDispatcher)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DispatchError):
            make_dispatcher("quantum")

    def test_invalid_workers_rejected(self):
        with pytest.raises(DispatchError):
            ParallelDispatcher(max_workers=0)


class TestParallelDeterminism:
    """Acceptance criterion: byte-identical frontiers, serial vs parallel."""

    @pytest.mark.parametrize(
        "collective,topology,k,max_steps",
        [
            ("Allgather", ring(4), 0, 4),
            ("Allgather", ring(4), 1, 3),
            ("Gather", line(3), 0, 4),
            ("Broadcast", star(5), 0, 3),
            ("Alltoall", fully_connected(3), 0, 3),
            ("Allreduce", ring(4), 0, 3),
        ],
        ids=lambda v: getattr(v, "name", str(v)),
    )
    def test_frontiers_byte_identical(self, collective, topology, k, max_steps):
        serial = pareto_synthesize(
            collective, topology, k=k, max_steps=max_steps, strategy="serial"
        )
        parallel = pareto_synthesize(
            collective, topology, k=k, max_steps=max_steps,
            strategy="parallel", max_workers=2,
        )
        assert frontier_bytes(serial) == frontier_bytes(parallel)

    def test_parallel_sweep_replays_serial_rule(self):
        request = SweepRequest(
            collective="Allgather",
            topology=ring(6),
            steps=3,
            candidates=((3, 1), (4, 1), (5, 1)),
        )
        serial = SerialDispatcher().sweep(request)
        parallel = ParallelDispatcher(max_workers=2).sweep(request)
        assert [r.status for r in parallel.results] == [r.status for r in serial.results]
        assert len(parallel.results) == len(serial.results)

    def test_single_candidate_runs_inline(self):
        # No pool is spun up for a single candidate; outcome matches serial.
        request = SweepRequest(
            collective="Allgather",
            topology=ring(4),
            steps=2,
            candidates=((2, 1),),
        )
        outcome = ParallelDispatcher(max_workers=4).sweep(request)
        assert outcome.first_sat is not None


class TestParallelWithCustomBackend:
    def test_runtime_registered_backend_reaches_the_workers(self):
        # Worker processes start with a fresh registry; the dispatcher ships
        # the backend object along so runtime registrations still compose
        # with strategy="parallel".
        from repro.engine import register_backend, unregister_backend
        from engine_backend_helper import PickleableCountingBackend

        register_backend(PickleableCountingBackend(), replace=True)
        try:
            frontier = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=3,
                strategy="parallel", max_workers=2, backend="pickle-counting",
            )
            assert frontier.points
            assert all(p.backend == "pickle-counting" for p in frontier.points)
        finally:
            unregister_backend("pickle-counting")


class TestIncrementalEquivalence:
    def test_incremental_matches_serial_signatures(self):
        # Incremental solving may find a different concrete schedule, but the
        # frontier's (C, S, R) signatures, statuses and optimality flags are
        # determined by satisfiability alone and must agree.
        serial = pareto_synthesize("Allgather", ring(6), k=1, max_steps=4, strategy="serial")
        incremental = pareto_synthesize(
            "Allgather", ring(6), k=1, max_steps=4, strategy="incremental"
        )
        assert [p.signature for p in incremental.points] == [
            p.signature for p in serial.points
        ]
        assert [p.optimality_label() for p in incremental.points] == [
            p.optimality_label() for p in serial.points
        ]
        for point in incremental.points:
            point.algorithm.verify()

    def test_naive_encoding_falls_back_to_serial(self):
        request = SweepRequest(
            collective="Allgather",
            topology=ring(4),
            steps=2,
            candidates=((2, 1), (3, 1)),
            encoding="naive",
        )
        outcome = IncrementalDispatcher().sweep(request)
        assert outcome.first_sat is not None
        assert outcome.stats.encode_calls >= 1


class TestEngineStatsOnFrontier:
    def test_frontier_records_engine_stats(self):
        frontier = pareto_synthesize("Allgather", ring(4), k=0, max_steps=3)
        stats = frontier.engine_stats
        assert stats["candidates_probed"] >= len(frontier.points)
        assert stats["encode_calls"] >= 1
        assert stats["cache_hits"] == 0

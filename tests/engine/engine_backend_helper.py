"""Importable helper module so test backends can be pickled into pool workers."""

from repro.engine import CdclHandle


class PickleableCountingBackend:
    """A module-level backend class (picklable by reference) for dispatch tests."""

    name = "pickle-counting"

    def __init__(self):
        self.created = 0

    def create(self):
        self.created += 1
        return CdclHandle()

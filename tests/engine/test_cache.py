"""Tests for the persistent algorithm cache, including the acceptance
criterion that a warm-cache run of examples/quickstart.py performs zero
solver calls.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.core import make_instance, pareto_synthesize, synthesize
from repro.engine import (
    AlgorithmCache,
    fingerprint,
    instance_fingerprint,
    lookup_result,
)
from repro.runtime import LoweringError, lower_cached
from repro.solver import SATSolver
from repro.topology import dgx1, ring

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture
def cache(tmp_path):
    return AlgorithmCache(tmp_path / "algorithms")


def forbid_solving(monkeypatch):
    """Make any SAT-solver invocation fail the test."""

    def boom(self, *args, **kwargs):  # pragma: no cover - the assertion itself
        raise AssertionError("solver was invoked during a warm-cache run")

    monkeypatch.setattr(SATSolver, "solve", boom)


class TestFingerprint:
    def test_name_and_cost_params_do_not_affect_key(self):
        import dataclasses

        topo = ring(4)
        renamed = dataclasses.replace(topo, name="other", alpha=1.0, beta=2.0)
        assert fingerprint("Allgather", topo, 1, 2, 3) == fingerprint(
            "Allgather", renamed, 1, 2, 3
        )

    def test_signature_fields_affect_key(self):
        topo = ring(4)
        base = fingerprint("Allgather", topo, 1, 2, 3)
        assert base != fingerprint("Allgather", topo, 1, 2, 2)
        assert base != fingerprint("Allgather", topo, 2, 2, 3)
        assert base != fingerprint("Gather", topo, 1, 2, 3)
        assert base != fingerprint("Allgather", ring(6), 1, 2, 3)
        assert base != fingerprint("Allgather", topo, 1, 2, 3, prune=False)
        assert base != fingerprint("Allgather", topo, 1, 2, 3, encoding="naive")


class TestCacheBasics:
    def test_sat_roundtrip(self, cache):
        instance = make_instance("Allgather", ring(4), 1, 2, 3)
        cold = synthesize(instance, cache=cache)
        assert not cold.cache_hit
        warm = synthesize(instance, cache=cache)
        assert warm.cache_hit
        assert warm.is_sat
        warm.algorithm.verify()
        assert warm.backend == cold.backend

    def test_unsat_cached(self, cache):
        instance = make_instance("Allgather", ring(4), 1, 1, 1)
        assert not synthesize(instance, cache=cache).cache_hit
        warm = synthesize(instance, cache=cache)
        assert warm.cache_hit and warm.is_unsat

    def test_unknown_not_cached(self, cache):
        instance = make_instance("Allgather", ring(6), 2, 5, 5)
        result = synthesize(instance, cache=cache, conflict_limit=1)
        if result.is_unknown:
            assert len(cache) == 0
            assert not synthesize(instance, cache=cache, conflict_limit=1).cache_hit

    def test_corrupted_entry_is_a_miss(self, cache):
        instance = make_instance("Allgather", ring(4), 1, 2, 2)
        synthesize(instance, cache=cache)
        key = instance_fingerprint(instance)
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")
        assert lookup_result(cache, instance) is None
        # And a fresh solve repairs the entry.
        repaired = synthesize(instance, cache=cache)
        assert not repaired.cache_hit
        assert synthesize(instance, cache=cache).cache_hit

    def test_unwritable_cache_never_fails_synthesis(self):
        # The cache is an optimization: a broken cache directory must not
        # turn a successful solve into an error.
        broken = AlgorithmCache("/dev/null/not-a-directory")
        instance = make_instance("Allgather", ring(4), 1, 2, 3)
        result = synthesize(instance, cache=broken)
        assert result.is_sat and not result.cache_hit
        result.algorithm.verify()

    def test_tampered_algorithm_fails_closed(self, cache):
        instance = make_instance("Allgather", ring(4), 1, 2, 2)
        synthesize(instance, cache=cache)
        key = instance_fingerprint(instance)
        path = cache._path(key)
        data = json.loads(path.read_text(encoding="utf-8"))
        # Drop every send from the schedule; verification must reject it.
        for step in data["algorithm"]["steps"]:
            step["sends"] = []
        path.write_text(json.dumps(data), encoding="utf-8")
        assert lookup_result(cache, instance) is None
        assert not path.exists()  # the bad entry was discarded


class TestWarmRunsPerformZeroSolverCalls:
    def test_warm_synthesize_never_touches_the_solver(self, cache, monkeypatch):
        instance = make_instance("Allgather", ring(4), 1, 2, 3)
        synthesize(instance, cache=cache)
        forbid_solving(monkeypatch)
        warm = synthesize(instance, cache=cache)
        assert warm.cache_hit and warm.is_sat

    def test_warm_pareto_never_touches_the_solver(self, cache, monkeypatch):
        kwargs = dict(k=1, max_steps=3, cache=cache)
        cold = pareto_synthesize("Allgather", ring(4), **kwargs)
        forbid_solving(monkeypatch)
        warm = pareto_synthesize("Allgather", ring(4), **kwargs)
        assert [p.signature for p in warm.points] == [p.signature for p in cold.points]
        assert all(p.cache_hit for p in warm.points)
        assert warm.engine_stats["cache_hits"] == warm.engine_stats["candidates_probed"]

    def test_warm_quickstart_performs_zero_solver_calls(self, tmp_path, monkeypatch, capsys):
        """Acceptance criterion: warm examples/quickstart.py -> no solving."""
        spec = importlib.util.spec_from_file_location(
            "quickstart_under_test", EXAMPLES_DIR / "quickstart.py"
        )
        quickstart = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(quickstart)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "qs-cache"))
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        quickstart.main()  # cold run populates the cache
        capsys.readouterr()

        forbid_solving(monkeypatch)
        quickstart.main()  # warm run must complete without any solver call
        out = capsys.readouterr().out
        assert "cached" in out
        assert "functional execution: OK" in out


class TestRuntimeLoadsCachedAlgorithms:
    def test_lower_cached_roundtrip(self, cache):
        topo = dgx1()
        instance = make_instance("Allgather", topo, 1, 2, 2)
        synthesize(instance, cache=cache)
        program = lower_cached(cache, "Allgather", topo, 1, 2, 2)
        assert program.num_ranks == topo.num_nodes

    def test_lower_cached_missing_entry_raises(self, cache):
        with pytest.raises(LoweringError):
            lower_cached(cache, "Allgather", ring(4), 1, 2, 3)


class TestParallelSharesTheCache:
    def test_parallel_workers_populate_the_cache(self, cache):
        frontier = pareto_synthesize(
            "Allgather", ring(4), k=1, max_steps=3,
            strategy="parallel", max_workers=2, cache=cache,
        )
        assert frontier.points
        assert len(cache) > 0
        # A warm serial re-run replays every probe from the workers' entries.
        warm = pareto_synthesize(
            "Allgather", ring(4), k=1, max_steps=3, strategy="serial", cache=cache
        )
        assert all(p.cache_hit for p in warm.points)


class TestEviction:
    def fill(self, cache, count=5):
        """Store `count` solved candidates with strictly increasing mtimes."""
        import os

        keys = []
        for rounds in range(3, 3 + count):
            result = synthesize(
                make_instance("Allgather", ring(4), 1, 2, rounds), cache=cache
            )
            assert result.is_sat
            key = instance_fingerprint(result.instance)
            keys.append(key)
        for index, key in enumerate(keys):
            path = cache._path(key)
            os.utime(path, (1000.0 + index, 1000.0 + index))
        return keys

    def test_evict_to_max_entries_is_lru_and_deterministic(self, cache):
        keys = self.fill(cache, 5)
        evicted = cache.evict(max_entries=2)
        assert evicted == keys[:3]  # oldest first
        assert len(cache) == 2
        assert cache.lookup(keys[3]) is not None
        assert cache.lookup(keys[4]) is not None
        assert cache.lookup(keys[0]) is None

    def test_hit_refreshes_recency(self, cache):
        import os

        keys = self.fill(cache, 3)
        # Touch the oldest entry via a lookup: it must survive eviction.
        before = cache._path(keys[0]).stat().st_mtime
        assert cache.lookup(keys[0]) is not None
        assert cache._path(keys[0]).stat().st_mtime > before
        evicted = cache.evict(max_entries=1)
        assert keys[0] not in evicted
        assert len(cache) == 1

    def test_evict_max_bytes(self, cache):
        keys = self.fill(cache, 4)
        target = sum(cache._path(k).stat().st_size for k in keys[2:])
        evicted = cache.evict(max_bytes=target)
        assert evicted == keys[:2]
        assert len(cache) == 2

    def test_evict_max_age(self, cache):
        keys = self.fill(cache, 4)  # mtimes 1000..1003
        evicted = cache.evict(max_age_s=10.0, now=1011.5)
        assert evicted == keys[:2]  # entries last used before now-10=1001.5

    def test_no_limits_is_noop(self, cache):
        self.fill(cache, 2)
        assert cache.evict() == []
        assert len(cache) == 2

    def test_negative_limits_rejected(self, cache):
        from repro.engine import CacheError

        with pytest.raises(CacheError):
            cache.evict(max_entries=-1)

    def test_entries_expose_instance_metadata(self, cache):
        self.fill(cache, 1)
        ((path, entry),) = cache.entries()
        assert entry.instance["collective"] == "Allgather"
        assert entry.instance["topology"] == "ring4"
        assert entry.instance["rounds"] == 3
        assert "Allgather on ring4 C=1 S=2 R=3" == entry.describe_instance()

    def test_old_entries_without_metadata_still_list(self, cache):
        self.fill(cache, 1)
        ((path, entry),) = cache.entries()
        data = json.loads(path.read_text())
        del data["instance"]
        path.write_text(json.dumps(data))
        ((_, reloaded),) = cache.entries()
        assert reloaded.instance is None
        assert "?" in reloaded.describe_instance()


class TestConcurrentMutation:
    """The planning-service prerequisite: threads sharing one cache
    directory may store, look up and evict concurrently without corrupting
    entries or raising."""

    def _entry(self, key_suffix: str):
        from repro.engine import CacheEntry

        key = f"{key_suffix:0>64}"
        return CacheEntry(key=key, status="unsat", backend="test", created_at=1.0)

    def test_threads_store_lookup_evict_without_errors(self, tmp_path):
        import threading

        cache = AlgorithmCache(tmp_path / "shared")
        errors = []
        barrier = threading.Barrier(6)

        def writer(offset):
            try:
                barrier.wait()
                for index in range(30):
                    cache.store(self._entry(f"{offset}{index:x}"))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def evictor():
            try:
                barrier.wait()
                for _ in range(15):
                    cache.evict(max_entries=10)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=evictor) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)

        assert errors == []
        # A final eviction under the lock reaches a consistent, bounded
        # state and every surviving entry is readable.
        cache.evict(max_entries=10)
        assert len(cache) <= 10
        for _, entry in cache.entries():
            assert entry.status == "unsat"

    def test_concurrent_evictions_never_double_report(self, tmp_path):
        """Two evictors pruning to the same limit must not both claim the
        same victim (the fcntl lock serializes index mutations)."""
        import threading

        cache = AlgorithmCache(tmp_path / "shared")
        for index in range(20):
            cache.store(self._entry(f"{index:x}"))
        results = []

        def evictor():
            results.append(cache.evict(max_entries=5))

        threads = [threading.Thread(target=evictor) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)

        evicted_a, evicted_b = results
        assert not (set(evicted_a) & set(evicted_b))
        assert len(cache) == 5

"""The deterministic UNKNOWN policy: family-frame budget exhaustion must
not change the frontier the sweep reports.

The incremental dispatcher probes candidates through shared-prefix family
frames — *larger* formulas than the standalone encodings every other
strategy solves, so a per-probe budget can exhaust on a frame where the
standalone formula would verdict.  The policy (``SweepRequest.unknown_retry``)
retries the exact standalone formula with the same budget before conceding
the lattice point, restoring cross-strategy frontier agreement under
injected resource limits.
"""

import pytest

from repro.core import make_instance, pareto_synthesize
from repro.core.synthesizer import SynthesisResult
from repro.engine import IncrementalDispatcher, SweepRequest
from repro.engine.session import SessionFamily
from repro.solver.sat import SolveResult
from repro.topology import line, ring

STRATEGIES = ("serial", "incremental", "parallel", "speculative")


def signatures(frontier):
    return [
        (
            p.status.value,
            p.signature,
            p.latency_optimal,
            p.bandwidth_optimal,
            p.pareto_optimal,
            p.proved,
        )
        for p in frontier.points
    ]


def _unknown_family_solve(monkeypatch):
    """Make every family-frame probe exhaust its budget (UNKNOWN)."""

    def fake_solve(self, steps, chunks, rounds, **kwargs):
        instance = make_instance(
            self.collective, self.topology, chunks, steps, rounds, root=self.root
        )
        return SynthesisResult(
            instance=instance, status=SolveResult.UNKNOWN, backend=self.backend_name
        )

    monkeypatch.setattr(SessionFamily, "solve", fake_solve)


class TestExactRetry:
    def request(self, **kwargs):
        return SweepRequest(
            collective="Allgather", topology=ring(4), steps=3,
            candidates=((3, 1), (4, 1)), **kwargs,
        )

    def test_unknown_frame_is_retried_exactly(self, monkeypatch):
        """A family frame that exhausts its budget must not concede the
        point: the exact standalone formula is retried and its verdict
        (here SAT) is what the sweep reports."""
        _unknown_family_solve(monkeypatch)
        outcome = IncrementalDispatcher().sweep(self.request())
        assert outcome.first_sat is not None
        assert outcome.stats.unknown_retries >= 1

    def test_retry_can_be_disabled(self, monkeypatch):
        _unknown_family_solve(monkeypatch)
        outcome = IncrementalDispatcher().sweep(self.request(unknown_retry=False))
        assert outcome.first_sat is None
        assert all(r.is_unknown for r in outcome.results)
        assert outcome.stats.unknown_retries == 0

    def test_sound_verdicts_are_never_retried(self):
        """SAT/UNSAT family answers are sound; no retry runs for them."""
        outcome = IncrementalDispatcher().sweep(self.request())
        assert outcome.first_sat is not None
        assert outcome.stats.unknown_retries == 0

    def test_retry_that_also_exhausts_concedes(self, monkeypatch):
        """When the standalone formula exhausts the budget too, the point
        is honestly UNKNOWN — the retry changes verdicts, never invents
        them."""
        from repro.core import synthesizer

        _unknown_family_solve(monkeypatch)

        def fake_synthesize(instance, **kwargs):
            return SynthesisResult(instance=instance, status=SolveResult.UNKNOWN)

        monkeypatch.setattr(synthesizer, "synthesize", fake_synthesize)
        outcome = IncrementalDispatcher().sweep(self.request())
        assert all(r.is_unknown for r in outcome.results)
        assert outcome.stats.unknown_retries == len(outcome.results)


class TestStrategyAgreementUnderLimits:
    """Satellite: all four strategies report the same frontier when every
    probe carries an injected per-probe resource limit."""

    @pytest.mark.parametrize(
        "collective,topology,k,max_steps",
        [("Allgather", ring(4), 1, 3), ("Gather", line(3), 0, 4)],
        ids=["allgather-ring4", "gather-line3"],
    )
    def test_frontiers_agree_under_conflict_limits(
        self, collective, topology, k, max_steps
    ):
        # cdcl conflict budgets are deterministic, so each strategy's
        # verdicts are reproducible; the policy makes them *agree*.
        frontiers = {
            strategy: pareto_synthesize(
                collective, topology, k=k, max_steps=max_steps,
                strategy=strategy, max_workers=2, conflict_limit=10_000,
            )
            for strategy in STRATEGIES
        }
        serial = signatures(frontiers["serial"])
        for strategy in STRATEGIES[1:]:
            assert signatures(frontiers[strategy]) == serial, (
                f"{strategy} frontier diverged from serial under conflict limits"
            )

    def test_incremental_with_dead_family_matches_serial(self, monkeypatch):
        """Extreme injection: every family frame exhausts its budget.  The
        exact-retry fallback must reduce the incremental frontier to the
        serial one."""
        serial = pareto_synthesize("Allgather", ring(4), k=1, max_steps=3,
                                   strategy="serial")
        _unknown_family_solve(monkeypatch)
        incremental = pareto_synthesize("Allgather", ring(4), k=1, max_steps=3,
                                        strategy="incremental")
        assert signatures(incremental) == signatures(serial)

"""SessionFamily: shared-prefix encodings across the (S, C, R) lattice.

The family contract is satisfiability-equivalence with cold solves at
every lattice point, one encoding per step count (however many chunk
counts a sweep probes), in-place chunk-budget extension, and a rebuild —
not an error — when a rounds budget is exceeded.
"""

import pytest

from repro.core import make_instance, synthesize
from repro.core.encoding import EncodingError, PrefixAnalysis, ScclEncoding
from repro.engine import IncrementalDispatcher, SessionFamily, SweepRequest
from repro.engine.session import SessionError
from repro.topology import line, ring, star


class TestLatticeEquivalence:
    @pytest.mark.parametrize(
        "collective,topology",
        [
            ("Allgather", ring(4)),
            ("Gather", line(3)),
            ("Broadcast", star(4)),
        ],
        ids=["allgather-ring4", "gather-line3", "broadcast-star4"],
    )
    def test_family_matches_cold_solves(self, collective, topology):
        family = SessionFamily(collective, topology)
        for steps in (2, 3):
            for chunks in (1, 2):
                for rounds in (steps, steps + 1):
                    probe = family.solve(
                        steps, chunks, rounds, max_chunks=2, max_rounds=steps + 1
                    )
                    cold = synthesize(
                        make_instance(collective, topology, chunks, steps, rounds)
                    )
                    assert probe.status == cold.status, (steps, chunks, rounds)
                    if probe.is_sat:
                        probe.algorithm.verify()
                        assert probe.algorithm.total_rounds == rounds
                        assert probe.algorithm.num_chunks == cold.instance.num_chunks
        # One encoding per step count served the whole 2x2x2 lattice slice.
        assert family.encode_calls == 2
        assert family.solver_calls == 8

    def test_rooted_non_default_root(self):
        family = SessionFamily("Broadcast", star(4), root=2)
        probe = family.solve(2, 2, 2, max_chunks=2)
        cold = synthesize(make_instance("Broadcast", star(4), 2, 2, 2, root=2))
        assert probe.status == cold.status


class TestBudgets:
    def test_chunk_budget_extends_in_place(self):
        family = SessionFamily("Allgather", ring(4))
        family.solve(3, 1, 3, max_chunks=1, max_rounds=4)
        assert family.extensions == 0
        # Exceeding the chunk budget (within the rounds budget) extends the
        # encoding in place rather than re-encoding it.
        probe = family.solve(3, 3, 4)
        cold = synthesize(make_instance("Allgather", ring(4), 3, 3, 4))
        assert probe.status == cold.status
        assert family.extensions == 1
        assert family.rebuilds == 0

    def test_rounds_budget_overflow_rebuilds(self):
        family = SessionFamily("Allgather", ring(4))
        family.solve(2, 1, 2, max_rounds=2)
        assert family.rebuilds == 0
        probe = family.solve(2, 1, 4)
        assert family.rebuilds == 1
        cold = synthesize(make_instance("Allgather", ring(4), 1, 2, 4))
        assert probe.status == cold.status

    def test_invalid_probes_rejected(self):
        family = SessionFamily("Allgather", ring(4))
        with pytest.raises(SessionError):
            family.solve(3, 1, 2)  # rounds below steps
        with pytest.raises(SessionError):
            family.solve(2, 0, 2)  # no chunks

    def test_describe_mentions_budgets(self):
        family = SessionFamily("Allgather", ring(4))
        family.solve(2, 2, 3, max_chunks=2, max_rounds=3)
        text = family.describe()
        assert "S=2" in text and "C<=2" in text and "R<=3" in text


class TestPrefixEncodingContracts:
    def test_extend_chunks_requires_selector(self):
        instance = make_instance("Allgather", ring(4), 1, 2, 2)
        encoder = ScclEncoding(instance)
        encoder.encode()
        with pytest.raises(EncodingError):
            encoder.extend_chunks(make_instance("Allgather", ring(4), 2, 2, 2))

    def test_extend_chunks_rejects_other_dimensions(self):
        instance = make_instance("Allgather", ring(4), 1, 2, 2)
        encoder = ScclEncoding(instance, chunk_selector=True)
        encoder.encode()
        with pytest.raises(EncodingError):
            encoder.extend_chunks(make_instance("Allgather", ring(4), 2, 3, 3))

    def test_chunks_assumptions_bounds_checked(self):
        instance = make_instance("Allgather", ring(4), 2, 2, 2)
        encoder = ScclEncoding(instance, chunk_selector=True)
        with pytest.raises(EncodingError):
            encoder.chunks_assumptions(1)  # before encode()
        encoder.encode()
        with pytest.raises(EncodingError):
            encoder.chunks_assumptions(3)  # beyond the budget
        assert len(encoder.chunks_assumptions(1)) == 2
        assert len(encoder.chunks_assumptions(2)) == 1  # top level: no upper lit

    def test_plain_encoding_rejects_chunk_frames(self):
        instance = make_instance("Allgather", ring(4), 2, 2, 2)
        encoder = ScclEncoding(instance)
        encoder.encode()
        with pytest.raises(EncodingError):
            encoder.chunks_assumptions(1)

    def test_analysis_is_shared_and_grown(self):
        topology = ring(4)
        analysis = PrefixAnalysis(topology)
        small = make_instance("Allgather", topology, 1, 2, 2)
        analysis.ensure(small)
        covered = len(analysis.chunk_dist)
        big = make_instance("Allgather", topology, 3, 2, 2)
        analysis.ensure(big)
        assert len(analysis.chunk_dist) > covered
        # Prefix rows are untouched by growth.
        for key in list(analysis.chunk_dist)[:covered]:
            assert key in analysis.chunk_dist


class TestIncrementalDispatcherFamilies:
    def test_one_encode_serves_mixed_chunk_sweep(self):
        request = SweepRequest(
            collective="Allgather",
            topology=ring(4),
            steps=3,
            candidates=((3, 2), (3, 1), (4, 2), (4, 1)),
            stop_at_first_sat=False,
        )
        outcome = IncrementalDispatcher().sweep(request)
        assert len(outcome.results) == 4
        assert outcome.stats.encode_calls == 1
        assert outcome.stats.solver_calls == 4

    def test_family_persists_across_sweeps(self):
        dispatcher = IncrementalDispatcher()
        topology = ring(4)
        for steps in (2, 3):
            request = SweepRequest(
                collective="Allgather",
                topology=topology,
                steps=steps,
                candidates=((steps, 1), (steps + 1, 1)),
            )
            dispatcher.sweep(request)
        # One family handles both step counts (two per-S encodings sharing
        # one reachability analysis).
        assert len(dispatcher._families) == 1
        family = next(iter(dispatcher._families.values()))
        assert family.encode_calls == 2

"""Bound-seeded synthesis: lattice algebra units and on/off property tests.

The unit half exercises the :class:`BoundsLedger` algebra on synthetic
point sets — feasibility cones, monotone UNSAT shadows, subsumption,
consistency guards and the probe/cut/prune planner.  The property half
runs real Pareto sweeps with bounds on and off across every dispatch
strategy and asserts the *Pareto-optimal* frontier subset is identical:
pruning may only ever drop dominated probes.
"""

from fractions import Fraction

import pytest

from repro.core import pareto_synthesize
from repro.core.instance import make_instance
from repro.core.synthesizer import SynthesisResult
from repro.engine import AlgorithmCache, SweepRequest, lookup_result, store_result
from repro.engine.bounds import (
    CUT,
    PROBE,
    PRUNE,
    BoundsError,
    BoundsLedger,
    FeasiblePoint,
    cut_result,
    seed_ledger,
)
from repro.engine.dispatch import (
    IncrementalDispatcher,
    ParallelDispatcher,
    SerialDispatcher,
    SpeculativeDispatcher,
)
from repro.solver import SolveResult
from repro.topology import dgx1, line, ring


def _sat_result(collective, topology, steps, rounds, chunks):
    instance = make_instance(collective, topology, chunks, steps, rounds)
    return SynthesisResult(instance=instance, status=SolveResult.SAT)


def _unsat_result(collective, topology, steps, rounds, chunks):
    instance = make_instance(collective, topology, chunks, steps, rounds)
    return SynthesisResult(instance=instance, status=SolveResult.UNSAT)


# ----------------------------------------------------------------------
# Lattice algebra on synthetic point sets
# ----------------------------------------------------------------------
class TestLedgerAlgebra:
    def _ledger(self):
        return BoundsLedger("Allgather", ring(4))

    def test_feasible_cone_membership(self):
        ledger = self._ledger()
        ledger.add_feasible(3, 4, 5)
        # Same point, more steps, more rounds, fewer chunks: all witnessed.
        assert ledger.known_feasible(3, 4, 5)
        assert ledger.known_feasible(4, 4, 5)
        assert ledger.known_feasible(3, 6, 5)
        assert ledger.known_feasible(3, 4, 2)
        # Fewer steps, fewer rounds or more chunks: outside the cone.
        assert ledger.known_feasible(2, 4, 5) is None
        assert ledger.known_feasible(3, 3, 5) is None
        assert ledger.known_feasible(3, 4, 6) is None

    def test_infeasible_shadow_membership(self):
        ledger = self._ledger()
        ledger.add_infeasible(3, 4, 5)
        # Fewer steps/rounds or more chunks are harder: all killed.
        assert ledger.known_infeasible(3, 4, 5) == (3, 4, 5)
        assert ledger.known_infeasible(2, 4, 5) == (3, 4, 5)
        assert ledger.known_infeasible(3, 3, 6) == (3, 4, 5)
        # Easier points are not killed.
        assert ledger.known_infeasible(4, 4, 5) is None
        assert ledger.known_infeasible(3, 5, 5) is None
        assert ledger.known_infeasible(3, 4, 4) is None

    def test_invalid_lattice_points_raise(self):
        ledger = self._ledger()
        with pytest.raises(BoundsError):
            ledger.add_feasible(0, 1, 1)
        with pytest.raises(BoundsError):
            ledger.add_feasible(3, 2, 1)  # rounds < steps
        with pytest.raises(BoundsError):
            ledger.add_infeasible(1, 1, 0)

    def test_contradictions_fail_loudly(self):
        ledger = self._ledger()
        ledger.add_feasible(2, 2, 3, source="baseline:test")
        # UNSAT inside the feasible cone would mean a wrong bound: raise
        # instead of silently over-pruning.
        with pytest.raises(BoundsError):
            ledger.add_infeasible(2, 2, 3)
        with pytest.raises(BoundsError):
            ledger.add_infeasible(3, 4, 2)
        other = self._ledger()
        other.add_infeasible(2, 2, 3)
        with pytest.raises(BoundsError):
            other.add_feasible(2, 2, 3)
        with pytest.raises(BoundsError):
            other.add_feasible(1, 2, 4)

    def test_feasible_subsumption_keeps_maximal_knowledge(self):
        ledger = self._ledger()
        ledger.add_feasible(3, 4, 5)
        # Dominated point: already witnessed, ignored.
        ledger.add_feasible(4, 5, 4)
        assert ledger.stats()["sweep_sats"] == 1
        # Dominating point replaces the old one.
        ledger.add_feasible(2, 3, 6)
        assert [(p.steps, p.rounds, p.chunks) for p in ledger._sweep_sats] == [
            (2, 3, 6)
        ]

    def test_infeasible_subsumption(self):
        ledger = self._ledger()
        ledger.add_infeasible(3, 4, 5)
        ledger.add_infeasible(2, 3, 6)  # already in the shadow: dropped
        assert ledger._infeasible == [(3, 4, 5)]
        ledger.add_infeasible(4, 5, 4)  # subsumes the original witness
        assert ledger._infeasible == [(4, 5, 4)]

    def test_caps(self):
        ledger = self._ledger()
        ledger.add_feasible(3, 3, 2, source="baseline:ring")
        ledger.add_feasible(2, 3, 2)  # sweep SAT, bandwidth 3/2
        ledger.add_feasible(4, 5, 4)  # sweep SAT, bandwidth 5/4
        assert ledger.frontier_cap(2) is None
        assert ledger.frontier_cap(3) == Fraction(3, 2)
        assert ledger.frontier_cap(5) == Fraction(5, 4)
        assert ledger.baseline_cap(2) is None
        assert ledger.baseline_cap(3) == Fraction(3, 2)

    def test_plan_actions_on_synthetic_points(self):
        ledger = self._ledger()
        ledger.add_feasible(2, 2, 2, source="baseline:test")  # beta_b = 1
        ledger.add_feasible(2, 3, 2)  # sweep SAT, beta_f = 3/2 for S >= 3
        ledger.add_infeasible(3, 3, 3)
        # Candidates for S=3, deliberately unsorted to show each one is
        # judged independently.
        candidates = [
            (3, 3),  # cost 1, inside the UNSAT shadow      -> CUT
            (4, 5),  # cost 4/5 < caps, rounds 4 > 3
            #          escape the shadow                    -> PROBE
            (4, 2),  # cost 2 > beta_b                      -> PRUNE
            (3, 2),  # cost 3/2 >= beta_f                   -> PRUNE
            (4, 4),  # cost 1 == beta_b (strict: kept),
            #          not shadowed (rounds 4 > 3)          -> PROBE
        ]
        plan = ledger.plan(3, candidates)
        assert plan.actions == (CUT, PROBE, PRUNE, PRUNE, PROBE)
        assert plan.witnesses == {0: (3, 3, 3)}
        assert (plan.probes, plan.cuts, plan.pruned) == (2, 1, 2)

    def test_baseline_prune_is_strict(self):
        # A candidate *matching* the best baseline bandwidth must still be
        # probed: it may be the bandwidth-optimal frontier terminal.
        ledger = self._ledger()
        ledger.add_feasible(7, 7, 6, source="baseline:nccl")  # 7/6
        plan = ledger.plan(7, [(7, 6), (7, 5)])
        assert plan.actions == (PROBE, PRUNE)

    def test_observe_folds_verdicts(self):
        ledger = self._ledger()
        ledger.observe(_sat_result("Allgather", ring(4), 2, 3, 2))
        ledger.observe(_unsat_result("Allgather", ring(4), 2, 2, 2))
        unknown = SynthesisResult(
            instance=make_instance("Allgather", ring(4), 6, 2, 2),
            status=SolveResult.UNKNOWN,
        )
        ledger.observe(unknown)  # carries no knowledge
        assert ledger.known_feasible(2, 3, 2) == "sweep"
        assert ledger.known_infeasible(2, 2, 2) == (2, 2, 2)
        assert ledger.known_feasible(2, 2, 6) is None

    def test_observe_skips_synthetic_cuts(self):
        ledger = self._ledger()
        ledger.add_infeasible(2, 2, 2)
        cut = cut_result("Allgather", ring(4), 2, 2, 3, witness=(2, 2, 2))
        ledger.observe(cut)  # re-states known facts; must not re-enter
        assert ledger._infeasible == [(2, 2, 2)]

    def test_cut_result_shape(self):
        result = cut_result("Allgather", ring(4), 2, 2, 3, witness=(2, 2, 2))
        assert result.is_unsat
        assert result.provenance == "cut"
        assert not result.cache_hit
        assert result.backend == "bounds"
        assert result.solver_stats["cut_witness_chunks"] == 2
        assert result.total_time == 0.0

    def test_feasible_point_bandwidth(self):
        assert FeasiblePoint(3, 3, 2, "sweep").bandwidth == Fraction(3, 2)


class TestSeedLedger:
    def test_dgx1_allgather_seed(self):
        ledger = seed_ledger("Allgather", dgx1())
        assert "baseline:nccl" in ledger.sources()
        assert ledger.known_feasible(7, 7, 6) is not None
        assert ledger.baseline_cap(7) == Fraction(7, 6)
        assert "baseline bound" in ledger.describe()

    def test_unseedable_instance_yields_empty_ledger(self):
        ledger = seed_ledger("Gather", line(3))
        assert ledger.sources() == []
        assert ledger.baseline_cap(10) is None

    def test_seeded_stats(self):
        stats = seed_ledger("Allgather", ring(4)).stats()
        assert [3, 3, 2] in stats["baseline_points"]
        assert stats["infeasible"] == 0


# ----------------------------------------------------------------------
# Dispatcher integration with an injected ledger (cut/prune paths)
# ----------------------------------------------------------------------
def _request(ledger, candidates, steps=2):
    return SweepRequest(
        collective="Allgather",
        topology=ring(4),
        steps=steps,
        candidates=tuple(candidates),
        bounds=ledger,
    )


class TestDispatchersConsultLedger:
    def _cut_ledger(self):
        ledger = BoundsLedger("Allgather", ring(4))
        ledger.add_infeasible(2, 2, 2)
        return ledger

    def _prune_ledger(self):
        ledger = BoundsLedger("Allgather", ring(4))
        ledger.add_feasible(1, 1, 1)  # sweep SAT at S=1: beta_f = 1 for S >= 2
        return ledger

    @pytest.mark.parametrize(
        "dispatcher",
        [
            SerialDispatcher(),
            IncrementalDispatcher(),
            ParallelDispatcher(max_workers=2),
            SpeculativeDispatcher(max_workers=2),
        ],
        ids=["serial", "incremental", "parallel", "speculative"],
    )
    def test_cuts_answer_without_solver(self, dispatcher):
        # Both candidates sit inside the injected UNSAT shadow, so the whole
        # sweep resolves with zero solver calls and synthetic UNSAT results.
        request = _request(self._cut_ledger(), [(2, 3), (2, 2)])
        outcome = dispatcher.sweep(request)
        assert outcome.stats.probes_cut == 2
        assert outcome.stats.solver_calls == 0
        assert outcome.stats.candidates_probed == 0
        assert [r.status for r in outcome.results] == [
            SolveResult.UNSAT, SolveResult.UNSAT,
        ]
        assert all(r.provenance == "cut" for r in outcome.results)

    @pytest.mark.parametrize(
        "dispatcher",
        [
            SerialDispatcher(),
            IncrementalDispatcher(),
            ParallelDispatcher(max_workers=2),
            SpeculativeDispatcher(max_workers=2),
        ],
        ids=["serial", "incremental", "parallel", "speculative"],
    )
    def test_prunes_skip_candidates_entirely(self, dispatcher):
        request = _request(self._prune_ledger(), [(2, 2), (2, 1)])
        outcome = dispatcher.sweep(request)
        assert outcome.stats.probes_pruned == 2
        assert outcome.stats.solver_calls == 0
        assert outcome.results == []

    def test_unseeded_request_unchanged(self):
        request = _request(None, [(3, 2)])
        outcome = SerialDispatcher().sweep(request)
        assert outcome.stats.probes_pruned == 0
        assert outcome.stats.probes_cut == 0
        assert outcome.stats.candidates_probed == 1

    def test_serial_observes_verdicts(self):
        ledger = BoundsLedger("Allgather", ring(4))
        request = _request(ledger, [(2, 3), (2, 2), (3, 2)])
        outcome = SerialDispatcher().sweep(request)
        # Every solved verdict must land in the ledger: UNSATs as witnesses,
        # the first SAT as a feasible point.
        sat = outcome.first_sat
        assert sat is not None
        inst = sat.instance
        assert ledger.known_feasible(inst.steps, inst.rounds, inst.chunks_per_node)
        for result in outcome.results:
            if result.is_unsat:
                ri = result.instance
                assert ledger.known_infeasible(
                    ri.steps, ri.rounds, ri.chunks_per_node
                )

    def test_cut_results_persist_provenance(self, tmp_path):
        cache = AlgorithmCache(tmp_path)
        request = _request(self._cut_ledger(), [(2, 2)])
        outcome = SerialDispatcher().sweep(request, cache=cache)
        assert outcome.stats.probes_cut == 1
        instance = make_instance("Allgather", ring(4), 2, 2, 2)
        replayed = lookup_result(cache, instance)
        assert replayed is not None
        assert replayed.is_unsat
        assert replayed.cache_hit
        assert replayed.provenance == "cut"

    def test_solved_results_persist_solved_provenance(self, tmp_path):
        cache = AlgorithmCache(tmp_path)
        result = _unsat_result("Allgather", ring(4), 2, 2, 6)
        assert store_result(cache, result)
        replayed = lookup_result(cache, result.instance)
        assert replayed.provenance == "solved"


# ----------------------------------------------------------------------
# Property tests: bounds on/off leave the Pareto-optimal frontier intact
# ----------------------------------------------------------------------
STRATEGIES = ["serial", "incremental", "parallel", "speculative"]

#: (collective, topology factory, k, max_steps, max_chunks) — Gather has no
#: baselines (empty ledger), Broadcast's enumeration needs a step cap.
PROPERTY_INSTANCES = [
    ("Allgather", ring, 4, 1, None, None),
    ("Gather", line, 3, 0, None, 4),
    ("Broadcast", ring, 4, 0, 3, None),
]


def pareto_subset(frontier):
    """The surviving frontier: everything except probe accounting."""
    return [
        (
            point.signature,
            point.status.value,
            point.latency_optimal,
            point.bandwidth_optimal,
        )
        for point in frontier.points
        if point.pareto_optimal
    ]


def _run(collective, topo_factory, nodes, k, max_steps, max_chunks, **kwargs):
    return pareto_synthesize(
        collective,
        topo_factory(nodes),
        k,
        max_steps=max_steps,
        max_chunks=max_chunks,
        **kwargs,
    )


class TestBoundsPreserveFrontier:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize(
        "collective,factory,nodes,k,max_steps,max_chunks",
        PROPERTY_INSTANCES,
        ids=[f"{c}-{f.__name__}{n}" for c, f, n, _, _, _ in PROPERTY_INSTANCES],
    )
    def test_pareto_subset_identical_on_off(
        self, strategy, collective, factory, nodes, k, max_steps, max_chunks
    ):
        common = dict(strategy=strategy, max_workers=2)
        on = _run(collective, factory, nodes, k, max_steps, max_chunks,
                  bounds="baseline", **common)
        off = _run(collective, factory, nodes, k, max_steps, max_chunks,
                   bounds="off", **common)
        assert pareto_subset(on) == pareto_subset(off)
        assert on.bounds in ("baseline",)
        assert off.bounds == "off"
        # Seeding must never issue MORE probes than the unseeded run.
        assert (
            on.engine_stats["candidates_probed"]
            <= off.engine_stats["candidates_probed"]
        )

    def test_serial_algorithms_byte_identical_on_off(self):
        # For the serial strategy the surviving points' decoded schedules
        # are also byte-identical: the same standalone formulas are solved
        # in the same order.  (The incremental family's formula layout
        # depends on the chunk budget, so only signatures are compared
        # across the on/off pair there.)
        on = _run("Allgather", ring, 4, 1, None, None,
                  strategy="serial", bounds="baseline")
        off = _run("Allgather", ring, 4, 1, None, None,
                   strategy="serial", bounds="off")
        on_algos = [p.algorithm.to_dict() for p in on.points if p.pareto_optimal]
        off_algos = [p.algorithm.to_dict() for p in off.points if p.pareto_optimal]
        assert on_algos == off_algos

    def test_warm_cache_replay_matches_cold(self, tmp_path):
        cache_args = dict(strategy="serial", bounds="baseline")
        cache = AlgorithmCache(tmp_path)
        cold = _run("Allgather", ring, 4, 1, None, None, cache=cache, **cache_args)
        warm = _run("Allgather", ring, 4, 1, None, None, cache=cache, **cache_args)
        assert cold.to_dict(include_timing=False) == warm.to_dict(include_timing=False)
        assert warm.engine_stats["cache_hits"] > 0
        assert warm.engine_stats["solver_calls"] == 0
        # The prune/cut decisions are made before the cache is consulted,
        # so warm accounting matches cold accounting.
        assert (
            warm.engine_stats["probes_pruned"] == cold.engine_stats["probes_pruned"]
        )
        assert warm.engine_stats["probes_cut"] == cold.engine_stats["probes_cut"]

    def test_warm_cache_bounds_off_still_agrees(self, tmp_path):
        # A cache written by a seeded run replayed by an unseeded run (and
        # vice versa) must still produce the same Pareto-optimal subset.
        cache = AlgorithmCache(tmp_path)
        seeded = _run("Allgather", ring, 4, 1, None, None,
                      strategy="serial", bounds="baseline", cache=cache)
        unseeded = _run("Allgather", ring, 4, 1, None, None,
                        strategy="serial", bounds="off", cache=cache)
        assert pareto_subset(seeded) == pareto_subset(unseeded)

    @pytest.mark.parametrize("strategy", ["serial", "incremental"])
    def test_unknown_retry_path_agrees(self, strategy):
        # Tight conflict limits force UNKNOWNs (and the incremental
        # dispatcher's exact-formula retries); the surviving subset must
        # still be bounds-invariant.
        common = dict(strategy=strategy, conflict_limit=10_000)
        on = _run("Allgather", ring, 4, 1, 3, None, bounds="baseline", **common)
        off = _run("Allgather", ring, 4, 1, 3, None, bounds="off", **common)
        assert pareto_subset(on) == pareto_subset(off)

    def test_custom_ledger_must_match_instance(self):
        ledger = BoundsLedger("Allgather", ring(4))
        with pytest.raises(Exception):
            pareto_synthesize("Allgather", ring(6), bounds=ledger)

    def test_unknown_bounds_mode_rejected(self):
        with pytest.raises(Exception):
            pareto_synthesize("Allgather", ring(4), bounds="mystery")

    def test_combining_collective_threads_bounds(self):
        on = pareto_synthesize(
            "Reducescatter", ring(4), 1, strategy="serial", bounds="baseline"
        )
        off = pareto_synthesize(
            "Reducescatter", ring(4), 1, strategy="serial", bounds="off"
        )
        assert pareto_subset(on) == pareto_subset(off)
        assert on.bounds == "baseline"

"""Tests for incremental sessions and the rounds-budget selector layer."""

import pytest

from repro.core import ScclEncoding, make_instance, synthesize
from repro.engine import (
    IncrementalDispatcher,
    IncrementalSession,
    SerialDispatcher,
    SessionError,
    SweepRequest,
)
from repro.topology import dgx1, line, ring


class TestRoundsSelectorLayer:
    def test_budget_encoding_agrees_with_cold_encoding(self):
        # Every R in the budget must give the same SAT/UNSAT answer as a
        # dedicated cold encoding at that R.
        session = IncrementalSession("Allgather", ring(6), 1, 3, 6)
        for rounds in range(3, 7):
            incremental = session.solve(rounds)
            cold = synthesize(make_instance("Allgather", ring(6), 1, 3, rounds))
            assert incremental.status is cold.status, f"R={rounds}"
            if incremental.is_sat:
                incremental.algorithm.verify()
                assert incremental.algorithm.total_rounds == rounds

    def test_budget_encoding_agrees_on_unsat_family(self):
        # Allgather on a 6-ring with C=2 needs 5 rounds; 4 is UNSAT.
        session = IncrementalSession("Allgather", ring(6), 2, 4, 5)
        assert session.solve(4).is_unsat
        assert session.solve(5).is_sat

    def test_out_of_budget_rounds_rejected(self):
        session = IncrementalSession("Allgather", ring(4), 1, 2, 3)
        with pytest.raises(SessionError):
            session.solve(4)
        with pytest.raises(SessionError):
            session.solve(1)

    def test_budget_below_steps_rejected(self):
        with pytest.raises(SessionError):
            IncrementalSession("Allgather", ring(4), 1, 3, 2)

    def test_rounds_assumptions_requires_budget(self):
        encoder = ScclEncoding(make_instance("Allgather", ring(4), 1, 2, 2))
        encoder.encode()
        with pytest.raises(Exception):
            encoder.rounds_assumptions(2)

    def test_single_encode_across_probes(self):
        session = IncrementalSession("Broadcast", line(4), 1, 3, 5)
        for rounds in (3, 4, 5):
            session.solve(rounds)
        assert session.encode_calls == 1
        assert session.solver_calls == 3


class TestAcceptanceFixedStepSweepOnDgx1:
    """Acceptance criterion: a fixed-S Allgather candidate sweep on the
    DGX-1 uses strictly fewer total encoding calls than the serial baseline.
    """

    # The full S=2, k=2 candidate set capped at C<=2, probed exhaustively so
    # both strategies answer every candidate.
    REQUEST = SweepRequest(
        collective="Allgather",
        topology=dgx1(),
        steps=2,
        candidates=((3, 2), (2, 1), (4, 2), (3, 1), (4, 1)),
        stop_at_first_sat=False,
    )

    def test_incremental_sweep_uses_strictly_fewer_encodes(self):
        serial = SerialDispatcher().sweep(self.REQUEST)
        incremental = IncrementalDispatcher().sweep(self.REQUEST)

        # Identical verdicts candidate by candidate...
        assert [r.status for r in incremental.results] == [
            r.status for r in serial.results
        ]
        for result in incremental.results:
            if result.is_sat:
                result.algorithm.verify()
        # ... at strictly lower encoding cost: one shared-prefix encoding
        # serves the whole sweep (previously one per distinct C, before
        # that one per candidate).
        assert serial.stats.encode_calls == len(self.REQUEST.candidates)
        assert incremental.stats.encode_calls == 1
        assert incremental.stats.encode_calls < serial.stats.encode_calls

    def test_early_stop_sweep_never_encodes_more_than_serial(self):
        request = SweepRequest(
            collective="Allgather",
            topology=dgx1(),
            steps=2,
            candidates=self.REQUEST.candidates,
        )
        serial = SerialDispatcher().sweep(request)
        incremental = IncrementalDispatcher().sweep(request)
        assert incremental.stats.encode_calls <= serial.stats.encode_calls
        assert incremental.first_sat is not None
        assert (
            incremental.first_sat.instance.chunks_per_node,
            incremental.first_sat.instance.rounds,
        ) == (
            serial.first_sat.instance.chunks_per_node,
            serial.first_sat.instance.rounds,
        )


class TestSessionResults:
    def test_results_report_backend_and_instance(self):
        session = IncrementalSession("Allgather", ring(4), 1, 2, 3)
        result = session.solve(3)
        assert result.backend == "cdcl"
        assert not result.cache_hit
        assert result.instance.rounds == 3
        assert result.instance.steps == 2

    def test_encode_time_attributed_to_first_probe(self):
        session = IncrementalSession("Allgather", ring(6), 1, 3, 5)
        first = session.solve(3)
        second = session.solve(4)
        assert first.encode_time > 0.0
        assert second.encode_time == 0.0

"""Frontier determinism across every sweep strategy, and the speculative
dispatcher's cross-S pipeline semantics.

The acceptance criterion for the speculative pipeline is that speculation
is *observable only in wall-clock*: the committed frontier — statuses,
signatures, decoded schedules, provenance — is byte-identical to the
serial loop's, on every topology, including when the stop predicate
cancels sweeps mid-flight.  The incremental (shared-prefix) strategy
solves different formulas, so its decoded schedules may legitimately
differ; for it the property weakens to identical signatures, statuses,
optimality labels and provenance.
"""

import json

import pytest

from repro.core import pareto_synthesize
from repro.engine import (
    DispatchError,
    SerialDispatcher,
    SpeculativeDispatcher,
    SweepRequest,
    make_dispatcher,
)
from repro.topology import fully_connected, line, ring, star


def frontier_bytes(frontier) -> bytes:
    return json.dumps(frontier.to_dict(include_timing=False), sort_keys=True).encode()


def provenance(frontier):
    return [(p.backend, p.cache_hit, p.provenance_label()) for p in frontier.points]


def outcome_fingerprint(outcome):
    return [
        (
            r.status.value,
            r.instance.chunks_per_node,
            r.instance.steps,
            r.instance.rounds,
            None if r.algorithm is None else r.algorithm.to_dict(),
        )
        for r in outcome.results
    ]


#: The property-test grid: every topology family the paper sweeps at test
#: scale, with at least one rooted, one all-to-all and one combining case.
CASES = [
    ("Allgather", ring(4), 0, 4),
    ("Allgather", ring(4), 1, 3),
    ("Gather", line(3), 0, 4),
    ("Broadcast", star(5), 0, 3),
    ("Alltoall", fully_connected(3), 0, 3),
    ("Allreduce", ring(4), 0, 3),
]
CASE_IDS = [f"{c}-{t.name}-k{k}" for c, t, k, _ in CASES]


class TestFrontierDeterminismProperty:
    """Satellite: serial / incremental / parallel / speculative agreement."""

    @pytest.mark.parametrize("collective,topology,k,max_steps", CASES, ids=CASE_IDS)
    def test_all_strategies_agree(self, collective, topology, k, max_steps):
        frontiers = {
            strategy: pareto_synthesize(
                collective, topology, k=k, max_steps=max_steps,
                strategy=strategy, max_workers=2,
            )
            for strategy in ("serial", "incremental", "parallel", "speculative")
        }
        serial = frontiers["serial"]
        # Replay-exact strategies: byte-identical frontiers (schedules and
        # all) and identical provenance.
        for strategy in ("parallel", "speculative"):
            assert frontier_bytes(frontiers[strategy]) == frontier_bytes(serial), (
                f"{strategy} frontier diverged from serial"
            )
            assert provenance(frontiers[strategy]) == provenance(serial)
            assert frontiers[strategy].exhausted_steps == serial.exhausted_steps
        # The shared-prefix strategy probes one budget formula under
        # assumptions: satisfiability (hence the frontier's shape) is
        # identical, the concrete schedule may differ.
        incremental = frontiers["incremental"]
        assert [p.signature for p in incremental.points] == [
            p.signature for p in serial.points
        ]
        assert [p.status for p in incremental.points] == [
            p.status for p in serial.points
        ]
        assert [p.optimality_label() for p in incremental.points] == [
            p.optimality_label() for p in serial.points
        ]
        assert provenance(incremental) == provenance(serial)
        assert incremental.exhausted_steps == serial.exhausted_steps
        for point in incremental.points:
            point.algorithm.verify()

    def test_speculative_agrees_on_warm_cache(self, tmp_path):
        from repro.engine import AlgorithmCache

        serial_cache = AlgorithmCache(tmp_path / "serial")
        spec_cache = AlgorithmCache(tmp_path / "spec")
        for cache, strategy in ((serial_cache, "serial"), (spec_cache, "speculative")):
            cold = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=4,
                strategy=strategy, max_workers=2, cache=cache,
            )
            warm = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=4,
                strategy=strategy, max_workers=2, cache=cache,
            )
            assert frontier_bytes(cold) == frontier_bytes(warm)
            assert warm.engine_stats["cache_hits"] > 0
        # ... and across strategies the persisted outcomes agree too.
        serial_warm = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4, strategy="serial",
            cache=serial_cache,
        )
        spec_warm = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4, strategy="speculative",
            max_workers=2, cache=spec_cache,
        )
        assert frontier_bytes(serial_warm) == frontier_bytes(spec_warm)


class TestSweepManyPipeline:
    def _requests(self, topology, step_counts, candidates_for):
        return [
            SweepRequest(
                collective="Allgather",
                topology=topology,
                steps=steps,
                candidates=tuple(candidates_for(steps)),
            )
            for steps in step_counts
        ]

    def test_cancellation_mid_sweep(self):
        """A stop hit on an early sweep cancels the speculative tail, and
        the committed prefix is byte-identical to the serial loop."""
        topology = ring(4)
        requests = self._requests(
            topology, (2, 3, 4, 5),
            lambda steps: [(steps, 1), (steps + 1, 1)],
        )

        def stop(outcome):
            # Accept the first SAT at S >= 3, so the pipeline must commit
            # exactly two sweeps (S=2 is SAT too, but rejected) and cancel
            # the speculative tail.
            first_sat = outcome.first_sat
            return first_sat is not None and first_sat.instance.steps >= 3

        spec = SpeculativeDispatcher(max_workers=2, lookahead=2)
        outcomes = spec.sweep_many(requests, stop=stop)
        assert len(outcomes) == len(requests)
        committed = [o for o in outcomes if o is not None]
        assert outcomes[0] is not None and outcomes[1] is not None
        assert outcomes[2] is None and outcomes[3] is None
        serial = SerialDispatcher()
        for request, outcome in zip(requests, committed):
            assert outcome_fingerprint(outcome) == outcome_fingerprint(
                serial.sweep(request)
            )

    def test_lookahead_zero_still_correct(self):
        topology = ring(4)
        requests = self._requests(
            topology, (2, 3), lambda steps: [(steps, 1), (steps + 1, 1)]
        )
        outcomes = SpeculativeDispatcher(max_workers=2, lookahead=0).sweep_many(requests)
        serial = SerialDispatcher()
        for request, outcome in zip(requests, outcomes):
            assert outcome is not None
            assert outcome_fingerprint(outcome) == outcome_fingerprint(
                serial.sweep(request)
            )

    def test_mixed_requests_rejected(self):
        a = SweepRequest("Allgather", ring(4), steps=2, candidates=((2, 1),))
        b = SweepRequest("Allgather", ring(5), steps=3, candidates=((3, 1),))
        with pytest.raises(DispatchError):
            SpeculativeDispatcher().sweep_many([a, b])

    def test_empty_batch(self):
        assert SpeculativeDispatcher().sweep_many([]) == []

    def test_single_candidate_runs_inline(self):
        request = SweepRequest(
            collective="Allgather", topology=ring(4), steps=2, candidates=((2, 1),),
        )
        outcome = SpeculativeDispatcher(max_workers=4).sweep(request)
        serial = SerialDispatcher().sweep(request)
        assert outcome_fingerprint(outcome) == outcome_fingerprint(serial)


class TestPortfolioRacing:
    def test_singleton_portfolio_is_byte_identical(self):
        serial = pareto_synthesize("Allgather", ring(4), k=0, max_steps=4, strategy="serial")
        raced = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4,
            strategy="speculative", max_workers=2, portfolio=["cdcl"],
        )
        assert frontier_bytes(raced) == frontier_bytes(serial)

    def test_two_backend_race_agrees_on_verdicts(self):
        from engine_backend_helper import PickleableCountingBackend
        from repro.engine import register_backend, unregister_backend

        register_backend(PickleableCountingBackend(), replace=True)
        try:
            serial = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=3, strategy="serial"
            )
            raced = pareto_synthesize(
                "Allgather", ring(4), k=0, max_steps=3,
                strategy="speculative", max_workers=2,
                portfolio=["cdcl", "pickle-counting"],
            )
            # Statuses and signatures are verdict-determined; the winning
            # backend (and so the concrete schedule) is whichever answered
            # first.
            assert [p.signature for p in raced.points] == [
                p.signature for p in serial.points
            ]
            assert [p.status for p in raced.points] == [
                p.status for p in serial.points
            ]
            for point in raced.points:
                assert point.backend in ("cdcl", "pickle-counting")
                point.algorithm.verify()
        finally:
            unregister_backend("pickle-counting")

    def test_portfolio_winner_is_what_warm_replay_serves(self, tmp_path):
        """Under a portfolio only committed winners reach the cache, so a
        warm run replays exactly the schedules the cold run reported."""
        from repro.engine import AlgorithmCache

        cache = AlgorithmCache(tmp_path / "algorithms")
        cold = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4,
            strategy="speculative", max_workers=2, portfolio=["cdcl"], cache=cache,
        )
        warm = pareto_synthesize(
            "Allgather", ring(4), k=0, max_steps=4,
            strategy="speculative", max_workers=2, portfolio=["cdcl"], cache=cache,
        )
        assert frontier_bytes(cold) == frontier_bytes(warm)
        assert all(p.cache_hit for p in warm.points)

    def test_portfolio_requires_speculative_strategy(self):
        for strategy in ("serial", "incremental", "parallel"):
            with pytest.raises(DispatchError):
                make_dispatcher(strategy, portfolio=["cdcl"])

    def test_unknown_portfolio_backend_fails_fast(self):
        request = SweepRequest(
            collective="Allgather", topology=ring(4), steps=2,
            candidates=((2, 1), (3, 1)),
        )
        with pytest.raises(Exception):
            SpeculativeDispatcher(portfolio=["no-such-solver"]).sweep(request)

    def test_duplicate_portfolio_rejected(self):
        with pytest.raises(DispatchError):
            SpeculativeDispatcher(portfolio=["cdcl", "cdcl"])


class TestMakeDispatcherSpeculative:
    def test_strategy_registered(self):
        assert isinstance(make_dispatcher("speculative"), SpeculativeDispatcher)

    def test_invalid_lookahead_rejected(self):
        with pytest.raises(DispatchError):
            SpeculativeDispatcher(lookahead=-1)

    def test_invalid_workers_rejected(self):
        with pytest.raises(DispatchError):
            SpeculativeDispatcher(max_workers=0)

"""Tests for the evaluation harness (tables, figures, reporting)."""

import pytest

from repro.core import pareto_synthesize
from repro.evaluation import (
    PAPER_TABLE4,
    PAPER_TABLE5,
    SynthesisTableConfig,
    figure6_allgather_amd,
    format_series,
    format_table,
    geometric_mean,
    render_table,
    synthesis_table,
    table3_rows,
)
from repro.evaluation.figures import FigureResult, _speedup_series
from repro.baselines import nccl_allgather
from repro.core import make_instance, synthesize
from repro.topology import dgx1, ring


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series({"s1": [1.0, 2.0]}, [10, 20])
        assert "s1" in text and "10" in text

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestTables:
    def test_table3_matches_paper(self):
        rows = table3_rows(multiplier=1)
        triples = {(r["collective"], r["C"], r["S"], r["R"]) for r in rows}
        assert ("Allgather/Reducescatter", 6, 7, 7) in triples
        assert ("Allreduce", 48, 14, 14) in triples
        assert ("Broadcast/Reduce", 6, 7, 7) in triples

    def test_paper_reference_tables_are_consistent(self):
        # Every recorded paper row respects R >= S and R/C >= 1 sanity limits.
        for table in (PAPER_TABLE4, PAPER_TABLE5):
            for rows in table.values():
                for (c, s, r, _label) in rows:
                    assert r >= s
                    assert c >= 1

    def test_synthesis_table_on_small_topology(self):
        # Use the generic harness with a ring topology so the test is fast.
        rows = synthesis_table(
            ring(4),
            runs=[("Allgather", 0), ("Allgather", 1)],
            config=SynthesisTableConfig(time_limit_per_instance=30.0),
        )
        assert rows
        signatures = {(row["C"], row["S"], row["R"]) for row in rows}
        assert (1, 2, 2) in signatures
        assert all(row["status"] in ("sat", "unknown") for row in rows)
        text = render_table(rows, title="ring4")
        assert "Allgather" in text

    def test_synthesis_table_collective_filter(self):
        rows = synthesis_table(
            ring(4),
            runs=[("Allgather", 0), ("Broadcast", 0)],
            config=SynthesisTableConfig(collectives=["Broadcast"], broadcast_max_steps=3),
        )
        assert rows
        assert all(row["collective"] == "Broadcast" for row in rows)


class TestFigures:
    def test_figure6_shape(self):
        # AMD Allgather points (1,4,4) and (2,7,7) are cheap to synthesize.
        result = figure6_allgather_amd(sizes=[1 << 10, 1 << 20, 1 << 28], time_limit=120)
        assert result.series, f"all series skipped: {result.skipped}"
        assert "(1,4,4)" in result.series
        for label, values in result.series.items():
            assert len(values) == 3
            assert all(v > 0 for v in values)
        if "(2,7,7)" in result.series:
            # The RCCL baseline *is* a (2,7,7) ring; the synthesized
            # bandwidth-optimal algorithm should at least match it at the
            # largest size, while the latency-optimal one wins at 1 KiB.
            assert result.series["(2,7,7)"][-1] >= 0.95
        assert result.series["(1,4,4)"][0] > 1.0
        text = result.render()
        assert "Figure 6" in text

    def test_speedup_series_against_self_is_unity(self):
        topo = dgx1()
        baseline = nccl_allgather(topo)
        series = _speedup_series(
            {"self": (baseline, "single_kernel_push")}, baseline, topo, [1 << 16, 1 << 20]
        )
        assert all(v == pytest.approx(1.0) for v in series["self"])

    def test_figure_result_crossover_property(self):
        result = FigureResult(
            name="toy", sizes=[1, 2], baseline="b",
            series={"latency": [2.0, 0.5], "bandwidth": [1.0, 1.5]},
        )
        assert result.crossover_consistent()


class TestExportHook:
    def test_synthesis_table_export_dir_writes_interchange_files(self, tmp_path):
        from repro.interchange import read_msccl_xml, read_plan

        export_dir = tmp_path / "algorithms"
        rows = synthesis_table(
            ring(4),
            runs=[("Allgather", 1)],
            config=SynthesisTableConfig(
                time_limit_per_instance=30.0,
                export_dir=str(export_dir),
                export_format="both",
            ),
        )
        assert rows
        xml_files = sorted(export_dir.glob("*.xml"))
        plan_files = sorted(export_dir.glob("*.json"))
        assert xml_files and plan_files
        # Every exported file re-imports and re-verifies.
        for path in xml_files:
            read_msccl_xml(path).verify()
        for path in plan_files:
            read_plan(path).algorithm.verify()

    def test_export_frontier_rejects_unknown_format(self, tmp_path):
        import pytest as _pytest

        from repro.core import pareto_synthesize
        from repro.evaluation import export_frontier_algorithms

        frontier = pareto_synthesize("Allgather", ring(4), 0, max_steps=2)
        with _pytest.raises(ValueError, match="format"):
            export_frontier_algorithms(frontier, tmp_path, formats=("yaml",))

"""Tests for fault injection: deployed plans must fail on dead links."""

import pytest

from repro.baselines import ring_allgather, single_ring
from repro.core import make_instance, synthesize
from repro.faults import (
    FaultInjectionError,
    FaultSet,
    LinkDegraded,
    LinkDown,
    execute_with_faults,
    scan_program,
    simulate_with_faults,
)
from repro.runtime import Simulator, execute, lower
from repro.topology import ring


@pytest.fixture(scope="module")
def ring4():
    return ring(4)


@pytest.fixture(scope="module")
def allgather_plan(ring4):
    result = synthesize(make_instance("Allgather", ring4, 1, 3, 3))
    assert result.is_sat
    algorithm = result.algorithm
    return algorithm, lower(algorithm)


def used_links(algorithm):
    return {(s.src, s.dst) for step in algorithm.steps for s in step.sends}


class TestScan:
    def test_clean_program_has_no_violations(self, ring4, allgather_plan):
        _, program = allgather_plan
        assert scan_program(program, FaultSet.of(), ring4) == []

    def test_dead_link_is_reported_with_step_detail(self, ring4, allgather_plan):
        algorithm, program = allgather_plan
        link = sorted(used_links(algorithm))[0]
        violations = scan_program(program, FaultSet.of(LinkDown(*link)), ring4)
        assert violations
        first = violations[0]
        assert (first.src, first.dst) == link
        assert 0 <= first.step < algorithm.num_steps

    def test_explicit_link_set_needs_no_topology(self, allgather_plan):
        algorithm, program = allgather_plan
        link = sorted(used_links(algorithm))[0]
        assert scan_program(program, {link})

    def test_fault_set_without_topology_rejected(self, allgather_plan):
        from repro.faults import FaultError

        _, program = allgather_plan
        with pytest.raises(FaultError):
            scan_program(program, FaultSet.of(LinkDown(0, 1)))


class TestExecuteWithFaults:
    def test_every_used_link_down_is_detected(self, ring4, allgather_plan):
        """The acceptance property: a LinkDown on ANY link the plan sends
        over must be detected — no dead send slips through."""
        algorithm, program = allgather_plan
        links = used_links(algorithm)
        assert links  # the plan moves data
        for link in sorted(links):
            with pytest.raises(FaultInjectionError) as excinfo:
                execute_with_faults(
                    program, algorithm, FaultSet.of(LinkDown(*link)), ring4
                )
            assert (excinfo.value.first.src, excinfo.value.first.dst) == link

    def test_unrelated_fault_executes_cleanly(self, ring4, allgather_plan):
        algorithm, program = allgather_plan
        unused = sorted(ring4.links() - used_links(algorithm))
        if not unused:
            pytest.skip("plan uses every link of the topology")
        result = execute_with_faults(
            program, algorithm, FaultSet.of(LinkDown(*unused[0])), ring4
        )
        assert result.transfers == execute(program, algorithm).transfers

    def test_error_message_names_earliest_step(self, ring4):
        algorithm = ring_allgather(ring4, single_ring(ring4))
        program = lower(algorithm)
        link = sorted(used_links(algorithm))[0]
        with pytest.raises(FaultInjectionError) as excinfo:
            execute_with_faults(program, algorithm, {link})
        err = excinfo.value
        assert err.violations == sorted(
            err.violations, key=lambda v: (v.step, v.src, v.dst, v.chunk)
        )
        assert f"{err.first.src} sends" in str(err)


class TestSimulateWithFaults:
    def test_dead_link_raises(self, ring4, allgather_plan):
        algorithm, program = allgather_plan
        link = sorted(used_links(algorithm))[0]
        with pytest.raises(FaultInjectionError):
            simulate_with_faults(program, ring4, FaultSet.of(LinkDown(*link)), 1 << 20)

    def test_degradation_inflates_estimate(self, ring4, allgather_plan):
        algorithm, program = allgather_plan
        link = sorted(used_links(algorithm))[0]
        healthy = Simulator(ring4).simulate(program, 1 << 20).total_time_s
        degraded = simulate_with_faults(
            program,
            ring4,
            FaultSet.of(LinkDegraded(*link, beta_factor=16.0)),
            1 << 20,
        )
        assert degraded.total_time_s > healthy

"""Tests for fault models, fault sets and degraded-topology derivation."""

import pytest

from repro.faults import (
    FaultError,
    FaultSet,
    LinkDegraded,
    LinkDown,
    RankDown,
    fault_from_json,
)
from repro.runtime import Simulator, lower
from repro.topology import Topology, dgx1, fully_connected, ring


class TestFaultModels:
    def test_link_down_round_trip(self):
        fault = LinkDown(0, 1)
        assert fault_from_json(fault.to_json()) == fault

    def test_rank_down_round_trip(self):
        fault = RankDown(3)
        assert fault_from_json(fault.to_json()) == fault

    def test_link_degraded_round_trip(self):
        fault = LinkDegraded(0, 1, alpha_factor=2.0, beta_factor=4.0, bandwidth=1)
        assert fault_from_json(fault.to_json()) == fault

    def test_self_loop_rejected(self):
        with pytest.raises(FaultError):
            LinkDown(2, 2)
        with pytest.raises(FaultError):
            LinkDegraded(1, 1)

    def test_negative_rank_rejected(self):
        with pytest.raises(FaultError):
            RankDown(-1)

    def test_non_positive_factors_rejected(self):
        with pytest.raises(FaultError):
            LinkDegraded(0, 1, alpha_factor=0.0)
        with pytest.raises(FaultError):
            LinkDegraded(0, 1, beta_factor=-1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            fault_from_json({"kind": "gremlin"})
        with pytest.raises(FaultError):
            fault_from_json({"src": 0, "dst": 1})


class TestFaultSet:
    def test_json_round_trip(self):
        fs = FaultSet.of(LinkDown(0, 1), RankDown(2), LinkDegraded(1, 2, beta_factor=2.0))
        assert FaultSet.from_json(fs.to_json()) == fs

    def test_duplicates_rejected(self):
        with pytest.raises(FaultError):
            FaultSet.of(LinkDown(0, 1), LinkDown(0, 1))

    def test_merge_deduplicates(self):
        merged = FaultSet.of(LinkDown(0, 1)).merge(
            FaultSet.of(LinkDown(0, 1), RankDown(2))
        )
        assert len(merged) == 2

    def test_fingerprint_is_order_insensitive(self):
        a = FaultSet.of(LinkDown(0, 1), RankDown(2))
        b = FaultSet.of(RankDown(2), LinkDown(0, 1))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_sets(self):
        assert (
            FaultSet.of(LinkDown(0, 1)).fingerprint()
            != FaultSet.of(LinkDown(1, 0)).fingerprint()
        )

    def test_validate_rejects_unknown_link(self):
        with pytest.raises(FaultError):
            FaultSet.of(LinkDown(0, 2)).validate(ring(4))  # ring has no chord

    def test_validate_rejects_out_of_range_rank(self):
        with pytest.raises(FaultError):
            FaultSet.of(RankDown(4)).validate(ring(4))

    def test_dead_links(self):
        topology = fully_connected(3)
        dead = FaultSet.of(RankDown(0), LinkDown(1, 2)).dead_links(topology)
        assert dead == {(0, 1), (0, 2), (1, 0), (2, 0), (1, 2)}


class TestApply:
    def test_empty_set_is_identity(self):
        topology = ring(4)
        assert FaultSet.of().apply(topology) is topology

    def test_link_down_removes_link(self):
        topology = ring(4)
        degraded = FaultSet.of(LinkDown(0, 1)).apply(topology)
        assert (0, 1) not in degraded.links()
        assert degraded.links() == topology.links() - {(0, 1)}
        assert degraded.num_nodes == topology.num_nodes

    def test_rank_down_removes_all_touching_links(self):
        topology = fully_connected(4)
        degraded = FaultSet.of(RankDown(2)).apply(topology)
        for src, dst in degraded.links():
            assert src != 2 and dst != 2

    def test_degraded_name_and_provenance(self):
        topology = ring(4)
        fs = FaultSet.of(LinkDown(0, 1))
        degraded = fs.apply(topology)
        assert degraded.name.startswith("ring4!deg-")
        assert degraded.provenance["base_topology"] == "ring4"
        assert degraded.provenance["fault_fingerprint"] == fs.fingerprint()
        assert degraded.provenance["faults"] == fs.to_json()

    def test_degraded_topology_serializes(self):
        degraded = FaultSet.of(
            LinkDown(0, 1), LinkDegraded(1, 2, alpha_factor=3.0, beta_factor=2.0)
        ).apply(ring(4))
        restored = Topology.from_dict(degraded.to_dict())
        assert restored.links() == degraded.links()
        assert restored.link_latency == degraded.link_latency
        assert restored.link_beta_scale == degraded.link_beta_scale
        assert restored.provenance == degraded.provenance

    def test_bandwidth_cap_adds_constraint(self):
        degraded = FaultSet.of(LinkDegraded(0, 1, bandwidth=1)).apply(dgx1())
        caps = [c for c in degraded.constraints if c.name == "degraded:0->1"]
        assert len(caps) == 1
        assert caps[0].bandwidth == 1
        assert caps[0].links == frozenset({(0, 1)})

    def test_zero_bandwidth_kills_link(self):
        degraded = FaultSet.of(LinkDegraded(0, 1, bandwidth=0)).apply(ring(4))
        assert (0, 1) not in degraded.links()

    def test_cost_inflation_lands_in_link_maps(self):
        degraded = FaultSet.of(
            LinkDegraded(0, 1, alpha_factor=2.0, beta_factor=4.0)
        ).apply(ring(4))
        assert (0, 1) in degraded.link_latency
        assert degraded.link_beta_scale[(0, 1)] == pytest.approx(4.0)

    def test_beta_inflation_slows_simulation(self):
        from repro.baselines import ring_allgather, single_ring

        topology = ring(4)
        algorithm = ring_allgather(topology, single_ring(topology))
        program = lower(algorithm)
        healthy = Simulator(topology).simulate(program, 1 << 20).total_time_s
        degraded_topology = FaultSet.of(
            LinkDegraded(0, 1, beta_factor=8.0)
        ).apply(topology)
        degraded = Simulator(degraded_topology).simulate(program, 1 << 20).total_time_s
        assert degraded > healthy

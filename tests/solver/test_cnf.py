"""Unit tests for the CNF container and DIMACS serialization."""

import pytest

from repro.solver import CNF, CNFError
from repro.solver.cnf import lit_neg, lit_sign, lit_var


def test_new_var_sequence():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.new_vars(3) == [3, 4, 5]
    assert cnf.num_vars == 5


def test_add_clause_tracks_variables():
    cnf = CNF()
    cnf.add_clause([1, -7, 3])
    assert cnf.num_vars == 7
    assert cnf.num_clauses == 1


def test_zero_literal_rejected():
    cnf = CNF()
    with pytest.raises(CNFError):
        cnf.add_clause([1, 0, 2])


def test_tautology_dropped_and_duplicates_removed():
    cnf = CNF()
    cnf.add_clause([1, -1, 2])
    assert cnf.num_clauses == 0
    cnf.add_clause([3, 3, 4])
    assert cnf.clauses[0] == [3, 4]


def test_negative_var_allocation_rejected():
    cnf = CNF()
    with pytest.raises(CNFError):
        cnf.new_vars(-1)


def test_literal_helpers():
    assert lit_var(-5) == 5
    assert lit_var(5) == 5
    assert lit_sign(5) is True
    assert lit_sign(-5) is False
    assert lit_neg(5) == -5


def test_dimacs_roundtrip():
    cnf = CNF()
    cnf.add_clause([1, 2, -3])
    cnf.add_clause([-1, 3])
    cnf.add_clause([2])
    text = cnf.to_dimacs()
    assert text.startswith("p cnf 3 3")
    parsed = CNF.from_dimacs(text)
    assert parsed.num_vars == 3
    assert parsed.clauses == cnf.clauses


def test_dimacs_parse_with_comments_and_blank_lines():
    text = """c an example
c with comments

p cnf 4 2
1 -2 0
3 4 -1 0
"""
    cnf = CNF.from_dimacs(text)
    assert cnf.num_vars == 4
    assert cnf.num_clauses == 2


def test_dimacs_unterminated_clause_raises():
    with pytest.raises(CNFError):
        CNF.from_dimacs("p cnf 2 1\n1 2\n")


def test_stats():
    cnf = CNF()
    cnf.add_clause([1, 2])
    cnf.add_clause([-1, 2, 3])
    stats = cnf.stats()
    assert stats == {"variables": 3, "clauses": 2, "literals": 5}


def test_extend_and_iteration():
    cnf = CNF()
    cnf.extend([[1, 2], [-2, 3]])
    assert len(cnf) == 2
    assert list(cnf) == [[1, 2], [-2, 3]]


def test_add_clause_fast_skips_normalization_scans():
    """The pre-normalized fast path appends verbatim: no tautology drop, no
    dedup, no variable bookkeeping — the caller owns those guarantees."""
    cnf = CNF()
    vars_ = cnf.new_vars(3)
    cnf.add_clause_fast([vars_[0], -vars_[1]])
    assert cnf.clauses[-1] == [vars_[0], -vars_[1]]
    # Unlike add_clause, a tautological clause is kept (redundant, not wrong).
    cnf.add_clause([vars_[2], -vars_[2]])
    assert cnf.num_clauses == 1
    cnf.add_clause_fast([vars_[2], -vars_[2]])
    assert cnf.num_clauses == 2
    # num_vars is untouched: the caller must have allocated the variables.
    assert cnf.num_vars == 3


def test_fast_path_formulas_solve_identically():
    from repro.solver import SATSolver, SolveResult

    slow, fast = CNF(), CNF()
    for target in (slow, fast):
        target.new_vars(3)
    for clause in ([1, 2], [-1, 3], [-2, -3], [1, -3]):
        slow.add_clause(clause)
        fast.add_clause_fast(list(clause))
    for formula in (slow, fast):
        solver = SATSolver()
        assert solver.add_cnf(formula)
        assert solver.solve() is SolveResult.SAT

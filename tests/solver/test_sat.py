"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.solver import CNF, SATSolver, SolveResult, solve_cnf, luby
from repro.solver.cnf import clause_is_satisfied


def brute_force_sat(cnf: CNF) -> bool:
    """Exhaustive reference check (only for tiny formulas)."""
    n = cnf.num_vars
    for bits in itertools.product([False, True], repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        if all(clause_is_satisfied(c, assignment) for c in cnf.clauses):
            return True
    return False


def test_empty_formula_is_sat():
    solver = SATSolver()
    assert solver.solve() is SolveResult.SAT


def test_single_unit_clause():
    solver = SATSolver()
    v = solver.new_var()
    assert solver.add_clause([v])
    assert solver.solve() is SolveResult.SAT
    assert solver.model_value(v) is True


def test_contradictory_units_unsat():
    solver = SATSolver()
    v = solver.new_var()
    solver.add_clause([v])
    assert not solver.add_clause([-v]) or solver.solve() is SolveResult.UNSAT


def test_simple_implication_chain():
    solver = SATSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a])
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    assert solver.solve() is SolveResult.SAT
    assert solver.model_value(a) and solver.model_value(b) and solver.model_value(c)


def test_unsat_triangle():
    # (a | b) & (!a | b) & (a | !b) & (!a | !b) is UNSAT
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    solver.add_clause([-a, b])
    solver.add_clause([a, -b])
    solver.add_clause([-a, -b])
    assert solver.solve() is SolveResult.UNSAT


def pigeonhole_cnf(holes: int) -> CNF:
    """Pigeonhole principle PHP(holes + 1, holes): always UNSAT."""
    cnf = CNF()
    pigeons = holes + 1
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


@pytest.mark.parametrize("holes", [2, 3, 4, 5])
def test_pigeonhole_unsat(holes):
    result, model = solve_cnf(pigeonhole_cnf(holes))
    assert result is SolveResult.UNSAT
    assert model is None


def test_graph_coloring_sat():
    """3-coloring of a 5-cycle is satisfiable."""
    cnf = CNF()
    n, colors = 5, 3
    var = {(v, c): cnf.new_var() for v in range(n) for c in range(colors)}
    for v in range(n):
        cnf.add_clause([var[v, c] for c in range(colors)])
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                cnf.add_clause([-var[v, c1], -var[v, c2]])
    for v in range(n):
        u = (v + 1) % n
        for c in range(colors):
            cnf.add_clause([-var[v, c], -var[u, c]])
    result, model = solve_cnf(cnf)
    assert result is SolveResult.SAT
    # Verify the coloring.
    coloring = {}
    for v in range(n):
        chosen = [c for c in range(colors) if model[var[v, c]]]
        assert len(chosen) == 1
        coloring[v] = chosen[0]
    for v in range(n):
        assert coloring[v] != coloring[(v + 1) % n]


def test_graph_coloring_unsat():
    """2-coloring of a triangle is unsatisfiable."""
    cnf = CNF()
    var = {(v, c): cnf.new_var() for v in range(3) for c in range(2)}
    for v in range(3):
        cnf.add_clause([var[v, 0], var[v, 1]])
        cnf.add_clause([-var[v, 0], -var[v, 1]])
    for v in range(3):
        for u in range(v + 1, 3):
            for c in range(2):
                cnf.add_clause([-var[v, c], -var[u, c]])
    result, _ = solve_cnf(cnf)
    assert result is SolveResult.UNSAT


@pytest.mark.parametrize("seed", range(8))
def test_random_3sat_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    n_vars = 8
    n_clauses = rng.randint(20, 40)
    cnf = CNF()
    cnf.new_vars(n_vars)
    for _ in range(n_clauses):
        clause_vars = rng.sample(range(1, n_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in clause_vars])
    expected = brute_force_sat(cnf)
    result, model = solve_cnf(cnf)
    assert (result is SolveResult.SAT) == expected
    if model is not None:
        assignment = {v: model[v] for v in range(1, cnf.num_vars + 1)}
        assert all(clause_is_satisfied(c, assignment) for c in cnf.clauses)


def test_model_satisfies_all_clauses_on_structured_instance():
    cnf = pigeonhole_cnf(4)
    # Make it satisfiable by removing a pigeon's at-least-one clause.
    cnf.clauses.pop(0)
    result, model = solve_cnf(cnf)
    assert result is SolveResult.SAT
    assignment = {v: model[v] for v in range(1, cnf.num_vars + 1)}
    assert all(clause_is_satisfied(c, assignment) for c in cnf.clauses)


def test_assumptions_interface():
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve(assumptions=[-a]) is SolveResult.SAT
    assert solver.model_value(b) is True
    assert solver.solve(assumptions=[-a, -b]) is SolveResult.UNSAT
    # Solver remains usable after an assumption failure.
    assert solver.solve() is SolveResult.SAT


def test_conflict_limit_returns_unknown():
    cnf = pigeonhole_cnf(7)
    result, _ = solve_cnf(cnf, conflict_limit=5)
    assert result in (SolveResult.UNKNOWN, SolveResult.UNSAT)


def test_luby_sequence_prefix():
    assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def test_stats_populated():
    cnf = pigeonhole_cnf(5)
    solver = SATSolver()
    solver.add_cnf(cnf)
    assert solver.solve() is SolveResult.UNSAT
    assert solver.stats.conflicts > 0
    assert solver.stats.decisions > 0
    assert solver.stats.propagations > 0


def test_duplicate_and_tautological_clauses():
    solver = SATSolver()
    a, b = solver.new_var(), solver.new_var()
    assert solver.add_clause([a, a, b])
    assert solver.add_clause([a, -a])  # tautology dropped
    assert solver.solve() is SolveResult.SAT

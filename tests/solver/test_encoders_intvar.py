"""Tests for cardinality / pseudo-Boolean encoders and order-encoded integers."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import CNF, IntVar, SmtLite, SolveResult, solve_cnf, unary_sum_equals
from repro.solver import encoders


def count_models(cnf: CNF, interesting_vars):
    """Enumerate models over `interesting_vars` by brute force (small only)."""
    models = []
    for bits in itertools.product([False, True], repeat=len(interesting_vars)):
        assumption = [
            v if bit else -v for v, bit in zip(interesting_vars, bits)
        ]
        result, _ = solve_cnf(cnf, assumptions=assumption)
        if result is SolveResult.SAT:
            models.append(bits)
    return models


@pytest.mark.parametrize("method", ["pairwise", "commander", "auto"])
@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_at_most_one(method, n):
    cnf = CNF()
    xs = cnf.new_vars(n)
    encoders.at_most_one(cnf, xs, method=method)
    models = count_models(cnf, xs)
    assert all(sum(bits) <= 1 for bits in models)
    assert len(models) == n + 1  # none true or exactly one true


@pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 1), (5, 0)])
def test_at_most_k_sequential(n, k):
    cnf = CNF()
    xs = cnf.new_vars(n)
    encoders.at_most_k(cnf, xs, k, method="sequential")
    models = count_models(cnf, xs)
    expected = sum(
        1 for bits in itertools.product([0, 1], repeat=n) if sum(bits) <= k
    )
    assert all(sum(bits) <= k for bits in models)
    assert len(models) == expected


@pytest.mark.parametrize("n,k", [(4, 2), (5, 3)])
def test_at_most_k_totalizer(n, k):
    cnf = CNF()
    xs = cnf.new_vars(n)
    encoders.at_most_k(cnf, xs, k, method="totalizer")
    models = count_models(cnf, xs)
    assert all(sum(bits) <= k for bits in models)


@pytest.mark.parametrize("n,k", [(4, 2), (5, 4), (3, 3)])
def test_at_least_and_exactly_k(n, k):
    cnf = CNF()
    xs = cnf.new_vars(n)
    encoders.exactly_k(cnf, xs, k)
    models = count_models(cnf, xs)
    assert models
    assert all(sum(bits) == k for bits in models)


def test_at_least_k_more_than_n_unsat():
    cnf = CNF()
    xs = cnf.new_vars(3)
    encoders.at_least_k(cnf, xs, 5)
    result, _ = solve_cnf(cnf)
    assert result is SolveResult.UNSAT


def test_exactly_one_requires_one():
    cnf = CNF()
    xs = cnf.new_vars(4)
    encoders.exactly_one(cnf, xs)
    models = count_models(cnf, xs)
    assert len(models) == 4


def test_totalizer_outputs_count_correctly():
    cnf = CNF()
    xs = cnf.new_vars(5)
    outputs = encoders.totalizer(cnf, xs, bound=5)
    # Force exactly 3 inputs true and check output thresholds: out[i] may be
    # implied for i < 3 and must be refutable... the encoding is one-sided,
    # so we check the guaranteed direction: 3 true inputs forces out[2].
    for lit in xs[:3]:
        cnf.add_clause([lit])
    for lit in xs[3:]:
        cnf.add_clause([-lit])
    cnf.add_clause([-outputs[2]])
    result, _ = solve_cnf(cnf)
    assert result is SolveResult.UNSAT


@pytest.mark.parametrize(
    "weights,bound",
    [([1, 1, 1], 2), ([2, 3, 4], 5), ([5, 1, 1, 1], 3), ([2, 2, 2], 6)],
)
def test_pseudo_boolean_leq(weights, bound):
    cnf = CNF()
    xs = cnf.new_vars(len(weights))
    encoders.pseudo_boolean_leq(cnf, xs, weights, bound)
    models = count_models(cnf, xs)
    expected = [
        bits
        for bits in itertools.product([False, True], repeat=len(weights))
        if sum(w for w, b in zip(weights, bits) if b) <= bound
    ]
    assert sorted(models) == sorted(expected)


@pytest.mark.parametrize("weights,target", [([1, 2, 3], 3), ([2, 2, 2], 4)])
def test_pseudo_boolean_eq(weights, target):
    cnf = CNF()
    xs = cnf.new_vars(len(weights))
    encoders.pseudo_boolean_eq(cnf, xs, weights, target)
    models = count_models(cnf, xs)
    expected = [
        bits
        for bits in itertools.product([False, True], repeat=len(weights))
        if sum(w for w, b in zip(weights, bits) if b) == target
    ]
    assert sorted(models) == sorted(expected)


def test_pb_mismatched_lengths_rejected():
    cnf = CNF()
    xs = cnf.new_vars(2)
    with pytest.raises(encoders.EncodingError):
        encoders.pseudo_boolean_leq(cnf, xs, [1], 1)


class TestIntVar:
    def test_value_decoding_all_domain(self):
        ctx = SmtLite()
        iv = ctx.new_int(0, 5)
        for value in range(6):
            sub = SmtLite()
            sub_iv = sub.new_int(0, 5)
            sub_iv.fix(value)
            outcome = sub.check()
            assert outcome.is_sat
            assert SmtLite.int_value(outcome.model, sub_iv) == value

    def test_comparison_literals(self):
        ctx = SmtLite()
        iv = ctx.new_int(2, 6)
        assert iv.ge_lit(2) == ctx.true_lit
        assert iv.ge_lit(7) == ctx.false_lit
        assert iv.le_lit(6) == ctx.true_lit
        assert iv.le_lit(1) == ctx.false_lit

    def test_require_bounds(self):
        ctx = SmtLite()
        iv = ctx.new_int(0, 4)
        iv.require_ge(3)
        iv.require_le(3)
        outcome = ctx.check()
        assert outcome.is_sat
        assert SmtLite.int_value(outcome.model, iv) == 3

    def test_out_of_domain_fix_is_unsat(self):
        ctx = SmtLite()
        iv = ctx.new_int(0, 2)
        iv.fix(5)
        assert ctx.check().is_unsat

    def test_empty_domain_rejected(self):
        ctx = SmtLite()
        with pytest.raises(ValueError):
            ctx.new_int(3, 1)

    @given(total=st.integers(0, 8))
    @settings(max_examples=12, deadline=None)
    def test_unary_sum_equals(self, total):
        ctx = SmtLite()
        ivs = [ctx.new_int(0, 3) for _ in range(3)]
        unary_sum_equals(ctx.cnf, ivs, total)
        outcome = ctx.check()
        if total > 9:
            assert outcome.is_unsat
        else:
            assert outcome.is_sat
            values = [SmtLite.int_value(outcome.model, iv) for iv in ivs]
            assert sum(values) == total


class TestSmtLiteFacade:
    def test_implication_and_iff(self):
        ctx = SmtLite()
        a, b = ctx.new_bool("a"), ctx.new_bool("b")
        ctx.add_implies([a], b)
        ctx.add_unit(a)
        outcome = ctx.check()
        assert outcome.is_sat
        assert SmtLite.bool_value(outcome.model, b)

    def test_iff(self):
        ctx = SmtLite()
        a, b = ctx.new_bool(), ctx.new_bool()
        ctx.add_iff(a, b)
        ctx.add_unit(-a)
        outcome = ctx.check()
        assert outcome.is_sat
        assert not SmtLite.bool_value(outcome.model, b)

    def test_stats_and_timing(self):
        ctx = SmtLite()
        xs = [ctx.new_bool() for _ in range(5)]
        ctx.exactly_k(xs, 2)
        outcome = ctx.check()
        assert outcome.is_sat
        assert outcome.total_time >= 0
        assert ctx.stats()["variables"] >= 5

    def test_unsat_outcome(self):
        ctx = SmtLite()
        a = ctx.new_bool()
        ctx.add_unit(a)
        ctx.add_unit(-a)
        outcome = ctx.check()
        assert outcome.is_unsat
        assert outcome.model is None

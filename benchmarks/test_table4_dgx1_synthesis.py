"""Table 4: synthesized DGX-1 collectives (C, S, R, optimality, synthesis time).

Each benchmark runs the actual SMT-based synthesis for one row of Table 4
and asserts the row's (C, S, R) is reproduced.  The pure-Python CDCL solver
is orders of magnitude slower than Z3, so only the rows that complete within
the default budget run unconditionally; the remaining rows (marked ``full``)
require ``SCCL_FULL=1``.  Timings land in the pytest-benchmark report, which
is this reproduction's analogue of the paper's "Time" column.
"""

import pytest

from conftest import full_scale, report, synthesis_budget
from repro.core import allreduce_from_allgather, make_instance, pareto_synthesize, synthesize
from repro.evaluation import PAPER_TABLE4, format_table
from repro.topology import dgx1

TOPOLOGY = dgx1()

# (collective, C, S, R, expected_optimality, needs_full_scale)
TABLE4_ROWS = [
    ("Allgather", 1, 2, 2, "Latency", False),
    ("Allgather", 2, 3, 3, "", False),
    ("Allgather", 3, 4, 4, "", False),
    ("Allgather", 4, 5, 5, "", False),
    ("Allgather", 5, 6, 6, "", False),
    ("Allgather", 2, 2, 3, "Latency", False),
    ("Allgather", 6, 7, 7, "Bandwidth", True),
    ("Allgather", 6, 3, 7, "Bandwidth", True),
    ("Broadcast", 2, 2, 2, "Latency", False),
    ("Broadcast", 6, 3, 3, "", True),
    ("Gather", 1, 2, 2, "Latency", False),
    ("Gather", 2, 3, 3, "", False),
    ("Alltoall", 8, 2, 3, "Latency", True),
]


def _row_id(row):
    collective, c, s, r, _opt, full = row
    suffix = "_full" if full else ""
    return f"{collective}_c{c}_s{s}_r{r}{suffix}"


@pytest.mark.parametrize("row", TABLE4_ROWS, ids=_row_id)
def test_table4_row(benchmark, row):
    collective, chunks, steps, rounds, optimality, needs_full = row
    if needs_full and not full_scale():
        pytest.skip("large instance; set SCCL_FULL=1 to run at paper scale")
    instance = make_instance(collective, TOPOLOGY, chunks, steps, rounds)

    def run():
        return synthesize(instance, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.is_unsat, f"paper row {row} must be satisfiable"
    if result.is_unknown:
        pytest.skip(f"time budget exhausted after {result.total_time:.0f}s (status unknown)")
    algorithm = result.algorithm
    algorithm.verify()
    assert algorithm.signature() == (chunks, steps, rounds)
    report(
        f"Table 4 row: {collective} ({chunks},{steps},{rounds}) {optimality}",
        f"synthesis time {result.total_time:.2f}s, "
        f"{result.encoding_stats['variables']} vars, {result.encoding_stats['clauses']} clauses, "
        f"{int(result.solver_stats.get('conflicts', 0))} conflicts",
    )


def test_table4_allreduce_rows_derive_from_allgather(benchmark):
    """Allreduce rows of Table 4 are the Allgather rows doubled (Section 3.5)."""

    def run():
        rows = []
        for (ag_c, ag_s, ag_r) in [(1, 2, 2), (2, 3, 3)]:
            result = synthesize(
                make_instance("Allgather", TOPOLOGY, ag_c, ag_s, ag_r),
                time_limit=synthesis_budget(),
            )
            assert result.is_sat
            allreduce = allreduce_from_allgather(result.algorithm)
            allreduce.verify()
            rows.append(allreduce.signature())
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (8, 4, 4) in rows      # paper row: Allreduce 8 4 4 (Latency)
    assert (16, 6, 6) in rows     # paper row: Allreduce 16 6 6


def test_table4_pareto_enumeration_allgather_k0(benchmark):
    """Run Algorithm 1 itself (k=0) and check the reported rows are the paper's prefix."""
    max_steps = 7 if full_scale() else 4

    def run():
        return pareto_synthesize(
            "Allgather",
            TOPOLOGY,
            k=0,
            max_steps=max_steps,
            time_limit_per_instance=synthesis_budget(),
        )

    frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Table 4 (Allgather, k=0 enumeration)",
        format_table(frontier.table_rows()),
    )
    got = [(p.chunks_per_node, p.steps, p.rounds) for p in frontier.points]
    expected_prefix = [(c, s, r) for (c, s, r, _lab) in PAPER_TABLE4["Allgather"][: len(got)]]
    assert got == expected_prefix
    assert frontier.points[0].latency_optimal

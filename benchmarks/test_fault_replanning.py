"""Fault-replanning latency benchmark -> BENCH_faults.json.

Measures what degraded-mode operation costs on the quickstart instance
(Allgather, 4-node ring) plus a DGX-1 pinned plan:

* **fault registration** — the control-plane cost of ``/v1/fault``
  register: board mutation + routing-table/cache invalidation;
* **cold replan** — first plan request after a LinkDown: a fresh
  synthesis against the degraded topology;
* **warm replan** — the same degraded request again: served from the
  (degraded-keyed) registry, no solve;
* **baseline fallback** — replan under a deadline too tight to solve:
  the ladder degrades to a verified baseline instead of erroring.

The numbers land in ``BENCH_faults.json`` next to the repo root (or
``$SCCL_BENCH_DIR``) so CI can archive the recovery-latency trajectory
run over run.  Everything here must stay fast: this file runs inside
the tier-1 suite.
"""

import time

from repro.engine import AlgorithmCache
from repro.faults import FaultSet, LinkDegraded, LinkDown
from repro.service import (
    FaultBoard,
    FaultRequest,
    PlanRegistry,
    PlanRequest,
    PlanningService,
    SynthesisResolver,
    apply_fault_request,
)

from conftest import report, write_bench_json

ROUTED = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)
DGX1_PINNED = PlanRequest("Allgather", "dgx1", chunks=1, steps=2, rounds=2)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _ring_replan(tmp_path) -> dict:
    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "ring" / "algorithms"),
        routes_dir=tmp_path / "ring" / "routes",
    )
    board = FaultBoard()
    resolver = SynthesisResolver(registry, fault_board=board)
    with PlanningService(
        registry, num_workers=2, resolver=resolver, fault_board=board
    ) as service:
        healthy, healthy_s = _timed(
            lambda: service.request(ROUTED, timeout=120.0)
        )
        assert healthy.ok

        fault, register_s = _timed(
            lambda: service.fault(
                FaultRequest("ring:4", "register", (LinkDown(0, 1).to_json(),))
            )
        )
        assert fault.ok

        cold, cold_s = _timed(lambda: service.request(ROUTED, timeout=120.0))
        assert cold.ok
        warm, warm_s = _timed(lambda: service.request(ROUTED, timeout=120.0))
        assert warm.ok and warm.source in ("registry", "cache")
        solves = resolver.stats()["solves"]

    return {
        "instance": "Allgather on ring:4, routed, LinkDown(0, 1)",
        "healthy_cold_plan_s": round(healthy_s, 4),
        "fault_register_s": round(register_s, 4),
        "invalidated": fault.invalidated,
        "replan_cold_s": round(cold_s, 4),
        "replan_warm_s": round(warm_s, 4),
        "replan_speedup_warm_vs_cold": round(cold_s / warm_s, 1) if warm_s else None,
        "backend_solves": solves,
    }


def _dgx1_replan(tmp_path) -> dict:
    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "dgx1" / "algorithms"),
        routes_dir=tmp_path / "dgx1" / "routes",
    )
    board = FaultBoard()
    resolver = SynthesisResolver(registry, fault_board=board)

    healthy, healthy_s = _timed(lambda: resolver(DGX1_PINNED, None))
    assert healthy.ok
    dead = sorted(
        (s.src, s.dst)
        for step in healthy.plan_object().algorithm.steps
        for s in step.sends
    )[0]

    fault, register_s = _timed(
        lambda: apply_fault_request(
            board,
            FaultRequest("dgx1", "register", (LinkDown(*dead).to_json(),)),
            registry=registry,
        )
    )
    assert fault.ok

    cold, cold_s = _timed(lambda: resolver(DGX1_PINNED, None))
    assert cold.ok and cold.source == "synthesized"
    warm, warm_s = _timed(lambda: resolver(DGX1_PINNED, None))
    assert warm.ok and warm.source == "cache"

    return {
        "instance": f"Allgather on dgx1, pinned (1,2,2), LinkDown{dead}",
        "healthy_cold_plan_s": round(healthy_s, 4),
        "fault_register_s": round(register_s, 4),
        "invalidated": fault.invalidated,
        "replan_cold_s": round(cold_s, 4),
        "replan_warm_s": round(warm_s, 4),
    }


def _baseline_fallback(tmp_path, monkeypatch) -> dict:
    """The ladder's last rung, measured deterministically: the solver is
    forced to exhaust its budget (UNKNOWN), so the degraded replan comes
    from a verified hand-written baseline instead of a synthesis."""
    from repro.core.synthesizer import SynthesisResult
    from repro.solver import SolveResult

    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / "fallback" / "algorithms"),
        routes_dir=tmp_path / "fallback" / "routes",
    )
    board = FaultBoard()
    # Cost-only degradation: the fabric keeps its ring structure (so the
    # hand-written ring baseline still applies) but the link is 8x slower.
    board.register(
        FaultRequest("ring:4", "status").resolve_topology(),
        FaultSet.of(LinkDegraded(0, 1, beta_factor=8.0)),
    )
    resolver = SynthesisResolver(registry, fault_board=board)

    def exhausted_synthesize(instance, **kwargs):
        return SynthesisResult(instance=instance, status=SolveResult.UNKNOWN)

    import repro.core

    monkeypatch.setattr(repro.core, "synthesize", exhausted_synthesize)
    fallback, fallback_s = _timed(
        lambda: resolver(
            PlanRequest("Allgather", "ring:4", chunks=1, steps=3, rounds=4), 5.0
        )
    )
    assert fallback.ok and fallback.source == "baseline"

    return {
        "instance": "Allgather on ring:4, pinned, LinkDegraded(0, 1, 8x), solver exhausted",
        "baseline_fallback_s": round(fallback_s, 4),
        "source": fallback.source,
    }


def test_fault_replanning_latency(tmp_path, monkeypatch):
    ring_stats = _ring_replan(tmp_path)
    dgx1_stats = _dgx1_replan(tmp_path)
    fallback_stats = _baseline_fallback(tmp_path, monkeypatch)
    payload = {
        "benchmark": "fault_replanning_latency",
        "ring_routed": ring_stats,
        "dgx1_pinned": dgx1_stats,
        "baseline_fallback": fallback_stats,
    }
    # write_bench_json stamps host context and appends this run's metrics to
    # the performance archive for the CI regression sentinel.
    output = write_bench_json("BENCH_faults.json", payload)

    report(
        "BENCH_faults: degraded-mode replanning latency",
        "\n".join(
            [
                f"ring routed : register {ring_stats['fault_register_s']}s, "
                f"cold replan {ring_stats['replan_cold_s']}s, "
                f"warm {ring_stats['replan_warm_s']}s",
                f"dgx1 pinned : register {dgx1_stats['fault_register_s']}s, "
                f"cold replan {dgx1_stats['replan_cold_s']}s, "
                f"warm {dgx1_stats['replan_warm_s']}s",
                f"fallback    : {fallback_stats['baseline_fallback_s']}s "
                f"(solver exhausted -> {fallback_stats['source']})",
                f"written to  : {output}",
            ]
        ),
    )
    assert ring_stats["replan_warm_s"] <= ring_stats["replan_cold_s"]

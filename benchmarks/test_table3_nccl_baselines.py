"""Table 3: NCCL's hand-written collectives and their chunks/steps/rounds.

The benchmark builds each NCCL/RCCL baseline schedule, checks it lands on
the paper's (C, S, R) row, and times construction + verification (the
baselines run through the same machinery as synthesized algorithms).
"""

import pytest

from conftest import report
from repro.baselines import (
    nccl_allgather,
    nccl_allreduce,
    nccl_broadcast,
    nccl_reduce,
    nccl_reducescatter,
    rccl_allgather,
    rccl_allreduce,
)
from repro.evaluation import format_table, table3_rows


def test_table3_rows_match_paper(benchmark):
    rows = benchmark(table3_rows, 1)
    report("Table 3: NCCL hand-written collectives (C, S, R)", format_table(rows))
    triples = {(r["collective"], r["C"], r["S"], r["R"]) for r in rows}
    assert ("Allgather/Reducescatter", 6, 7, 7) in triples
    assert ("Allreduce", 48, 14, 14) in triples
    assert ("Broadcast/Reduce", 6, 7, 7) in triples


@pytest.mark.parametrize(
    "builder,expected",
    [
        (nccl_allgather, (6, 7, 7)),
        (nccl_reducescatter, (6, 7, 7)),
        (nccl_allreduce, (48, 14, 14)),
        (rccl_allgather, (2, 7, 7)),
        (rccl_allreduce, (16, 14, 14)),
    ],
    ids=["nccl_allgather", "nccl_reducescatter", "nccl_allreduce", "rccl_allgather", "rccl_allreduce"],
)
def test_baseline_construction(benchmark, builder, expected):
    algorithm = benchmark(builder)
    assert algorithm.signature() == expected


@pytest.mark.parametrize("multiplier", [1, 2, 4])
def test_pipelined_broadcast_family(benchmark, multiplier):
    algorithm = benchmark.pedantic(nccl_broadcast, args=(multiplier,), rounds=1, iterations=1)
    assert algorithm.signature() == (6 * multiplier, 6 + multiplier, 6 + multiplier)


def test_pipelined_reduce(benchmark):
    algorithm = benchmark.pedantic(nccl_reduce, args=(2,), rounds=1, iterations=1)
    assert algorithm.signature() == (12, 8, 8)
    assert algorithm.combining

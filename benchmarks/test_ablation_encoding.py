"""Encoding ablation (Section 5.4.3) and the sweep-strategy ablation.

The paper reports that the naive encoding did not finish the 24-chunk
Alltoall within 60 minutes while the split encoding needed ~2 minutes.  At
unit-test scale we measure the same effect on instances the pure-Python
solver can finish for both encodings, and additionally compare encoding
sizes on a DGX-1 instance where only the split encoding is solved.

``test_sweep_strategy_ablation`` additionally races the engine's sweep
strategies (serial / incremental / parallel / speculative) on a Table-4
smoke instance and writes ``BENCH_sweep.json`` — wall clock, engine stats
and the encode/solve/verify phase split per strategy, so perf regressions
in the sweep hot path are attributable.
"""

import time

import pytest

from conftest import (
    bench_dir,
    cpu_parallelism,
    full_scale,
    merge_bench_json,
    phase_totals,
    report,
    synthesis_budget,
)
from repro.core import NaiveEncoding, ScclEncoding, make_instance, synthesize
from repro.topology import dgx1, ring

SMALL_INSTANCE = make_instance("Allgather", ring(6), 1, 3, 3)
MEDIUM_INSTANCE = make_instance("Allgather", dgx1(), 2, 3, 3)


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_small_instance_synthesis(benchmark, encoding):
    def run():
        return synthesize(SMALL_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_sat
    result.algorithm.verify()
    report(
        f"Encoding ablation (ring6 Allgather, {encoding})",
        f"time {result.total_time:.2f}s, vars {result.encoding_stats['variables']}, "
        f"clauses {result.encoding_stats['clauses']}",
    )


def test_encoding_size_gap_on_dgx1(benchmark):
    def encode_both():
        sccl = ScclEncoding(MEDIUM_INSTANCE)
        sccl.encode()
        naive = NaiveEncoding(MEDIUM_INSTANCE)
        naive.encode()
        return sccl, naive

    sccl, naive = benchmark.pedantic(encode_both, rounds=1, iterations=1)
    report(
        "Encoding ablation (DGX-1 Allgather C=2 S=3): formula sizes",
        f"sccl:  {sccl.stats.variables} vars, {sccl.stats.clauses} clauses\n"
        f"naive: {naive.stats.variables} vars, {naive.stats.clauses} clauses",
    )
    assert naive.stats.variables > sccl.stats.send_vars
    # The naive encoding enumerates steps explicitly and is substantially larger.
    assert naive.stats.send_vars > 2 * sccl.stats.send_vars


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_medium_instance_synthesis(benchmark, encoding):
    if encoding == "naive" and not full_scale():
        pytest.skip("naive encoding on DGX-1 instances needs SCCL_FULL=1")

    def run():
        return synthesize(MEDIUM_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if result.is_unknown:
        pytest.skip("budget exhausted (recorded as unknown, not a failure)")
    assert result.is_sat


# ----------------------------------------------------------------------
# Sweep-strategy ablation -> BENCH_sweep.json
# ----------------------------------------------------------------------
#: The Table-4 smoke configuration: a DGX-1 Allgather enumeration whose
#: high-chunk-count head candidates are timeout-bound (the shape of the
#: paper's slow Table 4/5 rows), so cross-candidate and cross-S overlap is
#: what decides wall clock rather than raw solver speed.
SWEEP_SMOKE = dict(k=4, max_steps=3, max_chunks=6, time_limit=1.2)
SWEEP_STRATEGIES = ("serial", "incremental", "parallel", "speculative")


def _metrics_snapshot(metrics) -> dict:
    """The Prometheus series BENCH consumers cross-check against /v1/metrics."""
    return {
        "solver_calls": int(metrics.total("repro_solver_calls_total")),
        "cache_hits": int(metrics.total("repro_cache_lookups_total", outcome="hit")),
        "bounds_probed": int(
            metrics.total("repro_bounds_candidates_total", action="probed")
        ),
        "bounds_pruned": int(
            metrics.total("repro_bounds_candidates_total", action="pruned")
        ),
        "bounds_cut": int(metrics.total("repro_bounds_candidates_total", action="cut")),
    }


def _run_sweep_strategy(strategy: str) -> dict:
    from repro.core import pareto_synthesize
    from repro.telemetry import Metrics, set_metrics, span_coverage, tracing

    metrics = Metrics()
    previous = set_metrics(metrics)
    try:
        started = time.perf_counter()
        with tracing() as tracer:
            frontier = pareto_synthesize(
                "Allgather",
                dgx1(),
                k=SWEEP_SMOKE["k"],
                max_steps=SWEEP_SMOKE["max_steps"],
                max_chunks=SWEEP_SMOKE["max_chunks"],
                time_limit_per_instance=SWEEP_SMOKE["time_limit"],
                strategy=strategy,
                max_workers=2,
            )
        wall = time.perf_counter() - started
    finally:
        set_metrics(previous)
    row = {
        "wall_s": round(wall, 3),
        "points": [[p.chunks_per_node, p.steps, p.rounds] for p in frontier.points],
        "engine_stats": frontier.engine_stats,
        "phases": phase_totals(tracer),
        "probe_coverage": round(span_coverage(tracer.roots(), "probe", total_s=wall), 4),
        "metrics": _metrics_snapshot(metrics),
    }
    if strategy == "speculative":
        # The acceptance-criterion artifact: a Perfetto-loadable trace of the
        # speculative DGX-1 Allgather sweep, archived by the CI bench job.
        trace_path = bench_dir() / "trace.json"
        tracer.write_chrome_trace(trace_path)
        row["trace_artifact"] = trace_path.name
    return row


def test_sweep_strategy_ablation():
    """serial vs incremental vs parallel vs speculative on the Table-4 smoke.

    Two classes of claims are checked:

    * **deterministic** (asserted everywhere): the shared-prefix family
      encoding cuts encode *calls* — one per step count — below the serial
      loop's one-per-candidate, and its encode-time split is reported
      separately in the JSON;
    * **wall-clock** (asserted only where the host has real parallelism,
      ``cpu_count >= 2``): the speculative pipeline is no slower than the
      per-step parallel dispatcher and beats the serial loop, because the
      timeout-bound head candidates burn their budgets concurrently
      instead of back to back.  On a single-core host the pool can only
      time-slice, so there the numbers are recorded but not asserted.
    """
    rows = {strategy: _run_sweep_strategy(strategy) for strategy in SWEEP_STRATEGIES}

    cores = cpu_parallelism()
    asserted = cores >= 2
    payload = {
        "benchmark": "sweep_strategy_ablation",
        "instance": {
            "collective": "Allgather",
            "topology": "dgx1",
            **{k: v for k, v in SWEEP_SMOKE.items()},
        },
        "cpu_count": cores,
        "wall_clock_asserted": asserted,
        "strategies": rows,
    }
    output = merge_bench_json("BENCH_sweep.json", "strategy_ablation", payload)

    report(
        "BENCH_sweep: sweep-strategy ablation (Allgather on DGX-1 smoke)",
        "\n".join(
            [
                f"{name:12s} {row['wall_s']:7.2f}s  points={len(row['points'])} "
                f"probes={row['engine_stats']['candidates_probed']} "
                f"encodes={row['engine_stats']['encode_calls']} "
                f"(encode {row['phases']['encode_s']:.2f}s, "
                f"solve {row['phases']['solve_s']:.2f}s, "
                f"verify {row['phases']['verify_s']:.2f}s)"
                for name, row in rows.items()
            ]
            + [f"cores={cores} wall-clock asserts {'ON' if asserted else 'OFF'}",
               f"written to : {output}"]
        ),
    )

    # Every strategy reproduces a frontier on the smoke instance.
    for name, row in rows.items():
        assert row["points"], f"{name} found no frontier points"
    # Shared-prefix reuse: one encoding per step count, not per candidate —
    # plus one exact standalone re-encode per budget-exhausted family frame
    # (the deterministic UNKNOWN retry policy), which the family share must
    # not be charged for.
    serial_stats = rows["serial"]["engine_stats"]
    incremental_stats = rows["incremental"]["engine_stats"]
    family_encodes = incremental_stats["encode_calls"] - incremental_stats.get(
        "unknown_retries", 0
    )
    assert family_encodes < serial_stats["encode_calls"]
    assert family_encodes <= SWEEP_SMOKE["max_steps"]

    # Telemetry cross-checks (the /v1/metrics acceptance criterion): the
    # metric registry must agree with the engine's own committed counters.
    # Bounds series are published from the committed SweepStats, so they
    # match exactly on every dispatcher; solver-call metrics additionally
    # count speculative losers (honest work whose stats the commit
    # discards), so on pool dispatchers the metric is a >= bound.
    for name, row in rows.items():
        stats = row["engine_stats"]
        assert row["metrics"]["bounds_probed"] == stats["candidates_probed"], name
        if name in ("serial", "incremental"):
            assert row["metrics"]["solver_calls"] == stats["solver_calls"], name
        else:
            assert row["metrics"]["solver_calls"] >= stats["solver_calls"], name
    # Perfetto acceptance: the archived speculative trace's per-candidate
    # probe spans cover >=95% of the measured sweep wall clock.
    assert rows["speculative"]["probe_coverage"] >= 0.95, rows["speculative"]
    assert (bench_dir() / rows["speculative"]["trace_artifact"]).exists()

    if asserted:
        # The structural margins on this smoke are ~1.5x (vs serial, whose
        # timeout-bound head candidates burn back to back) and ~1.1x (vs
        # parallel, which pays one pool per step count); the tolerances
        # leave headroom for shared-runner noise without letting a real
        # regression through.
        spec = rows["speculative"]["wall_s"]
        assert spec <= rows["parallel"]["wall_s"] * 1.25, (
            "speculative sweep slower than the per-step parallel dispatcher"
        )
        assert spec <= rows["serial"]["wall_s"] * 1.10, (
            "speculative sweep slower than the serial loop"
        )


# ----------------------------------------------------------------------
# Bound-seeded pruning ablation -> BENCH_sweep.json (bounds_ablation)
# ----------------------------------------------------------------------
#: Deeper enumeration than SWEEP_SMOKE: max_steps=6 keeps the sweep going
#: past the bandwidth-optimal point at S=3, which is exactly the region the
#: frontier cap prunes (every S>=4 candidate costs at least as much as the
#: S=3 bandwidth-optimal SAT, so a seeded run never probes it).  The budget
#: is a *conflict* limit, not wall clock: conflict counts are deterministic
#: per formula, so the seeded/unseeded comparison cannot be skewed by pool
#: contention on a loaded host (every probe here finishes in <500
#: conflicts; the limit is a runaway backstop, not a tuning knob).
SWEEP_BOUNDS = dict(k=4, max_steps=6, max_chunks=4, conflict_limit=20_000)
BOUNDS_MODES = ("baseline", "off")


def _run_bounds_config(strategy: str, bounds: str) -> dict:
    from repro.core import pareto_synthesize
    from repro.telemetry import Metrics, set_metrics, tracing

    metrics = Metrics()
    previous = set_metrics(metrics)
    try:
        started = time.perf_counter()
        with tracing() as tracer:
            frontier = pareto_synthesize(
                "Allgather",
                dgx1(),
                k=SWEEP_BOUNDS["k"],
                max_steps=SWEEP_BOUNDS["max_steps"],
                max_chunks=SWEEP_BOUNDS["max_chunks"],
                conflict_limit=SWEEP_BOUNDS["conflict_limit"],
                strategy=strategy,
                max_workers=2,
                bounds=bounds,
            )
        wall = time.perf_counter() - started
    finally:
        set_metrics(previous)
    stats = frontier.engine_stats
    return {
        "wall_s": round(wall, 3),
        "bounds": frontier.bounds,
        "bound_sources": frontier.bound_sources,
        "points": [[p.chunks_per_node, p.steps, p.rounds] for p in frontier.points],
        "pareto_points": [
            [p.chunks_per_node, p.steps, p.rounds]
            for p in frontier.points
            if p.pareto_optimal
        ],
        "probes_issued": stats.get("candidates_probed", 0),
        "probes_pruned": stats.get("probes_pruned", 0),
        "probes_cut": stats.get("probes_cut", 0),
        "engine_stats": stats,
        "phases": phase_totals(tracer),
        "metrics": _metrics_snapshot(metrics),
    }


def test_bounds_seeding_ablation():
    """Bound-seeded vs unseeded sweeps on a DGX-1 Allgather enumeration.

    The seeded run consults the baseline suite (NCCL Table 3 on DGX-1)
    plus its own earlier SATs before issuing solver probes, so it must

    * probe at least 30% fewer candidates than the unseeded run (the
      S>=4 tail past the bandwidth-optimal point is pruned wholesale),
    * report where its bounds came from (``bound_sources``), and
    * reproduce the identical Pareto frontier — pruning only ever drops
      points the unseeded run marks dominated.

    Both claims are structural (candidate-count arithmetic, not wall
    clock), so they are asserted on every host.
    """
    rows = {
        strategy: {bounds: _run_bounds_config(strategy, bounds) for bounds in BOUNDS_MODES}
        for strategy in SWEEP_STRATEGIES
    }

    payload = {
        "benchmark": "bounds_seeding_ablation",
        "instance": {
            "collective": "Allgather",
            "topology": "dgx1",
            **{k: v for k, v in SWEEP_BOUNDS.items()},
        },
        "cpu_count": cpu_parallelism(),
        "strategies": rows,
    }
    output = merge_bench_json("BENCH_sweep.json", "bounds_ablation", payload)

    report(
        "BENCH_sweep: bound-seeded pruning ablation (Allgather on DGX-1)",
        "\n".join(
            [
                f"{name:12s} {mode:8s} {row['wall_s']:7.2f}s  "
                f"probed={row['probes_issued']} pruned={row['probes_pruned']} "
                f"cut={row['probes_cut']} points={len(row['points'])} "
                f"(encode {row['phases']['encode_s']:.2f}s, "
                f"solve {row['phases']['solve_s']:.2f}s, "
                f"verify {row['phases']['verify_s']:.2f}s)"
                for name, modes in rows.items()
                for mode, row in modes.items()
            ]
            + [f"written to : {output}"]
        ),
    )

    for name, modes in rows.items():
        seeded, unseeded = modes["baseline"], modes["off"]
        # The ISSUE's acceptance bar: >=30% fewer solver probes when seeded.
        assert seeded["probes_issued"] <= 0.7 * unseeded["probes_issued"], (
            f"{name}: seeded run probed {seeded['probes_issued']} of "
            f"{unseeded['probes_issued']} candidates (<30% reduction)"
        )
        assert seeded["probes_pruned"] > 0, f"{name}: seeded run pruned nothing"
        assert seeded["bound_sources"], f"{name}: seeded run reports no bound sources"
        assert unseeded["probes_pruned"] == 0 and unseeded["probes_cut"] == 0
        # Identical frontiers: pruning drops only dominated points.
        assert seeded["pareto_points"] == unseeded["pareto_points"], (
            f"{name}: bound seeding changed the Pareto frontier"
        )

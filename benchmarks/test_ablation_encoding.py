"""Encoding ablation (Section 5.4.3) and the sweep-strategy ablation.

The paper reports that the naive encoding did not finish the 24-chunk
Alltoall within 60 minutes while the split encoding needed ~2 minutes.  At
unit-test scale we measure the same effect on instances the pure-Python
solver can finish for both encodings, and additionally compare encoding
sizes on a DGX-1 instance where only the split encoding is solved.

``test_sweep_strategy_ablation`` additionally races the engine's sweep
strategies (serial / incremental / parallel / speculative) on a Table-4
smoke instance and writes ``BENCH_sweep.json`` — wall clock, engine stats
and the encode/solve/verify phase split per strategy, so perf regressions
in the sweep hot path are attributable.
"""

import time

import pytest

from conftest import (
    cpu_parallelism,
    full_scale,
    phase_totals,
    report,
    synthesis_budget,
    write_bench_json,
)
from repro.core import NaiveEncoding, ScclEncoding, make_instance, synthesize
from repro.topology import dgx1, ring

SMALL_INSTANCE = make_instance("Allgather", ring(6), 1, 3, 3)
MEDIUM_INSTANCE = make_instance("Allgather", dgx1(), 2, 3, 3)


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_small_instance_synthesis(benchmark, encoding):
    def run():
        return synthesize(SMALL_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_sat
    result.algorithm.verify()
    report(
        f"Encoding ablation (ring6 Allgather, {encoding})",
        f"time {result.total_time:.2f}s, vars {result.encoding_stats['variables']}, "
        f"clauses {result.encoding_stats['clauses']}",
    )


def test_encoding_size_gap_on_dgx1(benchmark):
    def encode_both():
        sccl = ScclEncoding(MEDIUM_INSTANCE)
        sccl.encode()
        naive = NaiveEncoding(MEDIUM_INSTANCE)
        naive.encode()
        return sccl, naive

    sccl, naive = benchmark.pedantic(encode_both, rounds=1, iterations=1)
    report(
        "Encoding ablation (DGX-1 Allgather C=2 S=3): formula sizes",
        f"sccl:  {sccl.stats.variables} vars, {sccl.stats.clauses} clauses\n"
        f"naive: {naive.stats.variables} vars, {naive.stats.clauses} clauses",
    )
    assert naive.stats.variables > sccl.stats.send_vars
    # The naive encoding enumerates steps explicitly and is substantially larger.
    assert naive.stats.send_vars > 2 * sccl.stats.send_vars


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_medium_instance_synthesis(benchmark, encoding):
    if encoding == "naive" and not full_scale():
        pytest.skip("naive encoding on DGX-1 instances needs SCCL_FULL=1")

    def run():
        return synthesize(MEDIUM_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if result.is_unknown:
        pytest.skip("budget exhausted (recorded as unknown, not a failure)")
    assert result.is_sat


# ----------------------------------------------------------------------
# Sweep-strategy ablation -> BENCH_sweep.json
# ----------------------------------------------------------------------
#: The Table-4 smoke configuration: a DGX-1 Allgather enumeration whose
#: high-chunk-count head candidates are timeout-bound (the shape of the
#: paper's slow Table 4/5 rows), so cross-candidate and cross-S overlap is
#: what decides wall clock rather than raw solver speed.
SWEEP_SMOKE = dict(k=4, max_steps=3, max_chunks=6, time_limit=1.2)
SWEEP_STRATEGIES = ("serial", "incremental", "parallel", "speculative")


def _run_sweep_strategy(strategy: str) -> dict:
    from repro.core import pareto_synthesize

    results = []
    started = time.perf_counter()
    frontier = pareto_synthesize(
        "Allgather",
        dgx1(),
        k=SWEEP_SMOKE["k"],
        max_steps=SWEEP_SMOKE["max_steps"],
        max_chunks=SWEEP_SMOKE["max_chunks"],
        time_limit_per_instance=SWEEP_SMOKE["time_limit"],
        strategy=strategy,
        max_workers=2,
        on_result=results.append,
    )
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 3),
        "points": [[p.chunks_per_node, p.steps, p.rounds] for p in frontier.points],
        "engine_stats": frontier.engine_stats,
        "phases": phase_totals(results),
    }


def test_sweep_strategy_ablation():
    """serial vs incremental vs parallel vs speculative on the Table-4 smoke.

    Two classes of claims are checked:

    * **deterministic** (asserted everywhere): the shared-prefix family
      encoding cuts encode *calls* — one per step count — below the serial
      loop's one-per-candidate, and its encode-time split is reported
      separately in the JSON;
    * **wall-clock** (asserted only where the host has real parallelism,
      ``cpu_count >= 2``): the speculative pipeline is no slower than the
      per-step parallel dispatcher and beats the serial loop, because the
      timeout-bound head candidates burn their budgets concurrently
      instead of back to back.  On a single-core host the pool can only
      time-slice, so there the numbers are recorded but not asserted.
    """
    rows = {strategy: _run_sweep_strategy(strategy) for strategy in SWEEP_STRATEGIES}

    cores = cpu_parallelism()
    asserted = cores >= 2
    payload = {
        "benchmark": "sweep_strategy_ablation",
        "instance": {
            "collective": "Allgather",
            "topology": "dgx1",
            **{k: v for k, v in SWEEP_SMOKE.items()},
        },
        "cpu_count": cores,
        "wall_clock_asserted": asserted,
        "strategies": rows,
    }
    output = write_bench_json("BENCH_sweep.json", payload)

    report(
        "BENCH_sweep: sweep-strategy ablation (Allgather on DGX-1 smoke)",
        "\n".join(
            [
                f"{name:12s} {row['wall_s']:7.2f}s  points={len(row['points'])} "
                f"probes={row['engine_stats']['candidates_probed']} "
                f"encodes={row['engine_stats']['encode_calls']} "
                f"(encode {row['phases']['encode_s']:.2f}s, "
                f"solve {row['phases']['solve_s']:.2f}s, "
                f"verify {row['phases']['verify_s']:.2f}s)"
                for name, row in rows.items()
            ]
            + [f"cores={cores} wall-clock asserts {'ON' if asserted else 'OFF'}",
               f"written to : {output}"]
        ),
    )

    # Every strategy reproduces a frontier on the smoke instance.
    for name, row in rows.items():
        assert row["points"], f"{name} found no frontier points"
    # Shared-prefix reuse: one encoding per step count, not per candidate —
    # plus one exact standalone re-encode per budget-exhausted family frame
    # (the deterministic UNKNOWN retry policy), which the family share must
    # not be charged for.
    serial_stats = rows["serial"]["engine_stats"]
    incremental_stats = rows["incremental"]["engine_stats"]
    family_encodes = incremental_stats["encode_calls"] - incremental_stats.get(
        "unknown_retries", 0
    )
    assert family_encodes < serial_stats["encode_calls"]
    assert family_encodes <= SWEEP_SMOKE["max_steps"]

    if asserted:
        # The structural margins on this smoke are ~1.5x (vs serial, whose
        # timeout-bound head candidates burn back to back) and ~1.1x (vs
        # parallel, which pays one pool per step count); the tolerances
        # leave headroom for shared-runner noise without letting a real
        # regression through.
        spec = rows["speculative"]["wall_s"]
        assert spec <= rows["parallel"]["wall_s"] * 1.25, (
            "speculative sweep slower than the per-step parallel dispatcher"
        )
        assert spec <= rows["serial"]["wall_s"] * 1.10, (
            "speculative sweep slower than the serial loop"
        )

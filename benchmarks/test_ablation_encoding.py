"""Encoding ablation (Section 5.4.3): the paper's time/send split encoding vs
the naive one-Boolean-per-(c, n, n', s) encoding.

The paper reports that the naive encoding did not finish the 24-chunk
Alltoall within 60 minutes while the split encoding needed ~2 minutes.  At
unit-test scale we measure the same effect on instances the pure-Python
solver can finish for both encodings, and additionally compare encoding
sizes on a DGX-1 instance where only the split encoding is solved.
"""

import pytest

from conftest import full_scale, report, synthesis_budget
from repro.core import NaiveEncoding, ScclEncoding, make_instance, synthesize
from repro.topology import dgx1, ring

SMALL_INSTANCE = make_instance("Allgather", ring(6), 1, 3, 3)
MEDIUM_INSTANCE = make_instance("Allgather", dgx1(), 2, 3, 3)


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_small_instance_synthesis(benchmark, encoding):
    def run():
        return synthesize(SMALL_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_sat
    result.algorithm.verify()
    report(
        f"Encoding ablation (ring6 Allgather, {encoding})",
        f"time {result.total_time:.2f}s, vars {result.encoding_stats['variables']}, "
        f"clauses {result.encoding_stats['clauses']}",
    )


def test_encoding_size_gap_on_dgx1(benchmark):
    def encode_both():
        sccl = ScclEncoding(MEDIUM_INSTANCE)
        sccl.encode()
        naive = NaiveEncoding(MEDIUM_INSTANCE)
        naive.encode()
        return sccl, naive

    sccl, naive = benchmark.pedantic(encode_both, rounds=1, iterations=1)
    report(
        "Encoding ablation (DGX-1 Allgather C=2 S=3): formula sizes",
        f"sccl:  {sccl.stats.variables} vars, {sccl.stats.clauses} clauses\n"
        f"naive: {naive.stats.variables} vars, {naive.stats.clauses} clauses",
    )
    assert naive.stats.variables > sccl.stats.send_vars
    # The naive encoding enumerates steps explicitly and is substantially larger.
    assert naive.stats.send_vars > 2 * sccl.stats.send_vars


@pytest.mark.parametrize("encoding", ["sccl", "naive"])
def test_medium_instance_synthesis(benchmark, encoding):
    if encoding == "naive" and not full_scale():
        pytest.skip("naive encoding on DGX-1 instances needs SCCL_FULL=1")

    def run():
        return synthesize(MEDIUM_INSTANCE, encoding=encoding, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if result.is_unknown:
        pytest.skip("budget exhausted (recorded as unknown, not a failure)")
    assert result.is_sat

"""Ablation: lowering choices (Section 4) on the simulator.

Compares the three lowering protocols — fused single kernel with push
copies, one kernel per step, and per-step cudaMemcpy — for the NCCL ring
Allgather across input sizes, reproducing the qualitative statements of
Section 4 and the "(6,7,7) cudamemcpy" series of Figure 4.
"""

import pytest

from conftest import report
from repro.baselines import nccl_allgather
from repro.evaluation import format_series
from repro.runtime import PROTOCOLS, Simulator, lower
from repro.topology import dgx1

SIZES = [1 << 10, 1 << 16, 1 << 22, 1 << 28]


@pytest.fixture(scope="module")
def protocol_times():
    topology = dgx1()
    algorithm = nccl_allgather(topology)
    simulator = Simulator(topology)
    times = {}
    for protocol in PROTOCOLS:
        program = lower(algorithm, protocol=protocol)
        times[protocol] = [simulator.simulate(program, size).total_time_s for size in SIZES]
    report(
        "Lowering ablation (NCCL ring Allgather, simulated seconds)",
        format_series(times, SIZES, x_label="bytes", value_format="{:.6f}"),
    )
    return times


def test_fused_kernel_wins_at_small_sizes(protocol_times):
    assert protocol_times["single_kernel_push"][0] < protocol_times["multi_kernel_push"][0]
    assert protocol_times["single_kernel_push"][0] < protocol_times["multi_kernel_memcpy"][0]


def test_memcpy_wins_at_large_sizes(protocol_times):
    assert protocol_times["multi_kernel_memcpy"][-1] < protocol_times["single_kernel_push"][-1]


def test_per_step_kernels_always_cost_more_than_fused(protocol_times):
    for fused, multi in zip(protocol_times["single_kernel_push"], protocol_times["multi_kernel_push"]):
        assert multi >= fused


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_lowering_benchmark(benchmark, protocol, protocol_times):
    # Depending on protocol_times ensures the ablation table above is printed
    # even under --benchmark-only (which skips fixture-less tests).
    topology = dgx1()
    algorithm = nccl_allgather(topology)

    def run():
        return lower(algorithm, protocol=protocol)

    program = benchmark(run)
    assert program.num_steps == 7

"""Ablation: cardinality encoder choice inside the C5 bandwidth constraints.

DESIGN.md calls out the cardinality/totalizer encoders as a design choice of
the SMT-lite substrate (Z3 handles pseudo-Boolean sums natively; we compile
them to CNF).  This benchmark measures the sequential counter against the
totalizer and the pairwise encoding on the at-most-k queries the synthesis
encoding generates.
"""

import pytest

from conftest import report
from repro.solver import CNF, SATSolver, SolveResult
from repro.solver import encoders


def _build_formula(method: str, n: int, k: int, force: int) -> CNF:
    cnf = CNF()
    xs = cnf.new_vars(n)
    if method == "pairwise" and k == 1:
        encoders.at_most_one(cnf, xs, method="pairwise")
    else:
        encoders.at_most_k(cnf, xs, k, method=method)
    # Force `force` of the inputs true: SAT iff force <= k.
    for lit in xs[:force]:
        cnf.add_clause([lit])
    return cnf


@pytest.mark.parametrize("method", ["sequential", "totalizer"])
def test_at_most_k_encoders_sat(benchmark, method):
    def run():
        cnf = _build_formula(method, n=96, k=2, force=2)
        solver = SATSolver()
        solver.add_cnf(cnf)
        return solver.solve(), cnf

    (result, cnf) = benchmark(run)
    assert result is SolveResult.SAT
    report(
        f"Cardinality ablation ({method}, n=96, k=2, SAT)",
        f"{cnf.num_vars} vars, {cnf.num_clauses} clauses",
    )


@pytest.mark.parametrize("method", ["sequential", "totalizer"])
def test_at_most_k_encoders_unsat(benchmark, method):
    def run():
        cnf = _build_formula(method, n=96, k=2, force=3)
        solver = SATSolver()
        solver.add_cnf(cnf)
        return solver.solve()

    assert benchmark(run) is SolveResult.UNSAT


@pytest.mark.parametrize("method", ["pairwise", "commander"])
def test_at_most_one_encoders(benchmark, method):
    def run():
        cnf = CNF()
        xs = cnf.new_vars(128)
        encoders.at_most_one(cnf, xs, method=method)
        cnf.add_clause([xs[7]])
        solver = SATSolver()
        solver.add_cnf(cnf)
        return solver.solve()

    assert benchmark(run) is SolveResult.SAT

"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure it regenerates so that running
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's evaluation
artifacts textually.  Heavy instances (the ones that took Z3 minutes and
take the pure-Python solver correspondingly longer) only run when the
``SCCL_FULL=1`` environment variable is set; the default configuration keeps
the whole benchmark suite in the minutes range.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("SCCL_FULL", "0") not in ("", "0", "false", "no")


#: Per-instance synthesis time budget (seconds) for benchmark runs.
def synthesis_budget() -> float:
    return float(os.environ.get("SCCL_TIME_LIMIT", "300" if full_scale() else "90"))


@pytest.fixture(scope="session")
def dgx1_topology():
    from repro.topology import dgx1

    return dgx1()


@pytest.fixture(scope="session")
def amd_topology():
    from repro.topology import amd_z52

    return amd_z52()


def report(title: str, text: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")

"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure it regenerates so that running
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's evaluation
artifacts textually.  Heavy instances (the ones that took Z3 minutes and
take the pure-Python solver correspondingly longer) only run when the
``SCCL_FULL=1`` environment variable is set; the default configuration keeps
the whole benchmark suite in the minutes range.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest


def full_scale() -> bool:
    return os.environ.get("SCCL_FULL", "0") not in ("", "0", "false", "no")


#: Per-instance synthesis time budget (seconds) for benchmark runs.
def synthesis_budget() -> float:
    return float(os.environ.get("SCCL_TIME_LIMIT", "300" if full_scale() else "90"))


def cpu_parallelism() -> int:
    """Cores available to process-pool strategies (1 = no real parallelism)."""
    return os.cpu_count() or 1


def bench_dir() -> Path:
    """Where BENCH_*.json artifacts land (repo root, or $SCCL_BENCH_DIR)."""
    root = os.environ.get("SCCL_BENCH_DIR") or Path(__file__).resolve().parents[1]
    return Path(root)


def _stamp_host(payload: dict) -> dict:
    """Attach host context so archived rows are never compared across hosts."""
    from repro.telemetry import host_context

    payload = dict(payload)
    payload["host"] = host_context()
    return payload


def _archive_bench(filename: str, payload: dict) -> None:
    """Append this run's flattened metrics to the performance archive.

    The snapshot file is overwritten every run; the archive keeps the
    trajectory, which is what ``repro perf regressions`` (the CI sentinel)
    judges the *next* run's snapshot against.  Metric names here and in
    the sentinel come from the same flattener, so they agree forever.
    """
    from repro.perf import flatten_bench_metrics
    from repro.telemetry import record_run

    record_run(
        "bench",
        name=Path(filename).stem,
        metrics={
            metric: value
            for metric, (value, _) in flatten_bench_metrics(payload).items()
        },
        extra={"file": filename},
    )


def write_bench_json(filename: str, payload: dict) -> Path:
    """Persist one benchmark's JSON artifact for CI to archive."""
    payload = _stamp_host(payload)
    path = bench_dir() / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _archive_bench(filename, payload)
    return path


def merge_bench_json(filename: str, key: str, payload: dict) -> Path:
    """Merge one section into a shared JSON artifact under ``key``.

    Several benchmarks contribute sections to the same file (e.g. the
    strategy and bounds ablations both land in ``BENCH_sweep.json``);
    merging keeps whichever sections the other tests already wrote this
    run.  A missing or corrupt file simply starts fresh.
    """
    path = bench_dir() / filename
    try:
        existing = json.loads(path.read_text())
        if not isinstance(existing, dict):
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing[key] = payload
    existing = _stamp_host(existing)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    _archive_bench(filename, existing)
    return path


def phase_totals(tracer) -> Dict[str, float]:
    """Aggregate per-phase timings from a telemetry ``Tracer``'s span forest.

    Every bench JSON should carry an encode/solve/verify split so a future
    perf regression can be attributed to the phase that caused it instead
    of showing up as an opaque wall-clock delta.  The tracer is the source
    of truth for the split (see README "Observability"): phase spans
    recorded inside pool workers are re-parented into the dispatching
    sweep span, so parallel and speculative runs report the same shape as
    the serial loop.  Cache replays are counted separately — their spans
    are zero-duration markers describing the original solve, not this run.
    """
    from repro.telemetry import iter_spans

    phases = {
        "encode_s": 0.0,
        "solve_s": 0.0,
        "verify_s": 0.0,
        "probes": 0,
        "cache_replays": 0,
    }
    # Family "extend" spans are incremental encoding work: charge to encode.
    span_to_phase = {
        "encode": "encode_s",
        "extend": "encode_s",
        "solve": "solve_s",
        "verify": "verify_s",
    }
    for span in iter_spans(tracer.roots()):
        phase = span_to_phase.get(span.name)
        if phase is not None:
            phases[phase] += span.duration_s
        elif span.name == "probe":
            if span.attrs.get("cache_hit"):
                phases["cache_replays"] += 1
            else:
                phases["probes"] += 1
    for key in ("encode_s", "solve_s", "verify_s"):
        phases[key] = round(phases[key], 4)
    return phases


@pytest.fixture(scope="session")
def dgx1_topology():
    from repro.topology import dgx1

    return dgx1()


@pytest.fixture(scope="session")
def amd_topology():
    from repro.topology import amd_z52

    return amd_z52()


def report(title: str, text: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")

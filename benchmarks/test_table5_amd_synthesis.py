"""Table 5: synthesized Gigabyte Z52 (8x AMD MI50) collectives.

Same structure as the Table 4 benchmark, on the AMD ring topology.  The AMD
instances are smaller (in-capacity 2 per GPU), so more of the paper's rows
run within the default budget.
"""

import pytest

from conftest import full_scale, report, synthesis_budget
from repro.core import allreduce_from_allgather, make_instance, pareto_synthesize, synthesize
from repro.evaluation import PAPER_TABLE5, format_table
from repro.topology import amd_z52

TOPOLOGY = amd_z52()

# (collective, C, S, R, expected_optimality, needs_full_scale)
TABLE5_ROWS = [
    ("Allgather", 1, 4, 4, "Latency", False),
    ("Allgather", 2, 7, 7, "Bandwidth", False),
    ("Allgather", 2, 4, 7, "Both", True),
    ("Broadcast", 2, 4, 4, "Latency", False),
    ("Broadcast", 4, 5, 5, "", False),
    ("Broadcast", 6, 6, 6, "", True),
    ("Gather", 1, 4, 4, "Latency", False),
    ("Gather", 2, 4, 7, "Both", True),
    ("Alltoall", 8, 4, 8, "Both", True),
]


def _row_id(row):
    collective, c, s, r, _opt, full = row
    suffix = "_full" if full else ""
    return f"{collective}_c{c}_s{s}_r{r}{suffix}"


@pytest.mark.parametrize("row", TABLE5_ROWS, ids=_row_id)
def test_table5_row(benchmark, row):
    collective, chunks, steps, rounds, optimality, needs_full = row
    if needs_full and not full_scale():
        pytest.skip("large instance; set SCCL_FULL=1 to run at paper scale")
    instance = make_instance(collective, TOPOLOGY, chunks, steps, rounds)

    def run():
        return synthesize(instance, time_limit=synthesis_budget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.is_unsat, f"paper row {row} must be satisfiable"
    if result.is_unknown:
        pytest.skip(f"time budget exhausted after {result.total_time:.0f}s (status unknown)")
    algorithm = result.algorithm
    algorithm.verify()
    assert algorithm.signature() == (chunks, steps, rounds)
    report(
        f"Table 5 row: {collective} ({chunks},{steps},{rounds}) {optimality}",
        f"synthesis time {result.total_time:.2f}s, "
        f"{result.encoding_stats['variables']} vars, {result.encoding_stats['clauses']} clauses",
    )


def test_table5_allreduce_rows_derive_from_allgather(benchmark):
    """Allreduce (8,8,8) latency row = Allgather (1,4,4) doubled."""

    def run():
        result = synthesize(
            make_instance("Allgather", TOPOLOGY, 1, 4, 4), time_limit=synthesis_budget()
        )
        assert result.is_sat
        allreduce = allreduce_from_allgather(result.algorithm)
        allreduce.verify()
        return allreduce

    allreduce = benchmark.pedantic(run, rounds=1, iterations=1)
    assert allreduce.signature() == (8, 8, 8)


def test_table5_pareto_enumeration_allgather_k0(benchmark):
    """Algorithm 1 on the AMD topology: (1,4,4) then (2,7,7) ends the enumeration."""
    if not full_scale():
        pytest.skip("full k=0 enumeration reaches the (2,7,7) instance; set SCCL_FULL=1")

    def run():
        return pareto_synthesize(
            "Allgather", TOPOLOGY, k=0, max_steps=7,
            time_limit_per_instance=synthesis_budget(),
        )

    frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table 5 (Allgather, k=0 enumeration)", format_table(frontier.table_rows()))
    signatures = [p.signature for p in frontier.points]
    assert signatures[0] == (1, 4, 4)
    assert (2, 7, 7) in signatures

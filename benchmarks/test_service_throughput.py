"""Planning-service throughput benchmark -> BENCH_service.json.

Measures the serving-layer quantities the ROADMAP's north star cares
about, on the quickstart instance (Allgather, 4-node ring):

* **cold burst** — 8 concurrent identical requests against an empty
  registry: exactly one backend solve, the rest coalesced (the PR's
  acceptance criterion, measured rather than asserted-only);
* **warm throughput** — a multi-threaded client mix of pinned and routed
  requests over a hot registry: requests/sec, coalescing ratio and cache
  hit rate.

The numbers land in ``BENCH_service.json`` next to the repo root (or
``$SCCL_BENCH_DIR``) so CI can archive the perf trajectory run over run.
Everything here must stay fast: this file runs inside the tier-1 suite.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine import AlgorithmCache
from repro.service import PlanRegistry, PlanRequest, PlanningService, SynthesisResolver

from conftest import report, write_bench_json

PINNED = PlanRequest("Allgather", "ring:4", chunks=1, steps=2, rounds=3)
ROUTED = PlanRequest("Allgather", "ring:4", size_bytes=1 << 20, synchrony=1)


def _make_service(tmp_path, name):
    registry = PlanRegistry(
        cache=AlgorithmCache(tmp_path / name / "algorithms"),
        routes_dir=tmp_path / name / "routes",
    )
    resolver = SynthesisResolver(registry)
    return PlanningService(registry, num_workers=4, resolver=resolver), resolver


def _broker_metrics(metrics) -> dict:
    """The Prometheus series a scraper would see for this window — recorded
    so BENCH_service.json and /v1/metrics can be cross-checked on one run."""
    return {
        "broker_enqueued": int(
            metrics.total("repro_broker_requests_total", outcome="enqueued")
        ),
        "broker_coalesced": int(
            metrics.total("repro_broker_requests_total", outcome="coalesced")
        ),
        "jobs_completed": int(
            metrics.total("repro_broker_jobs_total", outcome="completed")
        ),
        "resolver_rungs": {
            "synthesized": int(
                metrics.total("repro_resolver_rung_total", rung="synthesized")
            ),
            "cache": int(metrics.total("repro_resolver_rung_total", rung="cache")),
            "registry": int(metrics.total("repro_resolver_rung_total", rung="registry")),
        },
    }


def _cold_burst(tmp_path, metrics) -> dict:
    service, resolver = _make_service(tmp_path, "cold")
    with service:
        barrier = threading.Barrier(8)
        statuses = [None] * 8

        def caller(index):
            barrier.wait()
            statuses[index] = service.request(PINNED, timeout=120.0).status

        started = time.perf_counter()
        threads = [threading.Thread(target=caller, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)
        elapsed = time.perf_counter() - started
        broker = service.broker.stats()

    assert statuses == ["ok"] * 8
    assert resolver.stats()["solves"] <= 1
    row = {
        "concurrent_callers": 8,
        "backend_solves": resolver.stats()["solves"],
        "coalesced": broker["coalesced"],
        "coalescing_ratio": broker["coalescing_ratio"],
        "wall_s": round(elapsed, 4),
        "metrics": _broker_metrics(metrics),
    }
    # The registry and the broker's own counters must agree on coalescing.
    assert row["metrics"]["broker_coalesced"] == broker["coalesced"]
    return row


def _warm_throughput(tmp_path, metrics) -> dict:
    service, resolver = _make_service(tmp_path, "warm")
    requests_total = 400
    client_threads = 8
    with service:
        # Warm both paths once so the measured phase serves from registry.
        assert service.request(PINNED, timeout=120.0).ok
        assert service.request(ROUTED, timeout=120.0).ok

        workload = []
        for index in range(requests_total):
            if index % 2:
                workload.append(PINNED)
            else:
                # Routed requests across sizes: all served by one table.
                workload.append(
                    PlanRequest(
                        "Allgather", "ring:4",
                        size_bytes=1024 << (index % 16), synchrony=1,
                    )
                )

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=client_threads) as pool:
            responses = list(
                pool.map(lambda r: service.request(r, timeout=120.0), workload)
            )
        elapsed = time.perf_counter() - started

        broker = service.broker.stats()
        registry_stats = service.registry.stats()

    ok = sum(1 for r in responses if r.ok)
    assert ok == requests_total
    resolver_stats = resolver.stats()
    answered = resolver_stats["solves"] + resolver_stats["registry_hits"]
    assert int(
        metrics.total("repro_broker_requests_total", outcome="coalesced")
    ) == broker["coalesced"]
    return {
        "requests": requests_total,
        "client_threads": client_threads,
        "wall_s": round(elapsed, 4),
        "requests_per_sec": round(requests_total / elapsed, 1),
        "coalescing_ratio": round(broker["coalescing_ratio"], 4),
        "backend_solves": resolver_stats["solves"],
        "registry_hits": resolver_stats["registry_hits"],
        "cache_hit_rate": round(resolver_stats["registry_hits"] / answered, 4)
        if answered else 0.0,
        "route_hits": registry_stats["route_hits"],
        "metrics": _broker_metrics(metrics),
    }


def test_service_throughput(tmp_path):
    from repro.telemetry import Metrics, set_metrics

    # A fresh registry per sub-run so the recorded series describe exactly
    # this benchmark's window (the process-global registry accumulates).
    cold_metrics = Metrics()
    previous = set_metrics(cold_metrics)
    try:
        cold = _cold_burst(tmp_path, cold_metrics)
        warm_metrics = Metrics()
        set_metrics(warm_metrics)
        warm = _warm_throughput(tmp_path, warm_metrics)
    finally:
        set_metrics(previous)
    payload = {
        "benchmark": "planning_service_throughput",
        "instance": "Allgather on ring:4 (quickstart)",
        "cold_burst": cold,
        "warm": warm,
    }
    # write_bench_json stamps host context and appends this run's metrics to
    # the performance archive for the CI regression sentinel.
    output = write_bench_json("BENCH_service.json", payload)

    report(
        "BENCH_service: planning-service throughput",
        "\n".join(
            [
                f"cold burst : {cold['concurrent_callers']} callers -> "
                f"{cold['backend_solves']} solve(s), "
                f"{cold['coalesced']} coalesced ({cold['coalescing_ratio']:.0%})",
                f"warm       : {warm['requests']} requests in {warm['wall_s']}s "
                f"-> {warm['requests_per_sec']} req/s",
                f"hit rate   : {warm['cache_hit_rate']:.0%} served without solving "
                f"({warm['backend_solves']} solves, {warm['registry_hits']} hits, "
                f"coalescing {warm['coalescing_ratio']:.0%})",
                f"written to : {output}",
            ]
        ),
    )
    assert warm["requests_per_sec"] > 0

"""Figure 6: Allgather speedup over RCCL on the Gigabyte Z52 (8x AMD MI50).

Both paper series are synthesized: the latency-optimal (1,4,4) and the
bandwidth-optimal (2,7,7).  RCCL's baseline is itself a (2,7,7) ring, so the
expected shape is: (1,4,4) clearly faster for small inputs and slower for
large ones; (2,7,7) equivalent to the baseline at large sizes.
"""

import pytest

from conftest import report, synthesis_budget
from repro.evaluation import figure6_allgather_amd


@pytest.fixture(scope="module")
def figure6():
    result = figure6_allgather_amd(time_limit=synthesis_budget())
    report("Figure 6 (Allgather vs RCCL, Gigabyte Z52)", result.render())
    return result


def test_figure6_series_present(figure6):
    assert "(1,4,4)" in figure6.series, figure6.skipped
    assert "(2,7,7)" in figure6.series, figure6.skipped


def test_figure6_latency_optimal_wins_small_sizes(figure6):
    assert figure6.series["(1,4,4)"][0] > 1.2


def test_figure6_latency_optimal_loses_large_sizes(figure6):
    assert figure6.series["(1,4,4)"][-1] < 1.0


def test_figure6_bandwidth_optimal_matches_rccl_at_large_sizes(figure6):
    # RCCL's ring is already bandwidth-optimal on this topology; the
    # synthesized (2,7,7) should be within a few percent of it.
    assert figure6.series["(2,7,7)"][-1] == pytest.approx(1.0, rel=0.1)


def test_figure6_crossover_shape(figure6):
    assert figure6.crossover_consistent()


def test_figure6_simulation_benchmark(benchmark, figure6):
    from repro.baselines import rccl_allgather
    from repro.runtime import Simulator, lower
    from repro.topology import amd_z52

    topology = amd_z52()
    program = lower(rccl_allgather(topology))
    simulator = Simulator(topology)

    def sweep():
        return [simulator.simulate(program, size).total_time_s for size in figure6.sizes]

    assert all(t > 0 for t in benchmark(sweep))

"""Figure 5: Allreduce speedup over NCCL on the DGX-1 across input sizes.

Allreduce algorithms are derived from synthesized Allgathers (Reducescatter
+ Allgather, Section 3.5) and compared against NCCL's 6-ring Allreduce
(48, 14, 14).  Shape checks follow the paper: the 1-chunk (latency-optimal)
algorithm wins for small inputs, NCCL competes in the middle range, and the
bandwidth-optimal schedule tracks NCCL closely at large sizes.
"""

import pytest

from conftest import full_scale, report, synthesis_budget
from repro.evaluation import figure5_allreduce_dgx1

DEFAULT_POINTS = [(1, 2, 2), (4, 5, 5)]
FULL_POINTS = [(1, 2, 2), (4, 5, 5), (5, 6, 6), (6, 7, 7)]


@pytest.fixture(scope="module")
def figure5():
    points = FULL_POINTS if full_scale() else DEFAULT_POINTS
    result = figure5_allreduce_dgx1(points=points, time_limit=synthesis_budget())
    report("Figure 5 (Allreduce vs NCCL, DGX-1)", result.render())
    return result


def test_figure5_series_present(figure5):
    assert "(1,2,2)" in figure5.series, figure5.skipped
    assert "(4,5,5)" in figure5.series, figure5.skipped


def test_figure5_one_chunk_algorithm_wins_small_sizes(figure5):
    assert figure5.series["(1,2,2)"][0] > 1.0


def test_figure5_one_chunk_algorithm_loses_large_sizes(figure5):
    assert figure5.series["(1,2,2)"][-1] < 1.0


def test_figure5_bandwidth_heavy_series_track_nccl_at_large_sizes(figure5):
    label = "(6,7,7)" if "(6,7,7)" in figure5.series else "(4,5,5)"
    assert figure5.series[label][-1] > 0.8


def test_figure5_derivation_benchmark(benchmark):
    """Benchmark the Reducescatter+Allgather composition used by every series."""
    from repro.core import allreduce_from_allgather, make_instance, synthesize
    from repro.topology import dgx1

    allgather = synthesize(
        make_instance("Allgather", dgx1(), 1, 2, 2), time_limit=synthesis_budget()
    ).algorithm

    def derive():
        allreduce = allreduce_from_allgather(allgather)
        allreduce.verify()
        return allreduce

    allreduce = benchmark(derive)
    assert allreduce.signature() == (8, 4, 4)

"""Benchmarks of the SAT/SMT-lite substrate itself.

These measure the components the synthesis pipeline spends its time in:
CNF encoding of a DGX-1 instance, CDCL solving of structured SAT/UNSAT
formulas, and end-to-end synthesis of the cheap Table 4 rows (which double
as a regression guard on solver performance).
"""

import pytest

from conftest import report
from repro.core import ScclEncoding, make_instance, synthesize
from repro.solver import CNF, SATSolver, SolveResult
from repro.topology import dgx1, ring


def pigeonhole(holes: int) -> CNF:
    cnf = CNF()
    var = {(p, h): cnf.new_var() for p in range(holes + 1) for h in range(holes)}
    for p in range(holes + 1):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


def test_encode_dgx1_allgather(benchmark):
    instance = make_instance("Allgather", dgx1(), 3, 4, 4)

    def run():
        encoder = ScclEncoding(instance)
        encoder.encode()
        return encoder

    encoder = benchmark(run)
    report(
        "Encoding throughput (DGX-1 Allgather C=3 S=4)",
        f"{encoder.stats.variables} vars, {encoder.stats.clauses} clauses",
    )


@pytest.mark.parametrize("holes", [5, 6])
def test_cdcl_unsat_pigeonhole(benchmark, holes):
    def run():
        solver = SATSolver()
        solver.add_cnf(pigeonhole(holes))
        return solver.solve()

    assert benchmark(run) is SolveResult.UNSAT


def test_cdcl_structured_sat(benchmark):
    instance = make_instance("Allgather", ring(6), 2, 5, 5)
    encoder = ScclEncoding(instance)
    ctx = encoder.encode()

    def run():
        solver = SATSolver()
        solver.add_cnf(ctx.cnf)
        return solver.solve()

    assert benchmark(run) is SolveResult.SAT


@pytest.mark.parametrize(
    "chunks,steps,rounds",
    [(1, 2, 2), (2, 2, 3), (2, 3, 3)],
    ids=lambda v: str(v),
)
def test_synthesis_cheap_dgx1_rows(benchmark, chunks, steps, rounds):
    instance = make_instance("Allgather", dgx1(), chunks, steps, rounds)

    def run():
        return synthesize(instance)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_sat

"""Benchmarks of the SAT/SMT-lite substrate itself.

These measure the components the synthesis pipeline spends its time in:
CNF encoding of a DGX-1 instance, CDCL solving of structured SAT/UNSAT
formulas, and end-to-end synthesis of the cheap Table 4 rows (which double
as a regression guard on solver performance).
"""

import pytest

from conftest import report
from repro.core import ScclEncoding, make_instance, synthesize
from repro.engine import IncrementalDispatcher, SerialDispatcher, SweepRequest
from repro.solver import CNF, SATSolver, SolveResult
from repro.topology import dgx1, ring


def pigeonhole(holes: int) -> CNF:
    cnf = CNF()
    var = {(p, h): cnf.new_var() for p in range(holes + 1) for h in range(holes)}
    for p in range(holes + 1):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


def test_encode_dgx1_allgather(benchmark):
    instance = make_instance("Allgather", dgx1(), 3, 4, 4)

    def run():
        encoder = ScclEncoding(instance)
        encoder.encode()
        return encoder

    encoder = benchmark(run)
    report(
        "Encoding throughput (DGX-1 Allgather C=3 S=4)",
        f"{encoder.stats.variables} vars, {encoder.stats.clauses} clauses",
    )


@pytest.mark.parametrize("holes", [5, 6])
def test_cdcl_unsat_pigeonhole(benchmark, holes):
    def run():
        solver = SATSolver()
        solver.add_cnf(pigeonhole(holes))
        return solver.solve()

    assert benchmark(run) is SolveResult.UNSAT


def test_cdcl_structured_sat(benchmark):
    instance = make_instance("Allgather", ring(6), 2, 5, 5)
    encoder = ScclEncoding(instance)
    ctx = encoder.encode()

    def run():
        solver = SATSolver()
        solver.add_cnf(ctx.cnf)
        return solver.solve()

    assert benchmark(run) is SolveResult.SAT


@pytest.mark.parametrize(
    "chunks,steps,rounds",
    [(1, 2, 2), (2, 2, 3), (2, 3, 3)],
    ids=lambda v: str(v),
)
def test_synthesis_cheap_dgx1_rows(benchmark, chunks, steps, rounds):
    instance = make_instance("Allgather", dgx1(), chunks, steps, rounds)

    def run():
        return synthesize(instance)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_sat


# The exhaustive fixed-S candidate sweep used by the incremental-vs-cold
# ablation: every (R, C) for S=2, k=2 on the DGX-1 capped at C<=2, probed to
# completion (no early stop) so both strategies do the same logical work.
ABLATION_SWEEP = SweepRequest(
    collective="Allgather",
    topology=dgx1(),
    steps=2,
    candidates=((3, 2), (2, 1), (4, 2), (3, 1), (4, 1)),
    stop_at_first_sat=False,
)


def test_incremental_vs_cold_sweep(benchmark):
    """Ablation: assumption-based incremental probing vs. cold re-encoding.

    The serial baseline encodes once per candidate; the incremental
    dispatcher encodes once per distinct chunk count and probes rounds
    budgets through selector assumptions on a persistent solver.
    """
    cold = SerialDispatcher().sweep(ABLATION_SWEEP)

    incremental = benchmark.pedantic(
        lambda: IncrementalDispatcher().sweep(ABLATION_SWEEP), rounds=1, iterations=1
    )

    assert [r.status for r in incremental.results] == [r.status for r in cold.results]
    assert incremental.stats.encode_calls < cold.stats.encode_calls
    cold_time = sum(r.total_time for r in cold.results)
    incr_time = sum(r.total_time for r in incremental.results)
    report(
        "Incremental vs cold candidate sweep (DGX-1 Allgather S=2, 5 candidates)",
        f"cold:        {cold.stats.encode_calls} encodes, "
        f"{cold.stats.solver_calls} solver calls, {cold_time:.2f}s\n"
        f"incremental: {incremental.stats.encode_calls} encodes, "
        f"{incremental.stats.solver_calls} solver calls, {incr_time:.2f}s",
    )

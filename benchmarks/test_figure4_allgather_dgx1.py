"""Figure 4: Allgather speedup over NCCL on the DGX-1 across input sizes.

The default run plots the series whose synthesis fits the benchmark budget
((1,2,2), (2,2,3), (5,6,6) plus the memcpy-lowered variant); ``SCCL_FULL=1``
adds the bandwidth-optimal (6,7,7) series of the paper.  The shape checks
mirror the paper's qualitative claims: the latency-optimal algorithm wins at
small sizes, ring-equivalent bandwidth-optimal schedules converge to ~1x at
large sizes, and the memcpy lowering only pays off for large buffers.
"""

import pytest

from conftest import full_scale, report, synthesis_budget
from repro.evaluation import figure4_allgather_dgx1

DEFAULT_POINTS = [(1, 2, 2), (2, 2, 3), (5, 6, 6)]
FULL_POINTS = [(1, 2, 2), (2, 2, 3), (5, 6, 6), (6, 7, 7)]


@pytest.fixture(scope="module")
def figure4():
    points = FULL_POINTS if full_scale() else DEFAULT_POINTS
    result = figure4_allgather_dgx1(points=points, time_limit=synthesis_budget())
    report("Figure 4 (Allgather vs NCCL, DGX-1)", result.render())
    return result


def test_figure4_series_present(figure4):
    assert "(1,2,2)" in figure4.series, figure4.skipped
    assert "(2,2,3)" in figure4.series, figure4.skipped
    assert any("cudamemcpy" in label for label in figure4.series)


def test_figure4_latency_optimal_wins_small_sizes(figure4):
    # Paper: SCCL's 2-step algorithms are up to ~2x faster at small sizes.
    assert figure4.series["(1,2,2)"][0] > 1.2
    assert figure4.series["(2,2,3)"][0] > 1.2


def test_figure4_ring_like_series_converge_at_large_sizes(figure4):
    # Bandwidth cost 6/5 (5,6,6) or 7/6 (6,7,7) vs NCCL's 7/6: within ~15%
    # of NCCL for the largest buffers.
    label = "(6,7,7)" if "(6,7,7)" in figure4.series else "(5,6,6)"
    assert figure4.series[label][-1] > 0.85


def test_figure4_latency_optimal_loses_at_large_sizes(figure4):
    # The (1,2,2) algorithm moves 2x the bytes per link: it must fall below
    # the NCCL ring for the biggest inputs, as in the paper.
    assert figure4.series["(1,2,2)"][-1] < 1.0


def test_figure4_memcpy_lowering_tradeoff(figure4):
    memcpy_label = next(label for label in figure4.series if "cudamemcpy" in label)
    base_label = memcpy_label.replace(" cudamemcpy", "")
    memcpy = figure4.series[memcpy_label]
    fused = figure4.series[base_label]
    # Higher per-step cost hurts at 1 KiB, DMA bandwidth helps at 256 MiB.
    assert memcpy[0] < fused[0]
    assert memcpy[-1] >= fused[-1] * 0.99


def test_figure4_benchmark_simulation(benchmark, figure4):
    """Benchmark the simulation sweep itself (synthesis excluded)."""
    from repro.baselines import nccl_allgather
    from repro.runtime import Simulator, lower
    from repro.topology import dgx1

    topology = dgx1()
    program = lower(nccl_allgather(topology))
    simulator = Simulator(topology)

    def sweep():
        return [simulator.simulate(program, size).total_time_s for size in figure4.sizes]

    times = benchmark(sweep)
    assert all(t > 0 for t in times)

"""Order-encoded bounded integer variables.

The SCCL encoding uses small bounded integers: ``time[c, n]`` ranges over
``0 .. S+1`` (where ``S+1`` stands for "the chunk never arrives within the
algorithm") and the per-step round counts ``r_s`` range over ``0 .. R``.

An :class:`IntVar` with domain ``[lo, hi]`` is represented with the order
encoding: Boolean variables ``ge[v]`` for ``v`` in ``lo+1 .. hi`` meaning
``x >= v``, chained by the monotonicity clauses ``ge[v+1] -> ge[v]``.  The
order encoding is the natural fit for the constraints in the paper, which
are all threshold comparisons (``time <= S``, ``time_src < time_dst``,
``time = s``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .cnf import CNF


class IntVar:
    """A bounded integer in the order encoding.

    Parameters
    ----------
    cnf:
        Clause database to allocate Boolean variables in.
    lo, hi:
        Inclusive domain bounds.
    true_lit:
        A literal that is constrained to be true in the surrounding
        formula; used to return constant comparisons as real literals so
        that callers never need to special-case trivially true/false
        comparisons.
    name:
        Optional name for debugging / model dumps.
    """

    __slots__ = ("cnf", "lo", "hi", "name", "_true", "_ge")

    def __init__(self, cnf: CNF, lo: int, hi: int, true_lit: int, name: str = "") -> None:
        if lo > hi:
            raise ValueError(f"empty domain [{lo}, {hi}] for IntVar {name!r}")
        self.cnf = cnf
        self.lo = lo
        self.hi = hi
        self.name = name or f"int[{lo}..{hi}]"
        self._true = true_lit
        from .encoders import _fast_add

        # _ge[v] is the Boolean variable for x >= v, for v in lo+1..hi
        self._ge: Dict[int, int] = {}
        add = _fast_add(cnf)
        prev = None
        for v in range(lo + 1, hi + 1):
            var = cnf.new_var()
            self._ge[v] = var
            if prev is not None:
                # x >= v implies x >= v-1 (fresh variables: pre-normalized)
                add([-var, prev])
            prev = var

    # ------------------------------------------------------------------
    # Comparison literals
    # ------------------------------------------------------------------
    def ge_lit(self, v: int) -> int:
        """Literal that is true iff ``x >= v``."""
        if v <= self.lo:
            return self._true
        if v > self.hi:
            return -self._true
        return self._ge[v]

    def le_lit(self, v: int) -> int:
        """Literal that is true iff ``x <= v``."""
        return -self.ge_lit(v + 1)

    def gt_lit(self, v: int) -> int:
        return self.ge_lit(v + 1)

    def lt_lit(self, v: int) -> int:
        return -self.ge_lit(v)

    def eq_lits(self, v: int) -> List[int]:
        """Literals whose conjunction is ``x == v``.

        Returns one or two literals (``x >= v`` and ``x <= v``), already
        simplified against the domain bounds.
        """
        lits = []
        ge = self.ge_lit(v)
        le = self.le_lit(v)
        if ge != self._true:
            lits.append(ge)
        if le != self._true:
            lits.append(le)
        if not lits:
            lits.append(self._true)
        return lits

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def fix(self, v: int) -> None:
        """Constrain ``x == v``."""
        if v < self.lo or v > self.hi:
            # Out of domain: unsatisfiable.
            self.cnf.add_clause([self._true])
            self.cnf.add_clause([-self._true])
            return
        for lit in self.eq_lits(v):
            self.cnf.add_clause([lit])

    def require_ge(self, v: int) -> None:
        self.cnf.add_clause([self.ge_lit(v)])

    def require_le(self, v: int) -> None:
        self.cnf.add_clause([self.le_lit(v)])

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def value(self, model: Dict[int, bool]) -> int:
        """Decode this variable's value from a SAT model."""
        value = self.lo
        for v in range(self.lo + 1, self.hi + 1):
            if model.get(self._ge[v], False):
                value = v
            else:
                break
        return value

    def booleans(self) -> List[int]:
        """Return the underlying order-encoding Boolean variables."""
        return [self._ge[v] for v in range(self.lo + 1, self.hi + 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntVar({self.name}, [{self.lo}..{self.hi}])"


def unary_sum_equals(cnf: CNF, variables: Sequence[IntVar], total: int) -> None:
    """Constrain ``sum(variables) == total`` over order-encoded integers.

    Each variable contributes its order-encoding Booleans (each true Boolean
    adds one above the variable's lower bound), so the sum over all those
    Booleans must equal ``total - sum(lo)``.  Delegates to the cardinality
    encoders.
    """
    from . import encoders

    offset = sum(v.lo for v in variables)
    residual = total - offset
    bools: List[int] = []
    for var in variables:
        bools.extend(var.booleans())
    if residual < 0 or residual > len(bools):
        # Impossible total.
        fresh = cnf.new_var()
        cnf.add_clause([fresh])
        cnf.add_clause([-fresh])
        return
    encoders.exactly_k(cnf, bools, residual)

"""CNF formula representation.

This module provides the low-level clause database used by the CDCL SAT
solver in :mod:`repro.solver.sat`.  Literals follow the DIMACS convention:
variables are positive integers ``1..n`` and a literal is either ``v``
(positive occurrence) or ``-v`` (negated occurrence).

The solver-facing classes are intentionally small: a :class:`CNF` is just a
growable list of clauses plus a variable counter, with helpers for creating
fresh variables and reading/writing DIMACS files.  All higher level
constructs (cardinality constraints, pseudo-Boolean sums, bounded integers)
are compiled down to this representation by :mod:`repro.solver.encoders` and
:mod:`repro.solver.intvar`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence


class CNFError(Exception):
    """Raised for malformed clauses or literals."""


def lit_var(lit: int) -> int:
    """Return the variable of a literal (``|lit|``)."""
    return lit if lit > 0 else -lit


def lit_sign(lit: int) -> bool:
    """Return ``True`` for a positive literal, ``False`` for a negated one."""
    return lit > 0


def lit_neg(lit: int) -> int:
    """Return the negation of a literal."""
    return -lit


@dataclass
class CNF:
    """A growable CNF formula.

    Attributes
    ----------
    num_vars:
        Highest variable index allocated so far.
    clauses:
        List of clauses; each clause is a list of non-zero integer literals.
    """

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them as a list."""
        if count < 0:
            raise CNFError(f"cannot allocate a negative number of variables: {count}")
        start = self.num_vars + 1
        self.num_vars += count
        return list(range(start, self.num_vars + 1))

    def ensure_var(self, var: int) -> None:
        """Make sure ``var`` is within the allocated variable range."""
        if var <= 0:
            raise CNFError(f"variables must be positive, got {var}")
        if var > self.num_vars:
            self.num_vars = var

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause given as an iterable of literals.

        Duplicate literals are removed; tautological clauses (containing both
        ``v`` and ``-v``) are silently dropped since they are always
        satisfied.
        """
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise CNFError("literal 0 is not allowed in a clause")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            self.ensure_var(lit_var(lit))
        self.clauses.append(clause)

    def add_clause_fast(self, lits: List[int]) -> None:
        """Append a pre-normalized clause, skipping the per-literal scans.

        The caller guarantees that every literal's variable is already
        allocated in this formula and that the clause is worth keeping as
        given — no tautology check, no duplicate removal, no ``ensure_var``.
        This is the hot path for machine-generated clauses (the synthesis
        encoder and the cardinality encoders), whose clauses are built from
        freshly allocated variables and are normalized by construction;
        :meth:`add_clause` remains the safe door for everything else
        (DIMACS parsing, hand-written constraints).  The list is stored
        directly, so callers must not mutate it afterwards.
        """
        self.clauses.append(lits)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[List[int]]:
        return iter(self.clauses)

    # ------------------------------------------------------------------
    # Statistics & serialization
    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def stats(self) -> dict:
        """Return simple size statistics for reporting."""
        literal_count = sum(len(c) for c in self.clauses)
        return {
            "variables": self.num_vars,
            "clauses": len(self.clauses),
            "literals": literal_count,
        }

    def to_dimacs(self) -> str:
        """Serialize the formula in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string into a :class:`CNF`."""
        cnf = cls()
        declared_vars = 0
        current: List[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] != "cnf":
                    raise CNFError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(current)
                    current = []
                else:
                    current.append(lit)
        if current:
            raise CNFError("last clause is not terminated by 0")
        if declared_vars > cnf.num_vars:
            cnf.num_vars = declared_vars
        return cnf


def clause_is_satisfied(clause: Sequence[int], assignment: dict) -> bool:
    """Check a clause against a ``{var: bool}`` assignment.

    Unassigned variables count as not satisfying the clause.  Used by tests
    and by the model validator in :mod:`repro.solver.sat`.
    """
    for lit in clause:
        value = assignment.get(lit_var(lit))
        if value is None:
            continue
        if value == lit_sign(lit):
            return True
    return False

"""SAT / SMT-lite solving substrate (the Z3 substitute).

Public surface:

* :class:`~repro.solver.cnf.CNF` — clause database with DIMACS I/O.
* :class:`~repro.solver.sat.SATSolver` — CDCL SAT solver.
* :func:`~repro.solver.sat.solve_cnf` — one-shot solving helper.
* :class:`~repro.solver.smt.SmtLite` — finite-domain constraint facade used
  by the synthesis encoder (Booleans, bounded integers, cardinality and
  pseudo-Boolean constraints).
* :mod:`~repro.solver.encoders` — cardinality / pseudo-Boolean encoders.
* :class:`~repro.solver.intvar.IntVar` — order-encoded bounded integers.
"""

from .cnf import CNF, CNFError, clause_is_satisfied, lit_neg, lit_sign, lit_var
from .intvar import IntVar, unary_sum_equals
from .sat import SATSolver, SolveResult, SolverStats, luby, solve_cnf
from .smt import CheckOutcome, SmtLite
from . import encoders

__all__ = [
    "CNF",
    "CNFError",
    "CheckOutcome",
    "IntVar",
    "SATSolver",
    "SmtLite",
    "SolveResult",
    "SolverStats",
    "clause_is_satisfied",
    "encoders",
    "lit_neg",
    "lit_sign",
    "lit_var",
    "luby",
    "solve_cnf",
    "unary_sum_equals",
]

"""A small SMT-style facade over the SAT solver.

:class:`SmtLite` is the interface the synthesis encoder programs against.
It plays the role Z3 plays in the paper: the encoder creates Boolean and
bounded-integer variables, asserts clauses and cardinality / pseudo-Boolean
constraints, calls :meth:`SmtLite.check`, and reads values back from the
model.  Everything is compiled eagerly to CNF and discharged to the CDCL
solver in :mod:`repro.solver.sat`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from . import encoders
from .cnf import CNF
from .intvar import IntVar
from .sat import SATSolver, SolveResult


@dataclass
class CheckOutcome:
    """Result of a :meth:`SmtLite.check` call."""

    result: SolveResult
    model: Optional[Dict[int, bool]]
    encode_time: float
    solve_time: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.result is SolveResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.result is SolveResult.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.result is SolveResult.UNKNOWN

    @property
    def total_time(self) -> float:
        return self.encode_time + self.solve_time


class SmtLite:
    """Finite-domain constraint context compiled to CNF.

    The API mirrors the handful of Z3 features the SCCL encoding needs:
    Boolean variables, bounded integers, implications, cardinality sums and
    pseudo-Boolean comparisons.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.cnf = CNF()
        self._creation_time = time.monotonic()
        self._encode_time_accum = 0.0
        # A dedicated always-true variable lets integer comparisons against
        # domain bounds return honest literals.
        self._true = self.cnf.new_var()
        self.cnf.add_clause([self._true])
        self._bool_names: Dict[int, str] = {}
        self._int_vars: List[IntVar] = []

    # ------------------------------------------------------------------
    # Variable creation
    # ------------------------------------------------------------------
    @property
    def true_lit(self) -> int:
        """A literal constrained to be true."""
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def new_bool(self, name: str = "") -> int:
        """Create a fresh Boolean variable; returns its positive literal."""
        var = self.cnf.new_var()
        if name:
            self._bool_names[var] = name
        return var

    def new_int(self, lo: int, hi: int, name: str = "") -> IntVar:
        """Create an order-encoded integer with inclusive domain ``[lo, hi]``."""
        iv = IntVar(self.cnf, lo, hi, self._true, name=name)
        self._int_vars.append(iv)
        return iv

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_clause(self, lits: Iterable[int]) -> None:
        self.cnf.add_clause(lits)

    def add_clause_fast(self, lits: List[int]) -> None:
        """Pre-normalized clause fast path (see :meth:`CNF.add_clause_fast`)."""
        self.cnf.add_clause_fast(lits)

    def add_unit(self, lit: int) -> None:
        self.cnf.add_clause([lit])

    def add_implies(self, antecedents: Sequence[int], consequent: int) -> None:
        """``and(antecedents) -> consequent``."""
        self.cnf.add_clause([-a for a in antecedents] + [consequent])

    def add_iff(self, a: int, b: int) -> None:
        self.cnf.add_clause([-a, b])
        self.cnf.add_clause([a, -b])

    def at_most_one(self, lits: Sequence[int], method: str = "auto") -> None:
        encoders.at_most_one(self.cnf, lits, method=method)

    def exactly_one(self, lits: Sequence[int], method: str = "auto") -> None:
        encoders.exactly_one(self.cnf, lits, method=method)

    def at_most_k(self, lits: Sequence[int], k: int, method: str = "auto") -> None:
        encoders.at_most_k(self.cnf, lits, k, method=method)

    def at_least_k(self, lits: Sequence[int], k: int) -> None:
        encoders.at_least_k(self.cnf, lits, k)

    def exactly_k(self, lits: Sequence[int], k: int) -> None:
        encoders.exactly_k(self.cnf, lits, k)

    def totalizer(self, lits: Sequence[int], bound: Optional[int] = None) -> List[int]:
        return encoders.totalizer(self.cnf, lits, bound=bound)

    def pseudo_boolean_leq(
        self, lits: Sequence[int], weights: Sequence[int], bound: int
    ) -> None:
        encoders.pseudo_boolean_leq(self.cnf, lits, weights, bound)

    def pseudo_boolean_eq(
        self, lits: Sequence[int], weights: Sequence[int], bound: int
    ) -> None:
        encoders.pseudo_boolean_eq(self.cnf, lits, weights, bound)

    def conjunction_implies(self, antecedents: Sequence[int], consequent_lits: Sequence[int]) -> None:
        """``and(antecedents) -> or(consequent_lits)``."""
        self.cnf.add_clause([-a for a in antecedents] + list(consequent_lits))

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def check(
        self,
        *,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> CheckOutcome:
        """Discharge the accumulated constraints to the CDCL solver."""
        encode_time = time.monotonic() - self._creation_time - self._encode_time_accum
        self._encode_time_accum += encode_time
        solver = SATSolver()
        start = time.monotonic()
        ok = solver.add_cnf(self.cnf)
        if not ok:
            solve_time = time.monotonic() - start
            return CheckOutcome(SolveResult.UNSAT, None, encode_time, solve_time, solver.stats.as_dict())
        result = solver.solve(
            assumptions, conflict_limit=conflict_limit, time_limit=time_limit
        )
        solve_time = time.monotonic() - start
        model = solver.model() if result is SolveResult.SAT else None
        return CheckOutcome(result, model, encode_time, solve_time, solver.stats.as_dict())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return self.cnf.stats()

    @staticmethod
    def bool_value(model: Dict[int, bool], lit: int) -> bool:
        value = model.get(abs(lit), False)
        return value if lit > 0 else not value

    @staticmethod
    def int_value(model: Dict[int, bool], var: IntVar) -> int:
        return var.value(model)

"""CNF encoders for cardinality and pseudo-Boolean constraints.

The SCCL synthesis constraints (Section 3.4 of the paper) need three kinds
of non-clausal building blocks:

* *exactly-one* over the possible senders of a chunk (constraint C3),
* *at-most-k* counts of sends on a link per step (constraint C5), and
* linear equalities over small bounded integers (constraint C6, and
  ``R = sum(r_s)``).

This module provides standard encodings of those building blocks:

* pairwise and commander at-most-one,
* the sequential (totalizer-free) at-most-k counter of Sinz (2005),
* a totalizer encoder producing full unary count outputs, which the SCCL
  encoding uses to express ``count <= b * r_s`` with a *variable* ``r_s``,
* a weighted pseudo-Boolean (<=) encoder via a sequential weighted counter.

All functions take a :class:`~repro.solver.cnf.CNF` (or anything exposing
``new_var``/``add_clause``) and mutate it in place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class EncodingError(Exception):
    """Raised when an encoder receives inconsistent arguments."""


def _fast_add(cnf):
    """The pre-normalized clause fast path when the database offers one.

    Every clause the encoders below emit mixes caller literals (already
    allocated in ``cnf``) with freshly created auxiliary variables, so the
    tautology/duplicate scan and ``ensure_var`` bookkeeping of
    ``add_clause`` are pure overhead here — and they dominate encode time
    on large instances.  Dropping the scan never changes semantics: a
    duplicated or tautological input literal only makes the emitted clause
    redundant, not wrong.
    """
    return getattr(cnf, "add_clause_fast", None) or cnf.add_clause


# ----------------------------------------------------------------------
# At-most-one / exactly-one
# ----------------------------------------------------------------------
def at_most_one_pairwise(cnf, lits: Sequence[int]) -> None:
    """Pairwise (binomial) AMO: O(n^2) binary clauses, no auxiliary variables."""
    add = _fast_add(cnf)
    n = len(lits)
    for i in range(n):
        for j in range(i + 1, n):
            add([-lits[i], -lits[j]])


def at_most_one_commander(cnf, lits: Sequence[int], group_size: int = 4) -> None:
    """Commander-variable AMO encoding.

    Splits the literals into groups of ``group_size``, adds a commander
    variable per group, and recursively constrains the commanders.  Uses
    O(n) clauses and O(n / group_size) auxiliary variables.
    """
    lits = list(lits)
    if len(lits) <= group_size + 1:
        at_most_one_pairwise(cnf, lits)
        return
    add = _fast_add(cnf)
    commanders: List[int] = []
    for start in range(0, len(lits), group_size):
        group = lits[start : start + group_size]
        commander = cnf.new_var()
        commanders.append(commander)
        # commander is true if any literal in the group is true
        for lit in group:
            add([-lit, commander])
        # at most one within the group
        at_most_one_pairwise(cnf, group)
    at_most_one_commander(cnf, commanders, group_size)


def at_most_one(cnf, lits: Sequence[int], method: str = "auto") -> None:
    """Dispatching AMO encoder.

    ``method`` is one of ``"pairwise"``, ``"commander"`` or ``"auto"`` (use
    pairwise for small inputs, commander otherwise).
    """
    lits = list(lits)
    if len(lits) <= 1:
        return
    if method == "pairwise" or (method == "auto" and len(lits) <= 6):
        at_most_one_pairwise(cnf, lits)
    elif method == "commander" or method == "auto":
        at_most_one_commander(cnf, lits)
    else:
        raise EncodingError(f"unknown at-most-one method {method!r}")


def at_least_one(cnf, lits: Sequence[int]) -> None:
    """ALO is a single clause; an empty input is unsatisfiable by convention."""
    cnf.add_clause(list(lits))


def exactly_one(cnf, lits: Sequence[int], method: str = "auto") -> None:
    """Exactly-one = at-least-one + at-most-one."""
    at_least_one(cnf, lits)
    at_most_one(cnf, lits, method=method)


# ----------------------------------------------------------------------
# At-most-k via sequential counter (Sinz encoding)
# ----------------------------------------------------------------------
def at_most_k_sequential(cnf, lits: Sequence[int], k: int) -> None:
    """Sinz sequential counter enforcing ``sum(lits) <= k``.

    Uses ``n * k`` auxiliary variables and ``O(n * k)`` clauses.
    """
    lits = list(lits)
    n = len(lits)
    if k < 0:
        raise EncodingError("at_most_k with negative bound")
    if k == 0:
        for lit in lits:
            cnf.add_clause([-lit])
        return
    if n <= k:
        return
    add = _fast_add(cnf)
    # s[i][j]: among lits[0..i] at least j+1 are true (j in 0..k-1)
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    add([-lits[0], s[0][0]])
    for j in range(1, k):
        add([-s[0][j]])
    for i in range(1, n):
        add([-lits[i], s[i][0]])
        add([-s[i - 1][0], s[i][0]])
        for j in range(1, k):
            add([-lits[i], -s[i - 1][j - 1], s[i][j]])
            add([-s[i - 1][j], s[i][j]])
        add([-lits[i], -s[i - 1][k - 1]])


def at_most_k(cnf, lits: Sequence[int], k: int, method: str = "auto") -> None:
    """Dispatching at-most-k encoder."""
    lits = list(lits)
    if k >= len(lits):
        return
    if k == 1 and (method == "auto" or method == "pairwise"):
        at_most_one(cnf, lits)
        return
    if method in ("auto", "sequential"):
        at_most_k_sequential(cnf, lits, k)
    elif method == "totalizer":
        outputs = totalizer(cnf, lits, bound=k + 1)
        if len(outputs) > k:
            cnf.add_clause([-outputs[k]])
    else:
        raise EncodingError(f"unknown at-most-k method {method!r}")


def at_least_k(cnf, lits: Sequence[int], k: int) -> None:
    """``sum(lits) >= k`` via at-most on the negations."""
    lits = list(lits)
    if k <= 0:
        return
    if k > len(lits):
        # Unsatisfiable; add an empty-equivalent pair of clauses on a fresh var.
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        return
    at_most_k(cnf, [-lit for lit in lits], len(lits) - k)


def exactly_k(cnf, lits: Sequence[int], k: int) -> None:
    """``sum(lits) == k``."""
    at_most_k(cnf, lits, k)
    at_least_k(cnf, lits, k)


# ----------------------------------------------------------------------
# Totalizer: full unary output counts
# ----------------------------------------------------------------------
def totalizer(cnf, lits: Sequence[int], bound: Optional[int] = None) -> List[int]:
    """Build a totalizer over ``lits`` and return its unary outputs.

    The returned list ``out`` satisfies ``out[i]`` is true iff at least
    ``i + 1`` of the input literals are true (for ``i < bound``).  Counting
    is truncated at ``bound`` outputs (defaults to ``len(lits)``), which is
    what the SCCL bandwidth constraint needs: it only ever compares the
    count against thresholds up to ``b * R``.

    Only the "if at least i+1 inputs then out[i]" direction is encoded,
    which is sufficient (and standard) for upper-bound constraints where
    the outputs appear negatively.
    """
    lits = list(lits)
    if bound is None:
        bound = len(lits)
    bound = max(0, min(bound, len(lits)))
    add = _fast_add(cnf)

    def build(sub: List[int]) -> List[int]:
        if len(sub) <= 1:
            return list(sub)
        mid = len(sub) // 2
        left = build(sub[:mid])
        right = build(sub[mid:])
        width = min(bound, len(left) + len(right))
        outputs = [cnf.new_var() for _ in range(width)]
        # sum_left >= a and sum_right >= b implies sum >= a + b
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                total = a + b
                if total == 0 or total > width:
                    continue
                clause = [outputs[total - 1]]
                if a > 0:
                    clause.append(-left[a - 1])
                if b > 0:
                    clause.append(-right[b - 1])
                add(clause)
        return outputs

    if bound == 0 or not lits:
        return []
    return build(lits)


# ----------------------------------------------------------------------
# Weighted pseudo-Boolean (<=) via sequential weighted counter
# ----------------------------------------------------------------------
def pseudo_boolean_leq(
    cnf, lits: Sequence[int], weights: Sequence[int], bound: int
) -> None:
    """Encode ``sum(w_i * lit_i) <= bound`` for non-negative integer weights.

    Implemented as a sequential weighted counter: ``state[i][v]`` is true
    when the partial sum over the first ``i + 1`` terms is at least ``v``.
    Auxiliary variable count is ``O(n * bound)``; this is only used for
    moderate bounds (the synthesis encoding keeps bounds at ``b * R``).
    """
    if len(lits) != len(weights):
        raise EncodingError("lits and weights must have equal length")
    terms = [(lit, w) for lit, w in zip(lits, weights) if w > 0]
    for _, w in terms:
        if w < 0:
            raise EncodingError("negative weights are not supported")
    if bound < 0:
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        return
    # Any term whose weight alone exceeds the bound must be false.
    filtered = []
    for lit, w in terms:
        if w > bound:
            cnf.add_clause([-lit])
        else:
            filtered.append((lit, w))
    terms = filtered
    total = sum(w for _, w in terms)
    if total <= bound or not terms:
        return

    n = len(terms)
    # state[v-1] for v in 1..bound ; rolled over terms
    prev: List[Optional[int]] = [None] * bound
    lit0, w0 = terms[0]
    for v in range(1, bound + 1):
        if v <= w0:
            var = cnf.new_var()
            cnf.add_clause([-lit0, var])
            prev[v - 1] = var
    for i in range(1, n):
        lit, w = terms[i]
        cur: List[Optional[int]] = [None] * bound
        for v in range(1, bound + 1):
            var = None
            # carry: previous sum already >= v
            if prev[v - 1] is not None:
                var = cnf.new_var()
                cnf.add_clause([-prev[v - 1], var])
            # this term alone reaches v
            if v <= w:
                if var is None:
                    var = cnf.new_var()
                cnf.add_clause([-lit, var])
            # previous sum >= v - w and this term is true
            if w > 0 and v - w >= 1 and prev[v - w - 1] is not None:
                if var is None:
                    var = cnf.new_var()
                cnf.add_clause([-lit, -prev[v - w - 1], var])
            cur[v - 1] = var
        # overflow check: previous sum >= bound - w + 1 and term true -> violation
        if w > 0:
            threshold = bound - w + 1
            if threshold <= 0:
                cnf.add_clause([-lit])
            elif threshold <= bound and prev[threshold - 1] is not None:
                cnf.add_clause([-lit, -prev[threshold - 1]])
        prev = cur


def pseudo_boolean_eq(
    cnf, lits: Sequence[int], weights: Sequence[int], bound: int
) -> None:
    """``sum(w_i * lit_i) == bound`` via a (<=) pair on original/negated literals."""
    if len(lits) != len(weights):
        raise EncodingError("lits and weights must have equal length")
    pseudo_boolean_leq(cnf, lits, weights, bound)
    # sum w*x >= bound  <=>  sum w*(1-x) <= total - bound
    total = sum(weights)
    pseudo_boolean_leq(cnf, [-lit for lit in lits], weights, total - bound)

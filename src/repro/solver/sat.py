"""A CDCL SAT solver in pure Python.

This is the solving substrate that replaces Z3 in the SCCL reproduction.
The paper's synthesis encoding is a quantifier-free finite-domain formula
(Booleans, bounded integers and pseudo-Boolean sums), so a SAT solver plus
the encoders in :mod:`repro.solver.encoders` and
:mod:`repro.solver.intvar` is a complete substitute.

The implementation follows the standard modern architecture:

* two-watched-literal Boolean constraint propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts,
* learned-clause database reduction driven by clause activities.

The solver supports incremental solving under assumptions, which the
synthesis layer uses when probing neighbouring (S, R, C) instances.
"""

from __future__ import annotations

import heapq
import time
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from .cnf import CNF, lit_var


class SolveResult(Enum):
    """Outcome of a :meth:`SATSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # resource limit (time or conflicts) exceeded


class SolverStats:
    """Mutable counters describing the work performed by the solver."""

    __slots__ = (
        "decisions",
        "propagations",
        "conflicts",
        "restarts",
        "learned_clauses",
        "deleted_clauses",
        "max_decision_level",
        "solve_time",
    )

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.max_decision_level = 0
        self.solve_time = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({inner})"


def luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby restart sequence."""
    if i < 1:
        raise ValueError("luby is defined for indices >= 1")
    # Find the finite subsequence that contains index i and the position of
    # i within it (MiniSat's formulation, shifted to 1-based indices).
    x = i - 1
    size, exponent = 1, 0
    while size < x + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        exponent -= 1
        x %= size
    return 1 << exponent


class _Clause:
    """Internal clause representation with an activity score."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool = False) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


UNASSIGNED = 0
TRUE = 1
FALSE = -1


class SATSolver:
    """Conflict-driven clause-learning SAT solver.

    The solver owns its variable space.  Use :meth:`new_var` to allocate
    variables, :meth:`add_clause` to add clauses, and :meth:`solve` to
    search for a model.  After a SAT answer, :meth:`model_value` or
    :meth:`model` read the satisfying assignment.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # Indexed by variable (1-based; index 0 unused).
        self._value: List[int] = [UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen: List[bool] = [False]
        # Watch lists indexed by literal key (2*v for positive, 2*v+1 for negative).
        self._watches: List[List[_Clause]] = [[], []]
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagate_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        # Lazy max-heap over variable activity: entries are (-activity, var)
        # and may be stale; staleness is resolved at pop time.
        self._order_heap: List[tuple[float, int]] = []
        self.stats = SolverStats()
        self._model: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Variable / clause creation
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._value.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order_heap, (0.0, self.num_vars))
        return self.num_vars

    def ensure_vars(self, max_var: int) -> None:
        """Grow the variable space so that ``max_var`` is valid."""
        while self.num_vars < max_var:
            self.new_var()

    @staticmethod
    def _lit_key(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    def _lit_value(self, lit: int) -> int:
        v = self._value[abs(lit)]
        if v == UNASSIGNED:
            return UNASSIGNED
        return v if lit > 0 else -v

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause.  Returns ``False`` if the formula became trivially UNSAT."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 not allowed")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            # Skip literals already falsified at level 0, drop clause if satisfied.
            if self._level[abs(lit)] == 0 and self._value[abs(lit)] != UNASSIGNED:
                val = self._lit_value(lit)
                if val == TRUE:
                    return True
                if val == FALSE:
                    continue
            seen.add(lit)
            clause.append(lit)

        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        c = _Clause(clause, learnt=False)
        self._clauses.append(c)
        self._attach(c)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Load every clause of a :class:`~repro.solver.cnf.CNF` object."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[self._lit_key(-clause.lits[0])].append(clause)
        self._watches[self._lit_key(-clause.lits[1])].append(clause)

    # ------------------------------------------------------------------
    # Assignment & propagation
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(lit)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        var = abs(lit)
        self._value[var] = TRUE if lit > 0 else FALSE
        self._level[var] = self.decision_level
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            self.stats.propagations += 1
            watch_key = self._lit_key(lit)
            watchers = self._watches[watch_key]
            new_watchers: List[_Clause] = []
            i = 0
            n = len(watchers)
            conflict: Optional[_Clause] = None
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Normalize so that the false literal is lits[1].
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                first_val = self._lit_value(first)
                if first_val == TRUE:
                    new_watchers.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if self._lit_value(lk) != FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[self._lit_key(-lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if first_val == FALSE:
                    # Conflict: copy the remaining watchers back and bail out.
                    new_watchers.extend(watchers[i:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
            self._watches[watch_key] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP conflict analysis.

        Returns the learnt clause (with the asserting literal first) and the
        backtrack level.
        """
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        lit = None
        index = len(self._trail) - 1
        clause: Optional[_Clause] = conflict
        current_level = self.decision_level
        path_vars: List[int] = []

        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 0 if lit is None else 1
            for l in clause.lits[start:]:
                var = abs(l)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    path_vars.append(var)
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(l)
            # Select next literal from the trail to resolve on.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            clause = self._reason[var]
            if counter == 0:
                break
        learnt[0] = -lit

        # Learnt clause minimization (simple self-subsumption check).
        minimized = [learnt[0]]
        for l in learnt[1:]:
            var = abs(l)
            reason = self._reason[var]
            if reason is None:
                minimized.append(l)
                continue
            redundant = True
            for rl in reason.lits:
                rv = abs(rl)
                if rv != var and not seen[rv] and self._level[rv] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(l)
        learnt = minimized

        for var in path_vars:
            seen[var] = False

        if len(learnt) == 1:
            backtrack_level = 0
        else:
            # Find the literal with the second-highest level and place it second.
            max_i = 1
            max_level = self._level[abs(learnt[1])]
            for i in range(2, len(learnt)):
                lvl = self._level[abs(learnt[i])]
                if lvl > max_level:
                    max_level = lvl
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            backtrack_level = max_level
        return learnt, backtrack_level

    def _backtrack(self, level: int) -> None:
        if self.decision_level <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._value[var] == TRUE
            self._value[var] = UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        value = self._value
        heap = self._order_heap
        while heap:
            _, var = heapq.heappop(heap)
            if value[var] == UNASSIGNED:
                return var
        # The heap can run dry while unassigned variables remain only if an
        # entry was consumed earlier without being re-pushed; fall back to a
        # scan to preserve completeness.
        for var in range(1, self.num_vars + 1):
            if value[var] == UNASSIGNED:
                return var
        return None

    def _reduce_db(self) -> None:
        """Remove half of the learnt clauses with the lowest activity."""
        if len(self._learnts) < 100:
            return
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        locked = set()
        for var in range(1, self.num_vars + 1):
            reason = self._reason[var]
            if reason is not None:
                locked.add(id(reason))
        removed: List[_Clause] = []
        kept: List[_Clause] = []
        for i, clause in enumerate(self._learnts):
            if i < keep_from and id(clause) not in locked and len(clause.lits) > 2:
                removed.append(clause)
            else:
                kept.append(clause)
        if not removed:
            return
        removed_ids = {id(c) for c in removed}
        for key in range(len(self._watches)):
            self._watches[key] = [c for c in self._watches[key] if id(c) not in removed_ids]
        self._learnts = kept
        self.stats.deleted_clauses += len(removed)

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Search for a model.

        Parameters
        ----------
        assumptions:
            Literals assumed true for this call only (incremental interface).
        conflict_limit:
            Abort with :data:`SolveResult.UNKNOWN` after this many conflicts.
        time_limit:
            Abort with :data:`SolveResult.UNKNOWN` after this many seconds.
        """
        start_time = time.monotonic()
        self._model = {}
        if not self._ok:
            return SolveResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SolveResult.UNSAT

        restart_count = 0
        conflicts_since_restart = 0
        restart_limit = 64 * luby(1)
        total_conflicts_this_call = 0
        max_learnts = max(1000, len(self._clauses) // 2)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts_this_call += 1
                conflicts_since_restart += 1
                if self.decision_level == 0:
                    self._ok = False
                    self.stats.solve_time += time.monotonic() - start_time
                    return SolveResult.UNSAT
                learnt, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self.stats.learned_clauses += 1
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_limit is not None and total_conflicts_this_call >= conflict_limit:
                    self.stats.solve_time += time.monotonic() - start_time
                    return SolveResult.UNKNOWN
                if time_limit is not None and (self.stats.conflicts & 63) == 0:
                    if time.monotonic() - start_time > time_limit:
                        self.stats.solve_time += time.monotonic() - start_time
                        return SolveResult.UNKNOWN
                continue

            # No conflict.
            if time_limit is not None and time.monotonic() - start_time > time_limit:
                self.stats.solve_time += time.monotonic() - start_time
                return SolveResult.UNKNOWN

            if conflicts_since_restart >= restart_limit:
                restart_count += 1
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_limit = 64 * luby(restart_count + 1)
                self._backtrack(0)
                continue

            if len(self._learnts) > max_learnts:
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

            # Apply assumptions first, then decide.
            next_lit = None
            for assumption in assumptions:
                val = self._lit_value(assumption)
                if val == TRUE:
                    continue
                if val == FALSE:
                    self.stats.solve_time += time.monotonic() - start_time
                    return SolveResult.UNSAT
                next_lit = assumption
                break
            if next_lit is None:
                var = self._pick_branch_var()
                if var is None:
                    # All variables assigned: a model.
                    self._model = {
                        v: self._value[v] == TRUE for v in range(1, self.num_vars + 1)
                    }
                    self._backtrack(0)
                    self.stats.solve_time += time.monotonic() - start_time
                    return SolveResult.SAT
                next_lit = var if self._phase[var] else -var
                self.stats.decisions += 1

            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self.decision_level
            )
            self._enqueue(next_lit, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model(self) -> Dict[int, bool]:
        """Return the last satisfying assignment as ``{var: bool}``."""
        return dict(self._model)

    def model_value(self, lit: int) -> bool:
        """Truth value of a literal in the last model."""
        value = self._model.get(abs(lit))
        if value is None:
            raise ValueError(f"variable {abs(lit)} has no model value (no SAT result yet?)")
        return value if lit > 0 else not value


def solve_cnf(
    cnf: CNF,
    *,
    assumptions: Sequence[int] = (),
    conflict_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> tuple[SolveResult, Optional[Dict[int, bool]]]:
    """Convenience helper: solve a CNF object and return (result, model)."""
    solver = SATSolver()
    if not solver.add_cnf(cnf):
        return SolveResult.UNSAT, None
    result = solver.solve(
        assumptions, conflict_limit=conflict_limit, time_limit=time_limit
    )
    if result is SolveResult.SAT:
        return result, solver.model()
    return result, None

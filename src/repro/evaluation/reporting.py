"""Plain-text reporting helpers shared by the tables/figures harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(rows: List[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Dict[str, List[float]],
    x_values: Sequence[float],
    x_label: str = "size",
    value_format: str = "{:.3f}",
) -> str:
    """Render figure series (one column per named series) as text."""
    rows: List[Dict[str, object]] = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = value_format.format(values[index]) if index < len(values) else ""
        rows.append(row)
    return format_table(rows)


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))

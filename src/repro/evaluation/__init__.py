"""Evaluation harness: regenerates every table and figure of the paper."""

from .figures import (
    DEFAULT_SIZES,
    FIGURE4_POINTS,
    FIGURE5_POINTS,
    FIGURE6_POINTS,
    FigureResult,
    figure4_allgather_dgx1,
    figure5_allreduce_dgx1,
    figure6_allgather_amd,
    full_scale,
)
from .reporting import format_series, format_table, geometric_mean
from .tables import (
    PAPER_TABLE4,
    PAPER_TABLE5,
    SynthesisTableConfig,
    export_frontier_algorithms,
    render_table,
    synthesis_table,
    table3_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "DEFAULT_SIZES",
    "FIGURE4_POINTS",
    "FIGURE5_POINTS",
    "FIGURE6_POINTS",
    "FigureResult",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "SynthesisTableConfig",
    "export_frontier_algorithms",
    "figure4_allgather_dgx1",
    "figure5_allreduce_dgx1",
    "figure6_allgather_amd",
    "format_series",
    "format_table",
    "full_scale",
    "geometric_mean",
    "render_table",
    "synthesis_table",
    "table3_rows",
    "table4_rows",
    "table5_rows",
]

"""Regeneration of the paper's tables (Tables 3, 4 and 5).

Each function returns the table as a list of row dictionaries and can also
render it as aligned text.  The synthesis tables take per-row resource
limits so that CI-friendly runs can cap the work; rows whose synthesis hits
the limit are reported with status ``unknown`` rather than being silently
dropped (the pure-Python SAT substrate is orders of magnitude slower than
Z3, so EXPERIMENTS.md records which rows ran at paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import nccl_table3
from ..core import ParetoFrontier, ParetoPoint, pareto_synthesize
from ..topology import Topology, amd_z52, dgx1
from .reporting import format_table


# Rows of Table 4 (DGX-1) and Table 5 (AMD) as (collective, k, max_steps)
# enumeration requests.  Each request reproduces a contiguous slice of the
# paper's table: the k=0 run produces the "one row per step count" series
# and the k>0 runs produce the low-step bandwidth-optimal rows.
TABLE4_RUNS: List[Tuple[str, int]] = [
    ("Allgather", 0),
    ("Allgather", 1),
    ("Allgather", 4),
    ("Allreduce", 0),
    ("Allreduce", 1),
    ("Allreduce", 4),
    ("Broadcast", 0),
    ("Gather", 0),
    ("Gather", 1),
    ("Gather", 4),
    ("Alltoall", 0),
    ("Alltoall", 1),
]

TABLE5_RUNS: List[Tuple[str, int]] = [
    ("Allgather", 0),
    ("Allgather", 3),
    ("Allreduce", 0),
    ("Allreduce", 3),
    ("Broadcast", 0),
    ("Gather", 0),
    ("Gather", 3),
    ("Alltoall", 4),
]


def table3_rows(multiplier: int = 1) -> List[Dict[str, object]]:
    """Table 3: NCCL's hand-written collectives and their (C, S, R)."""
    rows = []
    for entry in nccl_table3(multiplier):
        rows.append(
            {
                "collective": entry.collective,
                "C": entry.chunks,
                "S": entry.steps,
                "R": entry.rounds,
                "note": entry.note,
            }
        )
    return rows


@dataclass
class SynthesisTableConfig:
    """Resource limits and engine configuration for regenerating a synthesis table."""

    time_limit_per_instance: Optional[float] = 60.0
    conflict_limit: Optional[int] = None
    max_steps_extra: int = 8
    max_chunks: Optional[int] = None
    broadcast_max_steps: int = 5  # Broadcast's enumeration does not terminate on its own
    collectives: Optional[Sequence[str]] = None  # subset filter
    max_k: Optional[int] = None
    strategy: str = "incremental"        # candidate-sweep strategy (engine dispatch)
    max_workers: Optional[int] = None    # worker processes (parallel/speculative)
    backend: Optional[str] = None        # solver backend name
    portfolio: Optional[Sequence[str]] = None  # backends raced per candidate (speculative)
    bounds: str = "baseline"             # bound-seeded pruning ("baseline" or "off")
    cache_dir: Optional[str] = None      # algorithm-cache directory (None disables)
    export_dir: Optional[str] = None     # write each point's algorithm here (None disables)
    export_format: str = "xml"           # "xml", "plan" or "both"


def _frontier_rows(frontier: ParetoFrontier, k: int) -> List[Dict[str, object]]:
    rows = []
    for point in frontier.points:
        rows.append(
            {
                "collective": point.collective,
                "k": k,
                "C": point.chunks_per_node,
                "S": point.steps,
                "R": point.rounds,
                "optimality": point.optimality_label(),
                "pareto": point.pareto_optimal,
                "status": point.status.value,
                "time_s": round(point.synthesis_time, 2),
                # Distinguish freshly solved rows from cache replays so the
                # reported times are interpretable.
                "solved_by": point.provenance_label(),
            }
        )
    return rows


def export_frontier_algorithms(
    frontier: ParetoFrontier,
    export_dir,
    *,
    formats: Sequence[str] = ("xml",),
) -> List[str]:
    """Write every SAT frontier point to ``export_dir`` as XML and/or plans.

    ``formats`` may contain ``"xml"``, ``"plan"`` or the shorthand
    ``"both"``.  File names are derived from the point signature
    (``allgather_dgx1_c6_s3_r7.xml``), so re-running a table overwrites
    rather than accumulates.  Returns the file names written.  This is the
    toolchain hook behind both ``SynthesisTableConfig.export_dir`` and the
    CLI's ``repro pareto --export-dir``.
    """
    from pathlib import Path

    from ..interchange import plan_from_algorithm, to_msccl_xml, write_plan

    if "both" in formats:
        formats = ("xml", "plan")
    for fmt in formats:
        if fmt not in ("xml", "plan"):
            raise ValueError(
                f"unknown export format {fmt!r} (expected 'xml', 'plan' or 'both')"
            )
    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for point in frontier.points:
        if point.algorithm is None:
            continue
        stem = (
            f"{point.collective.lower()}_{frontier.topology_name}"
            f"_c{point.chunks_per_node}_s{point.steps}_r{point.rounds}"
        )
        if "xml" in formats:
            (directory / f"{stem}.xml").write_text(
                to_msccl_xml(point.algorithm), encoding="utf-8"
            )
            written.append(f"{stem}.xml")
        if "plan" in formats:
            write_plan(plan_from_algorithm(point.algorithm), directory / f"{stem}.json")
            written.append(f"{stem}.json")
    return written


def synthesis_table(
    topology: Topology,
    runs: Sequence[Tuple[str, int]],
    config: Optional[SynthesisTableConfig] = None,
) -> List[Dict[str, object]]:
    """Run Pareto-Synthesize for each (collective, k) request and collect rows."""
    config = config or SynthesisTableConfig()
    cache = None
    if config.cache_dir is not None:
        from ..engine.cache import AlgorithmCache

        cache = AlgorithmCache(config.cache_dir)
    rows: List[Dict[str, object]] = []
    seen: set = set()
    for collective, k in runs:
        if config.collectives and collective not in config.collectives:
            continue
        if config.max_k is not None and k > config.max_k:
            continue
        max_steps = None
        if collective == "Broadcast":
            max_steps = config.broadcast_max_steps
        frontier = pareto_synthesize(
            collective,
            topology,
            k,
            max_steps=max_steps,
            max_chunks=config.max_chunks,
            time_limit_per_instance=config.time_limit_per_instance,
            conflict_limit=config.conflict_limit,
            strategy=config.strategy,
            max_workers=config.max_workers,
            backend=config.backend,
            portfolio=config.portfolio,
            cache=cache,
            bounds=config.bounds,
        )
        if config.export_dir is not None:
            export_frontier_algorithms(
                frontier, config.export_dir, formats=(config.export_format,)
            )
        for row in _frontier_rows(frontier, k):
            key = (row["collective"], row["C"], row["S"], row["R"])
            if key in seen:
                continue
            seen.add(key)
            rows.append(row)
    return rows


def table4_rows(config: Optional[SynthesisTableConfig] = None) -> List[Dict[str, object]]:
    """Table 4: synthesized DGX-1 collectives."""
    return synthesis_table(dgx1(), TABLE4_RUNS, config)


def table5_rows(config: Optional[SynthesisTableConfig] = None) -> List[Dict[str, object]]:
    """Table 5: synthesized Gigabyte Z52 (AMD) collectives."""
    return synthesis_table(amd_z52(), TABLE5_RUNS, config)


#: The paper's Table 4 contents, for comparison in EXPERIMENTS.md and tests.
PAPER_TABLE4: Dict[str, List[Tuple[int, int, int, str]]] = {
    "Allgather": [
        (1, 2, 2, "Latency"), (2, 3, 3, ""), (3, 4, 4, ""), (4, 5, 5, ""),
        (5, 6, 6, ""), (6, 7, 7, "Bandwidth"), (6, 3, 7, "Bandwidth"), (2, 2, 3, "Latency"),
    ],
    "Allreduce": [
        (8, 4, 4, "Latency"), (16, 6, 6, ""), (24, 8, 8, ""), (32, 10, 10, ""),
        (40, 12, 12, ""), (48, 14, 14, "Bandwidth"), (48, 6, 14, "Bandwidth"), (16, 4, 6, "Latency"),
    ],
    "Broadcast": [
        (2, 2, 2, "Latency"), (6, 3, 3, ""), (12, 4, 4, ""), (18, 5, 5, ""), (6, 3, 5, ""),
    ],
    "Gather": [
        (1, 2, 2, "Latency"), (2, 3, 3, ""), (3, 4, 4, ""), (4, 5, 5, ""),
        (5, 6, 6, ""), (6, 7, 7, "Bandwidth"), (6, 3, 7, "Bandwidth"), (2, 2, 3, "Latency"),
    ],
    "Alltoall": [
        (8, 3, 3, ""), (8, 2, 3, "Latency"), (24, 8, 8, "Bandwidth"), (24, 2, 8, "Both"),
    ],
}

#: The paper's Table 5 contents.
PAPER_TABLE5: Dict[str, List[Tuple[int, int, int, str]]] = {
    "Allgather": [(1, 4, 4, "Latency"), (2, 7, 7, "Bandwidth"), (2, 4, 7, "Both")],
    "Allreduce": [(8, 8, 8, "Latency"), (16, 14, 14, "Bandwidth"), (16, 8, 14, "Both")],
    "Broadcast": [(2, 4, 4, "Latency"), (4, 5, 5, ""), (6, 6, 6, ""), (8, 7, 7, ""), (10, 8, 8, "")],
    "Gather": [(1, 4, 4, "Latency"), (2, 4, 7, "Both")],
    "Alltoall": [(8, 4, 8, "Both")],
}


def render_table(rows: Iterable[Dict[str, object]], title: str = "") -> str:
    """Aligned-text rendering used by the benchmark harness output."""
    return format_table(list(rows), title=title)

"""Regeneration of the paper's performance figures (Figures 4, 5 and 6).

The paper's figures plot the speedup of SCCL's generated code over NCCL
(DGX-1) or RCCL (Gigabyte Z52) as a function of the input buffer size.  The
hardware substitute here is the discrete-event simulator: both the
synthesized algorithms and the baseline ring algorithms are lowered to
per-rank programs and timed by the same cost model, and the speedup is the
ratio of simulated times.

Each ``figureN`` function returns a :class:`FigureResult` whose ``series``
maps the paper's legend labels (e.g. ``"(6,7,7)"``) to per-size speedups.
Synthesis of the required SCCL algorithms happens on demand with a
configurable per-instance time budget; series whose synthesis does not
finish within the budget are reported in ``skipped`` instead of silently
vanishing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import nccl_allgather, nccl_allreduce, rccl_allgather
from ..core import Algorithm, allreduce_from_allgather, make_instance, synthesize
from ..runtime import Simulator, lower
from ..topology import Topology, amd_z52, dgx1
from .reporting import format_series


#: Input sizes (bytes) roughly matching the x-axes of Figures 4-6.
DEFAULT_SIZES: List[int] = [1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28]

#: Allgather (C, S, R) points plotted in Figure 4.
FIGURE4_POINTS: List[Tuple[int, int, int]] = [(1, 2, 2), (2, 2, 3), (5, 6, 6), (6, 7, 7)]

#: Allgather points whose derived Allreduce algorithms are plotted in Figure 5
#: (the figure labels them by the Allgather phase's signature).
FIGURE5_POINTS: List[Tuple[int, int, int]] = [(1, 2, 2), (4, 5, 5), (5, 6, 6), (6, 7, 7)]

#: Allgather points plotted in Figure 6 (Gigabyte Z52).
FIGURE6_POINTS: List[Tuple[int, int, int]] = [(1, 4, 4), (2, 7, 7)]


def full_scale() -> bool:
    """True when the SCCL_FULL environment variable requests paper-scale runs."""
    return os.environ.get("SCCL_FULL", "0") not in ("", "0", "false", "no")


@dataclass
class FigureResult:
    """Speedup series for one figure."""

    name: str
    sizes: List[int]
    series: Dict[str, List[float]] = field(default_factory=dict)
    baseline: str = ""
    skipped: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        title = f"{self.name}: speedup over {self.baseline} (per input size, bytes)"
        body = format_series(self.series, self.sizes, x_label="bytes")
        if self.skipped:
            body += "\nskipped series: " + ", ".join(
                f"{label} ({reason})" for label, reason in self.skipped.items()
            )
        return title + "\n" + body

    def crossover_consistent(self) -> bool:
        """Sanity property: lower-latency series lead at small sizes,
        higher-bandwidth series lead at large sizes."""
        if len(self.series) < 2:
            return True
        labels = list(self.series)
        first, last = labels[0], labels[-1]
        small = self.series[first][0] >= self.series[last][0]
        large = self.series[last][-1] >= self.series[first][-1]
        return small and large


def _label(signature: Tuple[int, int, int]) -> str:
    """Legend label in the paper's (C,S,R) notation."""
    return f"({signature[0]},{signature[1]},{signature[2]})"


def _synthesize_points(
    collective: str,
    topology: Topology,
    points: Sequence[Tuple[int, int, int]],
    time_limit: Optional[float],
    precomputed: Optional[Dict[Tuple[int, int, int], Algorithm]] = None,
    cache=None,
) -> Tuple[Dict[Tuple[int, int, int], Algorithm], Dict[str, str]]:
    algorithms: Dict[Tuple[int, int, int], Algorithm] = {}
    skipped: Dict[str, str] = {}
    for (chunks, steps, rounds) in points:
        label = f"({chunks},{steps},{rounds})"
        if precomputed and (chunks, steps, rounds) in precomputed:
            algorithms[(chunks, steps, rounds)] = precomputed[(chunks, steps, rounds)]
            continue
        instance = make_instance(collective, topology, chunks, steps, rounds)
        result = synthesize(instance, time_limit=time_limit, cache=cache)
        if result.algorithm is None:
            skipped[label] = f"synthesis {result.status.value} after {result.total_time:.0f}s"
            continue
        algorithms[(chunks, steps, rounds)] = result.algorithm
    return algorithms, skipped


def _speedup_series(
    sccl_algorithms: Dict[str, Tuple[Algorithm, str]],
    baseline_algorithm: Algorithm,
    topology: Topology,
    sizes: Sequence[int],
) -> Dict[str, List[float]]:
    simulator = Simulator(topology)
    baseline_program = lower(baseline_algorithm, protocol="single_kernel_push")
    baseline_times = [simulator.simulate(baseline_program, size).total_time_s for size in sizes]
    series: Dict[str, List[float]] = {}
    for label, (algorithm, protocol) in sccl_algorithms.items():
        program = lower(algorithm, protocol=protocol)
        times = [simulator.simulate(program, size).total_time_s for size in sizes]
        series[label] = [b / t for b, t in zip(baseline_times, times)]
    return series


def figure4_allgather_dgx1(
    sizes: Optional[Sequence[int]] = None,
    time_limit: Optional[float] = 60.0,
    points: Optional[Sequence[Tuple[int, int, int]]] = None,
    precomputed: Optional[Dict[Tuple[int, int, int], Algorithm]] = None,
    cache=None,
) -> FigureResult:
    """Figure 4: Allgather speedup over NCCL on the DGX-1.

    Plots each synthesized (C, S, R) with the push-copy single-kernel
    lowering plus the bandwidth-optimal algorithm lowered with per-step
    cudaMemcpy, mirroring the "(6,7,7) cudamemcpy" series of the paper.
    """
    sizes = list(sizes or DEFAULT_SIZES)
    points = list(points or FIGURE4_POINTS)
    topology = dgx1()
    algorithms, skipped = _synthesize_points(
        "Allgather", topology, points, time_limit, precomputed, cache=cache
    )
    labeled: Dict[str, Tuple[Algorithm, str]] = {}
    for signature, algorithm in algorithms.items():
        labeled[_label(signature)] = (algorithm, "single_kernel_push")
    # The memcpy variant of the most bandwidth-efficient synthesized point.
    if algorithms:
        best = max(algorithms, key=lambda sig: sig[0] / sig[2])
        labeled[f"{_label(best)} cudamemcpy"] = (algorithms[best], "multi_kernel_memcpy")
    result = FigureResult(
        name="Figure 4 (Allgather, DGX-1)",
        sizes=sizes,
        baseline="NCCL ring Allgather (6,7,7)",
        skipped=skipped,
    )
    result.series = _speedup_series(labeled, nccl_allgather(topology), topology, sizes)
    return result


def figure5_allreduce_dgx1(
    sizes: Optional[Sequence[int]] = None,
    time_limit: Optional[float] = 60.0,
    points: Optional[Sequence[Tuple[int, int, int]]] = None,
    precomputed: Optional[Dict[Tuple[int, int, int], Algorithm]] = None,
    cache=None,
) -> FigureResult:
    """Figure 5: Allreduce speedup over NCCL on the DGX-1.

    Allreduce algorithms are derived from the synthesized Allgathers via the
    Reducescatter + Allgather composition; series are labeled by the
    Allgather phase's (C, S, R) as in the paper.
    """
    sizes = list(sizes or DEFAULT_SIZES)
    points = list(points or FIGURE5_POINTS)
    topology = dgx1()
    allgathers, skipped = _synthesize_points(
        "Allgather", topology, points, time_limit, precomputed, cache=cache
    )
    labeled: Dict[str, Tuple[Algorithm, str]] = {}
    for signature, allgather in allgathers.items():
        allreduce = allreduce_from_allgather(allgather)
        labeled[_label(signature)] = (allreduce, "single_kernel_push")
    result = FigureResult(
        name="Figure 5 (Allreduce, DGX-1)",
        sizes=sizes,
        baseline="NCCL ring Allreduce (48,14,14)",
        skipped=skipped,
    )
    result.series = _speedup_series(labeled, nccl_allreduce(topology), topology, sizes)
    return result


def figure6_allgather_amd(
    sizes: Optional[Sequence[int]] = None,
    time_limit: Optional[float] = 60.0,
    points: Optional[Sequence[Tuple[int, int, int]]] = None,
    precomputed: Optional[Dict[Tuple[int, int, int], Algorithm]] = None,
    cache=None,
) -> FigureResult:
    """Figure 6: Allgather speedup over RCCL on the Gigabyte Z52."""
    sizes = list(sizes or DEFAULT_SIZES)
    points = list(points or FIGURE6_POINTS)
    topology = amd_z52()
    algorithms, skipped = _synthesize_points(
        "Allgather", topology, points, time_limit, precomputed, cache=cache
    )
    labeled = {
        _label(signature): (algorithm, "single_kernel_push")
        for signature, algorithm in algorithms.items()
    }
    result = FigureResult(
        name="Figure 6 (Allgather, Gigabyte Z52)",
        sizes=sizes,
        baseline="RCCL ring Allgather (2,7,7)",
        skipped=skipped,
    )
    result.series = _speedup_series(labeled, rccl_allgather(topology), topology, sizes)
    return result

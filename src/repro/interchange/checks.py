"""Spec re-verification for imported algorithms.

Interchange files (MSCCL-style XML, plan bundles) cross a trust boundary:
they may come from another tool, another machine, or a hand edit.  Before an
imported schedule is allowed to become an :class:`~repro.core.algorithm.Algorithm`
that the runtime will lower and execute, it is re-verified against the
*collective specification* — the pre/post placements are rebuilt from the
Table 1 relations via :meth:`repro.collectives.CollectiveSpec.placements`
rather than trusted from the file, and the schedule is run through the full
run-semantics / bandwidth / postcondition check.  A foreign file can
therefore rename an algorithm but cannot inject an invalid schedule.
"""

from __future__ import annotations

from ..collectives import CollectiveError, get_collective
from ..core.algorithm import Algorithm, AlgorithmError


class InterchangeError(Exception):
    """Raised when an interchange payload is malformed or fails re-verification."""


def infer_root(algorithm: Algorithm) -> int:
    """Infer the root node of a rooted collective from its placements.

    Broadcast and Scatter start with everything on the root; Gather ends
    there; Reduce (combining) folds everything into it.  Non-rooted
    collectives return 0.
    """
    try:
        spec = get_collective(algorithm.collective)
    except CollectiveError as exc:
        raise InterchangeError(str(exc)) from exc
    if not spec.root_based:
        return 0
    if not spec.combining and spec.pre_relation == "Root":
        nodes = {node for (_, node) in algorithm.precondition}
    else:  # Gather (Root postcondition) and Reduce (result at the root)
        nodes = {node for (_, node) in algorithm.postcondition}
    if len(nodes) != 1:
        raise InterchangeError(
            f"{spec.name} placements do not identify a single root "
            f"(candidates: {sorted(nodes)})"
        )
    return nodes.pop()


def verify_against_spec(algorithm: Algorithm, *, root: int | None = None) -> int:
    """Re-verify an imported algorithm against its collective's spec.

    Checks, in order: the collective is a known Table 2 primitive, the
    chunk counts are consistent, the pre/post placements equal the relations
    the spec prescribes (rebuilt locally — never trusted from the file), and
    the schedule passes full :meth:`Algorithm.verify`.  Returns the root
    node.  Raises :class:`InterchangeError` on any violation.
    """
    try:
        spec = get_collective(algorithm.collective)
    except CollectiveError as exc:
        raise InterchangeError(str(exc)) from exc
    num_nodes = algorithm.topology.num_nodes
    if root is None:
        root = infer_root(algorithm)
    if not 0 <= root < num_nodes:
        raise InterchangeError(f"root {root} out of range [0, {num_nodes})")
    try:
        expected_pre, expected_post = spec.placements(
            num_nodes, algorithm.chunks_per_node, root=root
        )
    except CollectiveError as exc:
        raise InterchangeError(str(exc)) from exc

    expected_chunks = len({chunk for (chunk, _) in expected_pre})
    if algorithm.num_chunks != expected_chunks:
        raise InterchangeError(
            f"{spec.name} with C={algorithm.chunks_per_node} on {num_nodes} nodes "
            f"implies G={expected_chunks} global chunks, file declares "
            f"{algorithm.num_chunks}"
        )
    if algorithm.combining != spec.combining:
        raise InterchangeError(
            f"{spec.name} is {'a combining' if spec.combining else 'a non-combining'} "
            f"collective but the file marks the schedule otherwise"
        )
    if frozenset(algorithm.precondition) != expected_pre:
        raise InterchangeError(
            f"precondition does not match the {spec.name} specification "
            f"({spec.pre_relation or 'derived'} relation)"
        )
    if frozenset(algorithm.postcondition) != expected_post:
        raise InterchangeError(
            f"postcondition does not match the {spec.name} specification "
            f"({spec.post_relation or 'derived'} relation)"
        )
    try:
        algorithm.verify()
    except AlgorithmError as exc:
        raise InterchangeError(f"schedule fails verification: {exc}") from exc
    return root

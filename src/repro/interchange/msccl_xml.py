"""MSCCL-style XML interchange for synthesized algorithms.

The real SCCL/MSCCL toolchain ships synthesized schedules to the GPU runtime
as an XML document: one ``<algo>`` element with per-``<gpu>`` threadblocks
(``<tb>``) whose ``<step>`` children are send / recv / recv-reduce
operations.  This module emits and parses that shape for
:class:`~repro.core.algorithm.Algorithm`:

* :func:`to_msccl_xml` lowers the algorithm through
  :func:`repro.runtime.lowering.lower` (so the emitted ops are exactly the
  per-rank SEND / RECV / RECV_REDUCE instructions the runtime would execute)
  and assigns one threadblock per communicating peer.
* :func:`from_msccl_xml` parses a document back into an ``Algorithm``,
  cross-checks every send against a matching receive, rebuilds the pre/post
  placements from the collective specification
  (:mod:`repro.interchange.checks` — the file's placements are never
  trusted) and re-verifies the schedule before returning it.

Two extension elements make the documents self-contained where MSCCL relies
on out-of-band context: ``<topology>`` embeds the bandwidth relation and
``<schedule>`` records the per-step round counts (MSCCL has no notion of
the paper's k-synchronous rounds).  Step attributes follow MSCCL
conventions: ``type`` is ``s`` (send), ``r`` (recv) or ``rrc``
(recv-reduce), offsets are chunk ids, ``srcbuf``/``dstbuf`` are ``i``
(input) or ``o`` (output), and the dependency attributes are emitted in
their flag-synchronized defaults.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..collectives import CollectiveError, get_collective
from ..core.algorithm import Algorithm, Send, Step
from ..topology import BandwidthConstraint, Topology
from .checks import InterchangeError, infer_root, verify_against_spec

#: Version of the XML dialect emitted by this module.
XML_FORMAT_VERSION = 1

_SEND_TYPE = "s"
_RECV_TYPES = {"r": "copy", "rrc": "reduce"}


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
def to_msccl_xml(
    algorithm: Algorithm,
    *,
    protocol: str = "single_kernel_push",
    name: Optional[str] = None,
) -> str:
    """Serialize an algorithm as an MSCCL-style XML document.

    The algorithm is lowered first (which verifies it), so an invalid
    schedule can never be emitted.
    """
    from ..runtime.lowering import lower

    spec = get_collective(algorithm.collective)
    root_node = infer_root(algorithm)
    program = lower(algorithm, protocol=protocol)

    algo = ET.Element(
        "algo",
        {
            "name": name or algorithm.name,
            "coll": spec.name.lower(),
            "proto": "Simple",
            "protocol": protocol,
            "nchannels": "1",
            "ngpus": str(algorithm.topology.num_nodes),
            "nchunksperloop": str(algorithm.num_chunks),
            "chunks_per_node": str(algorithm.chunks_per_node),
            "nsteps": str(algorithm.num_steps),
            "nrounds": str(algorithm.total_rounds),
            "root": str(root_node),
            "combining": "1" if algorithm.combining else "0",
            "version": str(XML_FORMAT_VERSION),
        },
    )
    algo.append(_topology_element(algorithm.topology))

    schedule = ET.SubElement(algo, "schedule")
    for index, step in enumerate(algorithm.steps):
        ET.SubElement(schedule, "phase", {"id": str(index), "rounds": str(step.rounds)})

    precondition = algorithm.precondition
    for gpu in range(algorithm.topology.num_nodes):
        gpu_el = ET.SubElement(algo, "gpu", {"id": str(gpu)})
        peers = program.rank(gpu).transfers_by_peer()
        for tb_id, peer in enumerate(sorted(peers)):
            sends = peers[peer]["send"]
            recvs = peers[peer]["recv"]
            tb_el = ET.SubElement(
                gpu_el,
                "tb",
                {
                    "id": str(tb_id),
                    "send": str(peer) if sends else "-1",
                    "recv": str(peer) if recvs else "-1",
                    "chan": "0",
                },
            )
            ops: List[Tuple[int, int, int, str, int]] = []
            # (step, order-within-step: sends first, chunk, type, peer)
            for instr in sends:
                ops.append((instr.step, 0, instr.chunk, _SEND_TYPE, peer))
            for instr in recvs:
                recv_type = "rrc" if instr.op.value == "recv_reduce" else "r"
                ops.append((instr.step, 1, instr.chunk, recv_type, peer))
            ops.sort()
            for step_index, _, chunk, op_type, op_peer in ops:
                holder = gpu if op_type == _SEND_TYPE else op_peer
                ET.SubElement(
                    tb_el,
                    "step",
                    {
                        "s": str(step_index),
                        "type": op_type,
                        "srcbuf": "i" if (chunk, holder) in precondition else "o",
                        "srcoff": str(chunk),
                        "dstbuf": "o",
                        "dstoff": str(chunk),
                        "cnt": "1",
                        "depid": "-1",
                        "deps": "-1",
                        "hasdep": "0",
                    },
                )

    ET.indent(algo, space="  ")
    return ET.tostring(algo, encoding="unicode") + "\n"


def _topology_element(topology: Topology) -> ET.Element:
    element = ET.Element(
        "topology",
        {
            "name": topology.name,
            "nodes": str(topology.num_nodes),
            "alpha": repr(topology.alpha),
            "beta": repr(topology.beta),
        },
    )
    for constraint in topology.constraints:
        constraint_el = ET.SubElement(
            element,
            "constraint",
            {"bandwidth": str(constraint.bandwidth), "name": constraint.name},
        )
        for (src, dst) in sorted(constraint.links):
            ET.SubElement(constraint_el, "link", {"src": str(src), "dst": str(dst)})
    return element


def write_msccl_xml(
    algorithm: Algorithm,
    path,
    *,
    protocol: str = "single_kernel_push",
    name: Optional[str] = None,
) -> Path:
    """Emit an algorithm to ``path``; returns the path written."""
    destination = Path(path)
    destination.write_text(
        to_msccl_xml(algorithm, protocol=protocol, name=name), encoding="utf-8"
    )
    return destination


# ----------------------------------------------------------------------
# Import
# ----------------------------------------------------------------------
def from_msccl_xml(text: str, *, topology: Optional[Topology] = None) -> Algorithm:
    """Parse an MSCCL-style XML document into a verified :class:`Algorithm`.

    ``topology`` overrides the embedded ``<topology>`` element (the node
    count must agree with ``ngpus``).  Every send must have exactly one
    matching receive on the destination GPU, the placements are rebuilt from
    the collective specification, and the schedule is re-verified — a
    foreign document cannot inject an invalid schedule.
    """
    try:
        algo = ET.fromstring(text)
    except ET.ParseError as exc:
        raise InterchangeError(f"malformed XML: {exc}") from exc
    if algo.tag != "algo":
        raise InterchangeError(f"expected an <algo> document, got <{algo.tag}>")
    version = _int_attr(algo, "version", default=XML_FORMAT_VERSION)
    if version != XML_FORMAT_VERSION:
        raise InterchangeError(f"unsupported interchange version {version}")

    coll_name = algo.get("coll", "")
    try:
        spec = get_collective(coll_name)
    except CollectiveError as exc:
        raise InterchangeError(str(exc)) from exc

    num_gpus = _int_attr(algo, "ngpus")
    num_chunks = _int_attr(algo, "nchunksperloop")
    chunks_per_node = _int_attr(algo, "chunks_per_node")
    num_steps = _int_attr(algo, "nsteps")
    root = _int_attr(algo, "root", default=0)

    if topology is None:
        topo_el = algo.find("topology")
        if topo_el is None:
            raise InterchangeError(
                "document embeds no <topology> and none was supplied"
            )
        topology = _parse_topology(topo_el)
    if topology.num_nodes != num_gpus:
        raise InterchangeError(
            f"topology has {topology.num_nodes} nodes but the document "
            f"declares ngpus={num_gpus}"
        )

    rounds = _parse_schedule(algo, num_steps)
    declared_rounds = _int_attr(algo, "nrounds", default=sum(rounds))
    if sum(rounds) != declared_rounds:
        raise InterchangeError(
            f"schedule sums to {sum(rounds)} rounds but the document declares "
            f"nrounds={declared_rounds}"
        )
    sends, recvs = _collect_operations(algo, num_gpus, num_chunks, num_steps)

    # Cross-check: every send is received exactly once (and vice versa), and
    # the receive's type decides the op.  MSCCL files with orphaned steps are
    # rejected rather than silently repaired.
    step_sends: List[List[Send]] = [[] for _ in range(num_steps)]
    for key, send_count in sends.items():
        recv_op = recvs.pop(key, None)
        if recv_op is None or send_count != 1:
            step_index, chunk, src, dst = key
            raise InterchangeError(
                f"step {step_index}: send of chunk {chunk} on {src}->{dst} has "
                f"{'no' if recv_op is None else 'duplicate'} matching receive"
            )
        step_index, chunk, src, dst = key
        step_sends[step_index].append(Send(chunk=chunk, src=src, dst=dst, op=recv_op))
    if recvs:
        (step_index, chunk, src, dst) = next(iter(recvs))
        raise InterchangeError(
            f"step {step_index}: receive of chunk {chunk} on {src}->{dst} has no "
            f"matching send"
        )

    try:
        expected_pre, expected_post = spec.placements(
            num_gpus, chunks_per_node, root=root
        )
    except CollectiveError as exc:
        raise InterchangeError(str(exc)) from exc

    algorithm = Algorithm(
        name=algo.get("name", f"{spec.name.lower()}_imported"),
        collective=spec.name,
        topology=topology,
        chunks_per_node=chunks_per_node,
        num_chunks=num_chunks,
        precondition=expected_pre,
        postcondition=expected_post,
        steps=[
            Step(
                rounds=rounds[index],
                sends=tuple(
                    sorted(step_sends[index], key=lambda s: (s.src, s.dst, s.chunk))
                ),
            )
            for index in range(num_steps)
        ],
        combining=spec.combining,
        metadata={"imported_from": "msccl_xml"},
    )
    verify_against_spec(algorithm, root=root)
    return algorithm


def read_msccl_xml(path, *, topology: Optional[Topology] = None) -> Algorithm:
    """Read and verify an algorithm from an XML file."""
    return from_msccl_xml(Path(path).read_text(encoding="utf-8"), topology=topology)


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------
def _int_attr(element: ET.Element, attr: str, default: Optional[int] = None) -> int:
    raw = element.get(attr)
    if raw is None:
        if default is not None:
            return default
        raise InterchangeError(f"<{element.tag}> is missing the {attr!r} attribute")
    try:
        return int(raw)
    except ValueError as exc:
        raise InterchangeError(f"<{element.tag} {attr}={raw!r}> is not an integer") from exc


def _parse_topology(element: ET.Element) -> Topology:
    constraints = []
    for constraint_el in element.findall("constraint"):
        links = frozenset(
            (_int_attr(link, "src"), _int_attr(link, "dst"))
            for link in constraint_el.findall("link")
        )
        constraints.append(
            BandwidthConstraint(
                links, _int_attr(constraint_el, "bandwidth"), constraint_el.get("name", "")
            )
        )
    try:
        return Topology(
            name=element.get("name", "imported"),
            num_nodes=_int_attr(element, "nodes"),
            constraints=constraints,
            alpha=float(element.get("alpha", 5e-6)),
            beta=float(element.get("beta", 1.0 / 25e9)),
        )
    except Exception as exc:
        raise InterchangeError(f"invalid embedded topology: {exc}") from exc


def _parse_schedule(algo: ET.Element, num_steps: int) -> List[int]:
    schedule = algo.find("schedule")
    if schedule is None:
        # MSCCL documents without the extension element: every step is one round.
        return [1] * num_steps
    rounds = [0] * num_steps
    seen: set = set()
    for phase in schedule.findall("phase"):
        index = _int_attr(phase, "id")
        if not 0 <= index < num_steps or index in seen:
            raise InterchangeError(f"schedule phase id {index} invalid or duplicated")
        seen.add(index)
        rounds[index] = _int_attr(phase, "rounds")
        if rounds[index] < 1:
            raise InterchangeError(f"schedule phase {index} has rounds < 1")
    if len(seen) != num_steps:
        raise InterchangeError(
            f"schedule covers {len(seen)} of {num_steps} steps"
        )
    return rounds


def _collect_operations(
    algo: ET.Element, num_gpus: int, num_chunks: int, num_steps: int
) -> Tuple[Dict[Tuple[int, int, int, int], int], Dict[Tuple[int, int, int, int], str]]:
    """Gather (step, chunk, src, dst) send counts and receive ops."""
    sends: Dict[Tuple[int, int, int, int], int] = {}
    recvs: Dict[Tuple[int, int, int, int], str] = {}
    for gpu_el in algo.findall("gpu"):
        gpu = _int_attr(gpu_el, "id")
        if not 0 <= gpu < num_gpus:
            raise InterchangeError(f"gpu id {gpu} out of range [0, {num_gpus})")
        for tb_el in gpu_el.findall("tb"):
            send_peer = _int_attr(tb_el, "send", default=-1)
            recv_peer = _int_attr(tb_el, "recv", default=-1)
            for step_el in tb_el.findall("step"):
                step_index = _int_attr(step_el, "s")
                chunk = _int_attr(step_el, "srcoff")
                op_type = step_el.get("type", "")
                if not 0 <= step_index < num_steps:
                    raise InterchangeError(
                        f"gpu {gpu}: step index {step_index} out of range"
                    )
                if not 0 <= chunk < num_chunks:
                    raise InterchangeError(
                        f"gpu {gpu}: chunk {chunk} out of range [0, {num_chunks})"
                    )
                if op_type == _SEND_TYPE:
                    if not 0 <= send_peer < num_gpus:
                        raise InterchangeError(
                            f"gpu {gpu}: send step in a threadblock with no send peer"
                        )
                    key = (step_index, chunk, gpu, send_peer)
                    sends[key] = sends.get(key, 0) + 1
                elif op_type in _RECV_TYPES:
                    if not 0 <= recv_peer < num_gpus:
                        raise InterchangeError(
                            f"gpu {gpu}: recv step in a threadblock with no recv peer"
                        )
                    key = (step_index, chunk, recv_peer, gpu)
                    if key in recvs:
                        raise InterchangeError(
                            f"gpu {gpu}: duplicate receive of chunk {chunk} at step "
                            f"{step_index}"
                        )
                    recvs[key] = _RECV_TYPES[op_type]
                else:
                    raise InterchangeError(
                        f"gpu {gpu}: unknown step type {op_type!r}"
                    )
    return sends, recvs

"""Interchange formats: MSCCL-style XML and JSON plan bundles.

The synthesis engine's end product is a deployable collective algorithm,
not a SAT model.  This package is the stable, tool-consumable boundary
around :class:`~repro.core.algorithm.Algorithm`:

``repro.interchange.msccl_xml``
    Emit / parse MSCCL-style XML — per-GPU threadblocks whose steps are the
    send / recv / recv-reduce operations derived via
    :mod:`repro.runtime.lowering`.
``repro.interchange.plan``
    JSON bundles pairing an algorithm with its structural topology
    fingerprint, a cost summary and synthesis provenance.
``repro.interchange.checks``
    The trust boundary: every import rebuilds the pre/post placements from
    the collective specification (:mod:`repro.collectives.relations`) and
    re-verifies the schedule, so foreign files cannot inject invalid
    schedules.
"""

from .checks import InterchangeError, infer_root, verify_against_spec
from .msccl_xml import (
    XML_FORMAT_VERSION,
    from_msccl_xml,
    read_msccl_xml,
    to_msccl_xml,
    write_msccl_xml,
)
from .plan import (
    PLAN_FORMAT,
    PLAN_VERSION,
    AlgorithmPlan,
    plan_from_algorithm,
    plan_from_result,
    read_plan,
    topology_fingerprint,
    write_plan,
)

__all__ = [
    "AlgorithmPlan",
    "InterchangeError",
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "XML_FORMAT_VERSION",
    "from_msccl_xml",
    "infer_root",
    "plan_from_algorithm",
    "plan_from_result",
    "read_msccl_xml",
    "read_plan",
    "to_msccl_xml",
    "topology_fingerprint",
    "verify_against_spec",
    "write_msccl_xml",
    "write_plan",
]

"""JSON "plan" bundles: algorithm + topology signature + cost + provenance.

An :class:`AlgorithmPlan` is the deployable unit of the toolchain: it
carries everything a consumer needs to decide whether a synthesized
schedule applies to its machine and how it was produced:

* the full serialized :class:`~repro.core.algorithm.Algorithm`,
* the structural *topology fingerprint* (SHA-256 over the same canonical
  payload the algorithm cache keys on — node count and bandwidth relation,
  not names or alpha/beta), so a plan synthesized for one DGX-1 matches any
  structurally identical machine,
* a cost summary (S, R, C, bandwidth cost, an alpha-beta estimate), and
* provenance (solver backend, encoding, solve time, tool version).

Loading a plan re-verifies the algorithm against the collective
specification via :mod:`repro.interchange.checks` and re-checks the
fingerprint, so a tampered bundle is rejected.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..core.algorithm import Algorithm
from ..topology import Topology
from .checks import InterchangeError, verify_against_spec

PLAN_FORMAT = "repro-sccl/plan"
PLAN_VERSION = 1

#: Reference per-node buffer size for the cost estimate carried by plans.
REFERENCE_SIZE_BYTES = 1 << 20


def topology_fingerprint(topology: Topology) -> str:
    """Structural SHA-256 of a topology (shared with the algorithm cache)."""
    from ..engine.cache import topology_fingerprint_payload

    payload = topology_fingerprint_payload(topology)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class AlgorithmPlan:
    """A deployable algorithm bundle."""

    algorithm: Algorithm
    fingerprint: str
    cost: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "version": PLAN_VERSION,
            "topology_fingerprint": self.fingerprint,
            "cost": dict(self.cost),
            "provenance": dict(self.provenance),
            "algorithm": self.algorithm.to_dict(),
        }

    @classmethod
    def from_json(cls, data: dict, *, verify: bool = True) -> "AlgorithmPlan":
        if data.get("format") != PLAN_FORMAT:
            raise InterchangeError(
                f"not a {PLAN_FORMAT} document (format={data.get('format')!r})"
            )
        if data.get("version") != PLAN_VERSION:
            raise InterchangeError(f"unsupported plan version {data.get('version')!r}")
        try:
            algorithm = Algorithm.from_dict(data["algorithm"])
        except Exception as exc:
            raise InterchangeError(f"malformed algorithm payload: {exc}") from exc
        declared = data.get("topology_fingerprint", "")
        actual = topology_fingerprint(algorithm.topology)
        if declared != actual:
            raise InterchangeError(
                "topology fingerprint mismatch: the bundled topology does not "
                "match the one the plan was synthesized for"
            )
        if verify:
            verify_against_spec(algorithm)
        return cls(
            algorithm=algorithm,
            fingerprint=declared,
            cost=dict(data.get("cost", {})),
            provenance=dict(data.get("provenance", {})),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def matches_topology(self, topology: Topology) -> bool:
        """True when ``topology`` is structurally identical to the plan's."""
        return topology_fingerprint(topology) == self.fingerprint

    def summary(self) -> str:
        algorithm = self.algorithm
        c, s, r = algorithm.signature()
        backend = self.provenance.get("backend", "?")
        return (
            f"plan {algorithm.name!r}: {algorithm.collective} on "
            f"{algorithm.topology.name} (C={c}, S={s}, R={r}, "
            f"bandwidth cost {algorithm.bandwidth_cost}, backend={backend})"
        )


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def plan_from_algorithm(
    algorithm: Algorithm, *, provenance: Optional[Dict[str, object]] = None
) -> AlgorithmPlan:
    """Bundle a (verified) algorithm into a plan."""
    from .. import __version__

    algorithm.verify()
    cost = {
        "chunks_per_node": algorithm.chunks_per_node,
        "steps": algorithm.num_steps,
        "rounds": algorithm.total_rounds,
        "bandwidth_cost": [
            algorithm.bandwidth_cost.numerator,
            algorithm.bandwidth_cost.denominator,
        ],
        "synchrony": algorithm.synchrony,
        "reference_size_bytes": REFERENCE_SIZE_BYTES,
        "alpha_beta_estimate_s": algorithm.cost(REFERENCE_SIZE_BYTES),
    }
    full_provenance: Dict[str, object] = {
        "tool": {"name": "repro-sccl", "version": __version__},
        "created_at": time.time(),
    }
    if provenance:
        full_provenance.update(provenance)
    return AlgorithmPlan(
        algorithm=algorithm,
        fingerprint=topology_fingerprint(algorithm.topology),
        cost=cost,
        provenance=full_provenance,
    )


def plan_from_result(result) -> AlgorithmPlan:
    """Bundle a SAT :class:`~repro.core.synthesizer.SynthesisResult`."""
    if result.algorithm is None:
        raise InterchangeError(
            f"cannot build a plan from a {result.status.value} synthesis result"
        )
    return plan_from_algorithm(
        result.algorithm,
        provenance={
            "backend": result.backend,
            "encoding": result.encoding,
            "cache_hit": result.cache_hit,
            "encode_time_s": result.encode_time,
            "solve_time_s": result.solve_time,
        },
    )


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def write_plan(plan: AlgorithmPlan, path) -> Path:
    destination = Path(path)
    destination.write_text(plan.dumps(), encoding="utf-8")
    return destination


def read_plan(path, *, verify: bool = True) -> AlgorithmPlan:
    source = Path(path)
    try:
        data = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise InterchangeError(f"cannot read plan {source}: {exc}") from exc
    return AlgorithmPlan.from_json(data, verify=verify)

"""Fault injection: run a deployed plan against a fault set and see it fail.

The service-side story (register a fault, replan) only matters if the *old*
plan actually breaks on the degraded machine.  This module is that check:
it scans a lowered :class:`~repro.runtime.program.Program` for transfers
crossing dead links and reports exactly which step, sender, receiver and
chunk hit the fault first — the observable a real deployment would produce
as a hung flag-wait on the receiving rank.

Two entry points mirror the runtime's two halves:

* :func:`execute_with_faults` — the functional executor under injection;
  a faulty plan raises :class:`FaultInjectionError` at its earliest dead
  send, a clean plan runs (and checks) normally.
* :func:`simulate_with_faults` — the alpha-beta simulator on the degraded
  topology; cost inflation from ``LinkDegraded`` shows up in the estimate,
  dead links raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Union

from ..core.algorithm import Algorithm
from ..runtime.executor import ExecutionResult, execute
from ..runtime.program import OpCode, Program
from ..runtime.simulator import SimulationResult, Simulator
from ..topology import Link, Topology
from .models import FaultError, FaultSet


@dataclass(frozen=True)
class FaultViolation:
    """One transfer of a program that crosses a dead link."""

    step: int
    src: int
    dst: int
    chunk: int

    def describe(self) -> str:
        return (
            f"step {self.step}: rank {self.src} sends chunk {self.chunk} "
            f"over dead link {self.src}->{self.dst}"
        )


class FaultInjectionError(FaultError):
    """A deployed plan traverses a dead link.

    Carries every violating transfer (``violations``, ordered by step then
    sender); the message names the earliest one — the step at which a real
    run would hang.
    """

    def __init__(self, program_name: str, violations: List[FaultViolation]) -> None:
        self.program_name = program_name
        self.violations = list(violations)
        first = self.violations[0]
        extra = len(self.violations) - 1
        suffix = f" (+{extra} more dead transfer(s))" if extra else ""
        super().__init__(
            f"program {program_name!r} fails under faults — {first.describe()}{suffix}"
        )

    @property
    def first(self) -> FaultViolation:
        return self.violations[0]


def _dead_links(
    faults: Union[FaultSet, Set[Link]], topology: Optional[Topology]
) -> Set[Link]:
    if isinstance(faults, FaultSet):
        if topology is None:
            raise FaultError("a FaultSet needs the base topology to resolve dead links")
        return faults.dead_links(topology)
    return set(faults)


def scan_program(
    program: Program,
    faults: Union[FaultSet, Set[Link]],
    topology: Optional[Topology] = None,
) -> List[FaultViolation]:
    """Every SEND of ``program`` that crosses a dead link, ordered by step.

    ``faults`` is either a :class:`FaultSet` (resolved against
    ``topology``) or an explicit set of dead links.
    """
    dead = _dead_links(faults, topology)
    violations: List[FaultViolation] = []
    for rank_program in program.ranks:
        for instr in rank_program.instructions:
            if instr.op is not OpCode.SEND:
                continue
            link = (rank_program.rank, instr.peer)
            if link in dead:
                violations.append(
                    FaultViolation(
                        step=instr.step,
                        src=rank_program.rank,
                        dst=instr.peer,
                        chunk=instr.chunk,
                    )
                )
    violations.sort(key=lambda v: (v.step, v.src, v.dst, v.chunk))
    return violations


def execute_with_faults(
    program: Program,
    algorithm: Algorithm,
    faults: Union[FaultSet, Set[Link]],
    topology: Optional[Topology] = None,
    *,
    check: bool = True,
) -> ExecutionResult:
    """Run ``program`` on the functional executor under fault injection.

    Raises :class:`FaultInjectionError` (naming the earliest failing step,
    sender and peer) when any transfer crosses a dead link; otherwise the
    plan is executed — and, with ``check=True``, verified against the
    collective's definition — exactly as without faults.
    """
    violations = scan_program(program, faults, topology)
    if violations:
        raise FaultInjectionError(program.name, violations)
    return execute(program, algorithm, check=check)


def simulate_with_faults(
    program: Program,
    topology: Topology,
    fault_set: FaultSet,
    size_bytes: float,
) -> SimulationResult:
    """Simulate ``program`` on the topology degraded by ``fault_set``.

    Dead-link traversals raise :class:`FaultInjectionError` with the
    per-step detail (the raw simulator would raise a generic missing-link
    error); surviving programs are costed with the degraded alpha/beta
    figures, so ``LinkDegraded`` inflation is visible in the estimate.
    """
    violations = scan_program(program, fault_set, topology)
    if violations:
        raise FaultInjectionError(program.name, violations)
    degraded = fault_set.apply(topology)
    return Simulator(degraded).simulate(program, size_bytes)

"""Fault models, degraded-topology derivation and fault injection."""

from .inject import (
    FaultInjectionError,
    FaultViolation,
    execute_with_faults,
    scan_program,
    simulate_with_faults,
)
from .models import (
    Fault,
    FaultError,
    FaultSet,
    LinkDegraded,
    LinkDown,
    RankDown,
    fault_from_json,
)

__all__ = [
    "Fault",
    "FaultError",
    "FaultInjectionError",
    "FaultSet",
    "FaultViolation",
    "LinkDegraded",
    "LinkDown",
    "RankDown",
    "execute_with_faults",
    "fault_from_json",
    "scan_program",
    "simulate_with_faults",
]

"""Declarative fault models and degraded-topology derivation.

The paper's premise is that collective algorithms are synthesized *per
topology* (Section 3.2.1): when the topology changes, the algorithm must
change too.  This module makes topology degradation a first-class, explicit
input instead of an out-of-band edit:

* :class:`LinkDown` — a directed link is gone (NVLink lane failure, cable
  pull).  The link is removed from every bandwidth constraint that covers
  it, so the solver cannot schedule traffic over it.
* :class:`RankDown` — a whole node is gone.  Every link touching the rank
  is removed.  Note that collectives whose pre/postconditions mention the
  dead rank (e.g. Allgather over all nodes) become unsatisfiable on the
  degraded topology — that is the honest answer, not an error in the model.
* :class:`LinkDegraded` — the link still works but costs more: ``alpha``
  and/or ``beta`` inflation (retraining retries, signal degradation) and
  an optional hard bandwidth cap.  Cost inflation only moves the routing
  frontier; a bandwidth cap also changes the structural relation the
  solver sees.

A :class:`FaultSet` composes faults, fingerprints them canonically, and
derives a degraded :class:`~repro.topology.Topology` whose ``provenance``
records the base topology and the faults applied — a degraded topology is
never silently confusable with a healthy one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

from ..topology import (
    DEFAULT_LINK_LATENCY_S,
    BandwidthConstraint,
    Link,
    Topology,
)


class FaultError(Exception):
    """Raised for malformed fault specifications or invalid applications."""


@dataclass(frozen=True)
class LinkDown:
    """A directed link that no longer carries traffic."""

    src: int
    dst: int

    kind = "link_down"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise FaultError(f"self-loop fault {self.src}->{self.dst}")

    def to_json(self) -> dict:
        return {"kind": self.kind, "src": self.src, "dst": self.dst}

    def describe(self) -> str:
        return f"link {self.src}->{self.dst} down"


@dataclass(frozen=True)
class RankDown:
    """A node that left the machine: every link touching it is dead."""

    rank: int

    kind = "rank_down"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultError(f"negative rank {self.rank}")

    def to_json(self) -> dict:
        return {"kind": self.kind, "rank": self.rank}

    def describe(self) -> str:
        return f"rank {self.rank} down"


@dataclass(frozen=True)
class LinkDegraded:
    """A link that still works but is slower (and possibly narrower).

    ``alpha_factor`` multiplies the link's latency, ``beta_factor`` its
    per-byte time; ``bandwidth`` (when given) caps the link's chunks/round
    capacity, which changes the structural bandwidth relation the solver
    sees.
    """

    src: int
    dst: int
    alpha_factor: float = 1.0
    beta_factor: float = 1.0
    bandwidth: Union[int, None] = None

    kind = "link_degraded"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise FaultError(f"self-loop fault {self.src}->{self.dst}")
        if self.alpha_factor <= 0 or self.beta_factor <= 0:
            raise FaultError("degradation factors must be positive")
        if self.bandwidth is not None and self.bandwidth < 0:
            raise FaultError("bandwidth cap must be non-negative")

    def to_json(self) -> dict:
        data = {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "alpha_factor": self.alpha_factor,
            "beta_factor": self.beta_factor,
        }
        if self.bandwidth is not None:
            data["bandwidth"] = self.bandwidth
        return data

    def describe(self) -> str:
        parts = []
        if self.alpha_factor != 1.0:
            parts.append(f"alpha x{self.alpha_factor:g}")
        if self.beta_factor != 1.0:
            parts.append(f"beta x{self.beta_factor:g}")
        if self.bandwidth is not None:
            parts.append(f"bandwidth<={self.bandwidth}")
        detail = ", ".join(parts) or "no-op"
        return f"link {self.src}->{self.dst} degraded ({detail})"


Fault = Union[LinkDown, RankDown, LinkDegraded]

_FAULT_KINDS = {
    LinkDown.kind: LinkDown,
    RankDown.kind: RankDown,
    LinkDegraded.kind: LinkDegraded,
}


def fault_from_json(data: dict) -> Fault:
    """Decode one fault from its wire form."""
    try:
        kind = data["kind"]
    except (TypeError, KeyError) as exc:
        raise FaultError(f"fault without a kind: {data!r}") from exc
    cls = _FAULT_KINDS.get(kind)
    if cls is None:
        raise FaultError(f"unknown fault kind {kind!r}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise FaultError(f"malformed {kind} fault: {exc}") from exc


@dataclass(frozen=True)
class FaultSet:
    """An ordered, deduplicated set of faults applied together."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultSet":
        return cls(tuple(faults))

    def __post_init__(self) -> None:
        seen = set()
        for fault in self.faults:
            key = json.dumps(fault.to_json(), sort_keys=True)
            if key in seen:
                raise FaultError(f"duplicate fault: {fault.describe()}")
            seen.add(key)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def merge(self, other: "FaultSet") -> "FaultSet":
        """Union of two fault sets (duplicates from ``other`` are dropped)."""
        seen = {json.dumps(f.to_json(), sort_keys=True) for f in self.faults}
        merged = list(self.faults)
        for fault in other.faults:
            key = json.dumps(fault.to_json(), sort_keys=True)
            if key not in seen:
                seen.add(key)
                merged.append(fault)
        return FaultSet(tuple(merged))

    # ------------------------------------------------------------------
    # Wire form / identity
    # ------------------------------------------------------------------
    def to_json(self) -> List[dict]:
        return [fault.to_json() for fault in self.faults]

    @classmethod
    def from_json(cls, data: Sequence[dict]) -> "FaultSet":
        if not isinstance(data, (list, tuple)):
            raise FaultError("a fault set is a JSON list of fault objects")
        return cls(tuple(fault_from_json(entry) for entry in data))

    def fingerprint(self) -> str:
        """Order-insensitive content hash of the fault set."""
        payload = sorted(
            json.dumps(fault.to_json(), sort_keys=True) for fault in self.faults
        )
        blob = json.dumps(payload, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return "; ".join(fault.describe() for fault in self.faults)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def dead_ranks(self) -> Set[int]:
        return {f.rank for f in self.faults if isinstance(f, RankDown)}

    def dead_links(self, topology: Topology) -> Set[Link]:
        """Every directed link of ``topology`` that the faults kill.

        ``LinkDown`` kills its link; ``RankDown`` kills every link touching
        the rank; a ``LinkDegraded`` with ``bandwidth=0`` kills its link too.
        """
        dead: Set[Link] = set()
        down_ranks = self.dead_ranks()
        for link in topology.links():
            src, dst = link
            if src in down_ranks or dst in down_ranks:
                dead.add(link)
        for fault in self.faults:
            if isinstance(fault, LinkDown):
                dead.add((fault.src, fault.dst))
            elif isinstance(fault, LinkDegraded) and fault.bandwidth == 0:
                dead.add((fault.src, fault.dst))
        return dead

    def validate(self, topology: Topology) -> None:
        """Reject faults that do not name anything in ``topology``."""
        links = topology.links()
        for fault in self.faults:
            if isinstance(fault, RankDown):
                if not 0 <= fault.rank < topology.num_nodes:
                    raise FaultError(
                        f"rank {fault.rank} out of range for topology "
                        f"{topology.name!r} with {topology.num_nodes} nodes"
                    )
            else:
                if (fault.src, fault.dst) not in links:
                    raise FaultError(
                        f"no link {fault.src}->{fault.dst} in topology "
                        f"{topology.name!r}"
                    )

    def apply(self, topology: Topology) -> Topology:
        """Derive the degraded topology, with provenance.

        Dead links are removed from every bandwidth constraint covering
        them (constraints left empty are dropped); ``LinkDegraded`` caps
        add a point-to-point constraint, and its cost inflation lands in
        ``link_latency`` / ``link_beta_scale``.  An empty fault set returns
        the topology unchanged (same object).
        """
        if not self.faults:
            return topology
        self.validate(topology)
        dead = self.dead_links(topology)

        constraints: List[BandwidthConstraint] = []
        for constraint in topology.constraints:
            surviving = frozenset(link for link in constraint.links if link not in dead)
            if not surviving:
                continue
            if surviving == constraint.links:
                constraints.append(constraint)
            else:
                constraints.append(
                    BandwidthConstraint(surviving, constraint.bandwidth, constraint.name)
                )

        link_latency: Dict[Link, float] = {
            link: value for link, value in topology.link_latency.items()
            if link not in dead
        }
        link_beta_scale: Dict[Link, float] = {
            link: value for link, value in topology.link_beta_scale.items()
            if link not in dead
        }
        for fault in self.faults:
            if not isinstance(fault, LinkDegraded):
                continue
            link = (fault.src, fault.dst)
            if link in dead:
                continue
            if fault.bandwidth is not None:
                constraints.append(
                    BandwidthConstraint(
                        frozenset({link}),
                        fault.bandwidth,
                        f"degraded:{fault.src}->{fault.dst}",
                    )
                )
            if fault.alpha_factor != 1.0:
                base = link_latency.get(link, DEFAULT_LINK_LATENCY_S)
                link_latency[link] = base * fault.alpha_factor
            if fault.beta_factor != 1.0:
                link_beta_scale[link] = (
                    link_beta_scale.get(link, 1.0) * fault.beta_factor
                )

        fp = self.fingerprint()
        degraded = Topology(
            name=f"{topology.name}!deg-{fp[:8]}",
            num_nodes=topology.num_nodes,
            constraints=constraints,
            alpha=topology.alpha,
            beta=topology.beta,
            link_latency=link_latency,
            link_beta_scale=link_beta_scale,
            provenance={
                "base_topology": topology.name,
                "fault_fingerprint": fp,
                "faults": self.to_json(),
            },
        )
        return degraded

"""Performance history: measured calibration and the CI regression sentinel.

Built on the persistent run archive (:mod:`repro.telemetry.archive`):

* :class:`~repro.perf.model.ProbeTimeModel` — per-(instance-feature,
  strategy) timing distributions that make ``strategy="auto"`` a
  *measured* pick (:func:`repro.core.pareto.resolve_strategy` consults
  :func:`~repro.perf.model.ambient_model`, static thresholds remain the
  cold-start fallback);
* :mod:`~repro.perf.regressions` — the tolerance-band sentinel comparing
  fresh ``BENCH_*.json`` numbers against the archived same-host trajectory
  (``repro perf regressions`` in CI).
"""

from .model import (
    KNOWN_STRATEGIES,
    ProbeTimeModel,
    TimingDistribution,
    ambient_model,
    feature_key,
    set_ambient_model,
    strategy_features,
)
from .regressions import (
    Finding,
    RegressionReport,
    ToleranceBand,
    baseline_records,
    classify_metric,
    compare_records,
    detect_regressions,
    flatten_bench_metrics,
)

__all__ = [
    "Finding",
    "KNOWN_STRATEGIES",
    "ProbeTimeModel",
    "RegressionReport",
    "TimingDistribution",
    "ToleranceBand",
    "ambient_model",
    "baseline_records",
    "classify_metric",
    "compare_records",
    "detect_regressions",
    "feature_key",
    "flatten_bench_metrics",
    "set_ambient_model",
    "strategy_features",
]

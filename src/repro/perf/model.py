"""Measured strategy calibration: the ProbeTimeModel behind ``strategy="auto"``.

The ROADMAP's adaptive-strategy item asks for the sweep-strategy pick to
be *measured* — calibrated on observed probe times rather than static size
thresholds.  This module closes that loop over the performance archive
(:mod:`repro.telemetry.archive`):

* every finished :func:`~repro.core.pareto.pareto_synthesize` run appends a
  ``kind="pareto"`` record carrying the instance's coarse *features*
  (node count, synchrony budget, chunk cap), the strategy that ran it and
  the wall clock it took;
* :class:`ProbeTimeModel` folds those records into per-(feature-bucket,
  strategy) timing distributions, partitioned by host fingerprint so a
  laptop's history never calibrates a CI runner;
* :func:`~repro.core.pareto.resolve_strategy` consults the ambient model
  first and only falls back to the static thresholds when the history is
  too thin to compare strategies (the cold-start path).

The pick only ever changes *which dispatcher runs*; all dispatchers commit
frontiers byte-identically (the determinism property the engine already
tests), so calibration can never change frontier bytes — a property test
in ``tests/perf`` pins this.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..telemetry.archive import (
    PerfArchive,
    RunRecord,
    get_archive,
    host_fingerprint,
)

#: Strategies the model may recommend (``auto`` and typos are ignored).
KNOWN_STRATEGIES = ("serial", "incremental", "parallel", "speculative")


def strategy_features(topology, *, k: int = 0,
                      max_chunks: Optional[int] = None) -> Dict[str, int]:
    """The coarse instance shape timings are bucketed on.

    Deliberately low-cardinality: the candidate count and formula size are
    driven by node count, synchrony budget and chunk cap, and buckets must
    re-aggregate across runs for the distributions to ever reach
    ``min_samples``.
    """
    return {
        "nodes": int(topology.num_nodes),
        "k": int(k),
        "chunks": int(max_chunks or 0),
    }


def feature_key(features: Dict[str, object]) -> str:
    """Canonical string form of a feature bucket (sorted, order-free)."""
    return "|".join(f"{k}={features[k]}" for k in sorted(features))


@dataclass
class TimingDistribution:
    """Wall-clock samples for one (feature bucket, strategy, backend)."""

    samples: List[float] = field(default_factory=list)

    def add(self, wall_s: float) -> None:
        self.samples.append(float(wall_s))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 6),
            "median_s": round(self.median, 6),
            "min_s": round(min(self.samples), 6) if self.samples else 0.0,
            "max_s": round(max(self.samples), 6) if self.samples else 0.0,
        }


class ProbeTimeModel:
    """Per-(instance-feature, strategy, backend) timing distributions.

    Entirely deterministic: ingestion order does not matter (distributions
    aggregate), prediction iterates sorted keys and breaks mean ties on the
    strategy name, so two processes reading the same archive always pick
    the same strategy.
    """

    def __init__(
        self,
        records: Iterable[RunRecord] = (),
        *,
        min_samples: int = 2,
        host: Optional[str] = None,
    ) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.min_samples = min_samples
        #: Only records from this host calibrate the model (None = any).
        self.host = host
        # (feature_key, strategy) -> distribution; backend kept as a label
        # inside a parallel map for reporting, not for the pick itself.
        self._dists: Dict[Tuple[str, str], TimingDistribution] = {}
        self._backends: Dict[Tuple[str, str], Dict[str, int]] = {}
        self.ingested = 0
        for record in records:
            self.ingest(record)

    # ------------------------------------------------------------------
    def ingest(self, record: RunRecord) -> bool:
        """Fold one archived run in; False when the record cannot calibrate."""
        if record.kind != "pareto":
            return False
        if record.strategy not in KNOWN_STRATEGIES:
            return False
        if record.wall_s <= 0 or not record.features:
            return False
        if self.host is not None and record.host_key() != self.host:
            return False
        key = (feature_key(record.features), record.strategy)
        dist = self._dists.get(key)
        if dist is None:
            dist = self._dists[key] = TimingDistribution()
        dist.add(record.wall_s)
        if record.backend:
            backends = self._backends.setdefault(key, {})
            backends[record.backend] = backends.get(record.backend, 0) + 1
        self.ingested += 1
        return True

    # ------------------------------------------------------------------
    def observations(self, features: Dict[str, object]) -> Dict[str, TimingDistribution]:
        bucket = feature_key(features)
        return {
            strategy: dist
            for (key, strategy), dist in sorted(self._dists.items())
            if key == bucket
        }

    def predict(self, features: Dict[str, object]) -> Optional[str]:
        """The measured pick for this feature bucket, or None (cold start).

        A recommendation needs at least two strategies each observed
        ``min_samples`` times — one strategy's history alone proves nothing
        about the alternatives, and thin histories are noise.  The pick is
        the lowest *median* wall clock (robust to one outlier run), ties
        broken lexicographically.
        """
        candidates = [
            (dist.median, strategy)
            for strategy, dist in self.observations(features).items()
            if dist.count >= self.min_samples
        ]
        if len(candidates) < 2:
            return None
        candidates.sort()
        return candidates[0][1]

    # ------------------------------------------------------------------
    def report(self) -> List[Dict[str, object]]:
        """One row per (feature bucket, strategy): ``repro perf calibrate``."""
        rows: List[Dict[str, object]] = []
        buckets = sorted({key for key, _ in self._dists})
        for bucket in buckets:
            features = dict(
                (part.split("=", 1)[0], int(part.split("=", 1)[1]))
                for part in bucket.split("|")
            )
            pick = self.predict(features)
            for (key, strategy), dist in sorted(self._dists.items()):
                if key != bucket:
                    continue
                row: Dict[str, object] = {
                    "features": bucket,
                    "strategy": strategy,
                    "picked": strategy == pick,
                }
                row.update(dist.as_dict())
                backends = self._backends.get((key, strategy), {})
                if backends:
                    row["backends"] = dict(sorted(backends.items()))
                rows.append(row)
        return rows

    def __len__(self) -> int:
        return self.ingested


# ----------------------------------------------------------------------
# The ambient model: what resolve_strategy("auto") consults
# ----------------------------------------------------------------------
_AMBIENT_LOCK = threading.Lock()
_AMBIENT_OVERRIDE: Optional[ProbeTimeModel] = None
_AMBIENT_CACHE: Dict[str, Tuple[Tuple, ProbeTimeModel]] = {}


def _archive_signature(archive: PerfArchive) -> Tuple:
    """Cheap change detector: segment names, sizes and mtimes."""
    signature = []
    for segment in archive.segments():
        try:
            stat = segment.stat()
            signature.append((segment.name, stat.st_size, stat.st_mtime_ns))
        except OSError:
            continue
    return tuple(signature)


def ambient_model(archive: Optional[PerfArchive] = None) -> ProbeTimeModel:
    """This host's model over the ambient archive, rebuilt only on change.

    Memoized per archive root on a (name, size, mtime) segment signature,
    so the common case — ``resolve_strategy("auto")`` called in a loop with
    no new runs recorded — costs two ``stat`` calls, not a full reload.
    """
    if _AMBIENT_OVERRIDE is not None:
        return _AMBIENT_OVERRIDE
    archive = archive if archive is not None else get_archive()
    root = str(archive.root)
    signature = _archive_signature(archive)
    with _AMBIENT_LOCK:
        cached = _AMBIENT_CACHE.get(root)
        if cached is not None and cached[0] == signature:
            return cached[1]
    model = ProbeTimeModel(
        archive.iter_records(kind="pareto", host=host_fingerprint()),
        host=host_fingerprint(),
    )
    with _AMBIENT_LOCK:
        _AMBIENT_CACHE[root] = (signature, model)
    return model


def set_ambient_model(model: Optional[ProbeTimeModel]) -> Optional[ProbeTimeModel]:
    """Pin the ambient model (tests); ``None`` restores archive resolution."""
    global _AMBIENT_OVERRIDE
    previous = _AMBIENT_OVERRIDE
    _AMBIENT_OVERRIDE = model
    return previous

"""The CI regression sentinel: fresh BENCH numbers vs the archived trajectory.

``benchmarks/`` write ``BENCH_sweep.json`` / ``BENCH_service.json`` /
``BENCH_faults.json`` snapshots *and* append one ``kind="bench"`` record
per file to the performance archive, carrying the same numbers flattened
into dotted metric paths (:func:`flatten_bench_metrics`).  The sentinel
(:func:`detect_regressions`, ``repro perf regressions`` in CI) then
compares each fresh metric against the **median** of its archived
trajectory on the *same host fingerprint* and flags values outside a
:class:`ToleranceBand`:

* **time** metrics (``*_s``) regress when they exceed the median by more
  than ``max_slowdown`` — but wall-clock totals (``*wall*``) only *warn*
  on hosts with fewer than ``wall_noise_cores`` cores, where scheduling
  noise dominates, and timings under ``min_wall_s`` are ignored outright;
* **rate** metrics (``*_per_sec``) regress when they drop below the median
  by more than ``max_slowdown`` (relative);
* **ratio** metrics (``*hit_rate*``, ``*_ratio``, ``*coverage*``; all in
  ``[0, 1]``) regress when they drop by more than ``max_hit_rate_drop``
  (absolute).

Cross-host comparisons never happen: records whose host fingerprint
differs from the current host's are not part of the baseline.  A metric
with no archived history at all is reported as a warning, never a failure
— the first CI run on a fresh archive passes by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..telemetry.archive import (
    PerfArchive,
    RunRecord,
    host_context,
    host_fingerprint,
)

#: Flattened metric: (value, kind) with kind in {"time", "rate", "ratio"}.
FlatMetrics = Dict[str, Tuple[float, str]]

#: Subtrees that are raw counter snapshots / context, not gateable metrics.
_SKIP_KEYS = {"metrics", "host", "since", "invalidated"}


def classify_metric(key: str) -> Optional[str]:
    """Metric kind from the leaf key's naming convention (None = not gated)."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf.endswith("_per_sec"):
        return "rate"
    if "hit_rate" in leaf or leaf.endswith("_ratio") or "coverage" in leaf:
        return "ratio"
    if leaf.endswith("_s"):
        return "time"
    return None


def flatten_bench_metrics(payload: dict, prefix: str = "") -> FlatMetrics:
    """Dotted numeric leaves of a BENCH payload, classified by kind.

    This is both what the benchmarks archive (``RunRecord.metrics``) and
    what the sentinel gates, so the two sides agree on names forever.
    """
    flat: FlatMetrics = {}
    for key, value in payload.items():
        if key in _SKIP_KEYS:
            continue
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_bench_metrics(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            kind = classify_metric(path)
            if kind is not None:
                flat[path] = (float(value), kind)
    return flat


@dataclass
class ToleranceBand:
    """How far a metric may drift from its archived median before CI fails."""

    max_slowdown: float = 0.25       # time/rate: +-25% relative
    max_hit_rate_drop: float = 0.05  # ratio: absolute drop
    min_wall_s: float = 0.05         # time noise floor: ignore faster timings
    min_samples: int = 2             # thinner baselines only warn
    wall_noise_cores: int = 2        # *wall* timings warn below this core count

    def as_dict(self) -> Dict[str, float]:
        return {
            "max_slowdown": self.max_slowdown,
            "max_hit_rate_drop": self.max_hit_rate_drop,
            "min_wall_s": self.min_wall_s,
            "min_samples": self.min_samples,
            "wall_noise_cores": self.wall_noise_cores,
        }


@dataclass
class Finding:
    """One metric outside (or unjudgeable against) its tolerance band."""

    benchmark: str
    metric: str
    kind: str
    severity: str                 # "fail" | "warn"
    current: float
    baseline: Optional[float]     # None: no archived history
    samples: int
    reason: str

    def describe(self) -> str:
        base = "n/a" if self.baseline is None else f"{self.baseline:.4g}"
        return (
            f"[{self.severity.upper()}] {self.benchmark}:{self.metric} "
            f"({self.kind}) {base} -> {self.current:.4g}  {self.reason}"
        )


@dataclass
class RegressionReport:
    host: str
    band: ToleranceBand
    findings: List[Finding] = field(default_factory=list)
    checked: int = 0
    baseline_runs: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"host {self.host}",
            "baseline runs: " + (
                ", ".join(
                    f"{name}={count}" for name, count
                    in sorted(self.baseline_runs.items()) if count
                ) or "none (first run: warn-only)"
            ),
            f"{self.checked} metrics checked, "
            f"{len(self.failures)} failure(s), {len(self.warnings)} warning(s)",
        ]
        for finding in self.findings:
            lines.append("  " + finding.describe())
        if not self.findings:
            lines.append("  all metrics inside the tolerance band")
        return "\n".join(lines)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def baseline_records(
    archive: PerfArchive,
    benchmark: str,
    *,
    host: Optional[str] = None,
    token: Optional[str] = None,
) -> List[RunRecord]:
    """The archived trajectory one benchmark is judged against.

    ``token`` pins the baseline to specific runs (a run-id/session prefix
    or ``@N``) instead of the whole same-host trajectory.
    """
    host = host if host is not None else host_fingerprint()
    if token:
        return [
            r for r in archive.find(token, kind="bench", host=host)
            if r.name == benchmark
        ]
    return [
        r for r in archive.iter_records(kind="bench", host=host)
        if r.name == benchmark
    ]


def detect_regressions(
    current: Dict[str, dict],
    archive: PerfArchive,
    *,
    band: Optional[ToleranceBand] = None,
    host: Optional[Dict[str, object]] = None,
    baseline: Optional[str] = None,
) -> RegressionReport:
    """Judge fresh BENCH payloads against the archive (see module docstring).

    ``current`` maps benchmark names (``"BENCH_sweep"``) to their parsed
    payloads; ``host`` defaults to this machine's :func:`host_context`.
    """
    band = band if band is not None else ToleranceBand()
    host = host if host is not None else host_context()
    host_key = host_fingerprint(host)
    cores = int(host.get("cpu_count", 1) or 1)
    report = RegressionReport(host=host_key, band=band)

    for benchmark in sorted(current):
        fresh = flatten_bench_metrics(current[benchmark])
        history = baseline_records(
            archive, benchmark, host=host_key, token=baseline
        )
        report.baseline_runs[benchmark] = len(history)
        trajectory: Dict[str, List[float]] = {}
        for record in history:
            for metric, value in record.metrics.items():
                if isinstance(value, (int, float)):
                    trajectory.setdefault(metric, []).append(float(value))

        for metric, (value, kind) in sorted(fresh.items()):
            report.checked += 1
            series = trajectory.get(metric)
            if not series:
                report.findings.append(Finding(
                    benchmark, metric, kind, "warn", value, None, 0,
                    "no archived baseline on this host",
                ))
                continue
            base = _median(series)
            severity = "fail" if len(series) >= band.min_samples else "warn"
            if kind == "time":
                if value < band.min_wall_s or base < band.min_wall_s:
                    continue  # below the noise floor: not judgeable
                if value <= base * (1.0 + band.max_slowdown):
                    continue
                if "wall" in metric.rsplit(".", 1)[-1] and cores < band.wall_noise_cores:
                    severity = "warn"
                report.findings.append(Finding(
                    benchmark, metric, kind, severity, value, base, len(series),
                    f"+{100.0 * (value / base - 1.0):.0f}% over the archived "
                    f"median (tolerance +{100.0 * band.max_slowdown:.0f}%)",
                ))
            elif kind == "rate":
                if base <= 0 or value >= base * (1.0 - band.max_slowdown):
                    continue
                report.findings.append(Finding(
                    benchmark, metric, kind, severity, value, base, len(series),
                    f"-{100.0 * (1.0 - value / base):.0f}% under the archived "
                    f"median (tolerance -{100.0 * band.max_slowdown:.0f}%)",
                ))
            else:  # ratio
                if value >= base - band.max_hit_rate_drop:
                    continue
                report.findings.append(Finding(
                    benchmark, metric, kind, severity, value, base, len(series),
                    f"dropped {base - value:.3f} absolute (tolerance "
                    f"{band.max_hit_rate_drop:.3f})",
                ))
    return report


# ----------------------------------------------------------------------
# Run-to-run comparison (repro perf compare)
# ----------------------------------------------------------------------
def compare_records(a: RunRecord, b: RunRecord) -> str:
    """Phase-by-phase textual diff of two archived runs."""
    lines = [
        f"A: {a.describe()}",
        f"B: {b.describe()}",
    ]
    if a.host_key() != b.host_key():
        lines.append(
            f"NOTE: different hosts ({a.host_key()} vs {b.host_key()}) — "
            "timings are not directly comparable"
        )
    lines.append("")
    lines.append(f"{'quantity':<28} {'A':>12} {'B':>12} {'delta':>12}")

    def row(label: str, va: Optional[float], vb: Optional[float]) -> str:
        fa = f"{va:.4f}" if va is not None else "-"
        fb = f"{vb:.4f}" if vb is not None else "-"
        if va is not None and vb is not None:
            delta = vb - va
            rel = f" ({100.0 * delta / va:+.0f}%)" if va else ""
            return f"{label:<28} {fa:>12} {fb:>12} {delta:>+12.4f}{rel}"
        return f"{label:<28} {fa:>12} {fb:>12} {'-':>12}"

    lines.append(row("wall_s", a.wall_s, b.wall_s))
    for key in sorted(set(a.phases) | set(b.phases)):
        lines.append(row(f"phase.{key}", a.phases.get(key), b.phases.get(key)))
    for key in sorted(set(a.quantiles) | set(b.quantiles)):
        lines.append(row(
            f"quantile.{key}", a.quantiles.get(key), b.quantiles.get(key)
        ))
    shared = sorted(set(a.metrics) & set(b.metrics))
    for key in shared:
        va, vb = a.metrics.get(key), b.metrics.get(key)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            lines.append(row(key, float(va), float(vb)))
    return "\n".join(lines)

"""``repro`` — the command-line front door to the synthesis toolchain.

Subcommands
-----------
``repro synthesize``
    Solve one SynColl candidate (collective, topology, C/S/R), writing the
    outcome through the persistent algorithm cache and optionally exporting
    the algorithm as MSCCL-style XML or a plan bundle.
``repro pareto``
    Run Pareto-Synthesize (Algorithm 1) with any engine strategy
    (serial / incremental / parallel / speculative, the latter with
    optional ``--portfolio`` backend racing) and backend, print the
    Table 4/5-style rows and optionally export every frontier algorithm.
``repro export``
    Emit a cached (or plan-bundled) algorithm as XML or a plan.
``repro import``
    Parse an XML/plan file, re-verify it against the collective spec, and
    optionally store it into the cache.
``repro cache ls|show|verify|evict|clear``
    Inspect and manage the persistent cache, including the roadmap's
    LRU size-limit eviction (``cache evict --max-entries N``).
``repro serve``
    Run the planning service: an HTTP endpoint brokering concurrent plan
    requests with coalescing, backed by the registry and a worker pool.
``repro request``
    Client for ``repro serve``: ask a running service for a plan (pinned
    ``-C/-S/-R`` candidate or ``--size``-routed), or answer locally with
    ``--local`` when no server is up.  ``--stats`` instead pretty-prints
    the service's ``/v1/stats`` counters (broker coalescing, resolver
    ladder rungs, bounds-ledger work, cache hit rate).
``repro fault``
    Register, clear or inspect fabric faults on a running service
    (``--link-down``, ``--rank-down``, ``--link-degraded``); mutations
    invalidate affected routing tables and cached plans so the next
    request replans against the degraded topology.  ``--preview`` derives
    the degraded topology locally without a server.
``repro run``
    Execute an imported plan/XML file on the functional executor and the
    alpha-beta simulator: verified correctness plus estimated times.
``repro trace``
    Summarize a Chrome trace-event JSON written by ``synthesize --trace``
    or ``pareto --trace`` (span counts, totals, slowest probes); ``--top N``
    lists the slowest individual spans and ``--diff OTHER.json`` compares
    two traces phase by phase.
``repro perf history|compare|regressions|calibrate``
    Query the persistent performance archive (``$REPRO_PERF_DIR`` or
    ``~/.cache/repro/perf``): list run history, diff two archived runs,
    gate fresh ``BENCH_*.json`` files against the archived trajectory (the
    CI regression sentinel), and inspect the probe-time model behind the
    measured ``strategy="auto"`` pick.

Every subcommand exits 0 on success and 1 on failure, printing errors to
stderr; ``repro synthesize`` additionally exits 1 when the candidate is
UNSAT/UNKNOWN so shell pipelines can branch on satisfiability.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .topologies import TOPOLOGY_HELP, TopologySpecError, parse_topology


class CliError(Exception):
    """Raised for user-facing command failures (printed, exit code 1)."""


# ----------------------------------------------------------------------
# Shared option groups
# ----------------------------------------------------------------------
def _add_topology_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-t", "--topology", required=True, help=TOPOLOGY_HELP)


def _add_cache_options(
    parser: argparse.ArgumentParser, *, allow_disable: bool = False
) -> None:
    group = parser.add_argument_group("cache")
    group.add_argument(
        "--cache-dir",
        default=None,
        help="algorithm cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-sccl/algorithms)",
    )
    if allow_disable:
        # Only commands where the cache is an optimization (not the object
        # being operated on) get --no-cache; export/import/cache subcommands
        # would silently contradict it.
        group.add_argument(
            "--no-cache", action="store_true", help="bypass the algorithm cache entirely"
        )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("engine")
    group.add_argument("--backend", default=None, help="solver backend name (default: cdcl)")
    group.add_argument(
        "--time-limit", type=float, default=None, metavar="S",
        help="per-solve wall-clock limit in seconds (exceeded -> unknown)",
    )
    group.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="per-solve conflict budget (exceeded -> unknown)",
    )


def _resolve_cache(args):
    from ..engine.cache import AlgorithmCache, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    directory = args.cache_dir if args.cache_dir else default_cache_dir()
    return AlgorithmCache(directory)


def _require_cache(args):
    """Cache commands operate on a directory even when it does not exist yet."""
    from ..engine.cache import AlgorithmCache, default_cache_dir

    directory = args.cache_dir if args.cache_dir else default_cache_dir()
    return AlgorithmCache(directory)


def _topology(args):
    try:
        return parse_topology(args.topology)
    except TopologySpecError as exc:
        raise CliError(str(exc)) from exc


# ----------------------------------------------------------------------
# repro synthesize
# ----------------------------------------------------------------------
def _cmd_synthesize(args) -> int:
    from ..core import make_instance, synthesize

    topology = _topology(args)
    try:
        instance = make_instance(
            args.collective, topology, args.chunks, args.steps, args.rounds,
            root=args.root,
        )
    except Exception as exc:
        raise CliError(str(exc)) from exc

    cache = _resolve_cache(args)
    tracer = _make_tracer(args)
    with _maybe_tracing(tracer):
        result = synthesize(
            instance,
            time_limit=args.time_limit,
            conflict_limit=args.conflict_limit,
            backend=args.backend,
            cache=cache,
            name=args.name,
        )
    _write_trace(tracer, args)
    print(result.summary())
    if result.algorithm is not None:
        if not args.quiet:
            print()
            print(result.algorithm.describe())
        _export_algorithm(result, args)
        return 0
    return 1


def _make_tracer(args):
    """A recording tracer when ``--trace FILE`` was given, else ``None``."""
    if not getattr(args, "trace", None):
        return None
    from ..telemetry import Tracer

    return Tracer()


def _maybe_tracing(tracer):
    if tracer is None:
        import contextlib

        return contextlib.nullcontext()
    from ..telemetry import tracing

    return tracing(tracer)


def _write_trace(tracer, args) -> None:
    if tracer is None:
        return
    tracer.write_chrome_trace(args.trace)
    print(f"wrote Chrome trace to {args.trace} (load it in ui.perfetto.dev)")


def _export_algorithm(result, args) -> None:
    algorithm = result.algorithm
    if getattr(args, "xml", None):
        from ..interchange import write_msccl_xml

        path = write_msccl_xml(algorithm, args.xml)
        print(f"wrote MSCCL-style XML to {path}")
    if getattr(args, "plan", None):
        from ..interchange import plan_from_result, write_plan

        path = write_plan(plan_from_result(result), args.plan)
        print(f"wrote plan bundle to {path}")


# ----------------------------------------------------------------------
# repro pareto
# ----------------------------------------------------------------------
def _cmd_pareto(args) -> int:
    from ..core import pareto_synthesize
    from ..evaluation import export_frontier_algorithms, format_table

    topology = _topology(args)
    cache = _resolve_cache(args)
    portfolio = None
    if args.portfolio:
        portfolio = [name.strip() for name in args.portfolio.split(",") if name.strip()]
        if not portfolio:
            raise CliError("--portfolio needs at least one backend name")
    try:
        frontier = pareto_synthesize(
            args.collective,
            topology,
            args.k,
            root=args.root,
            max_steps=args.max_steps,
            max_chunks=args.max_chunks,
            time_limit_per_instance=args.time_limit,
            conflict_limit=args.conflict_limit,
            strategy=args.strategy,
            max_workers=args.max_workers,
            backend=args.backend,
            portfolio=portfolio,
            cache=cache,
            bounds="off" if args.no_bounds else "baseline",
            trace=args.trace,
        )
    except Exception as exc:
        raise CliError(str(exc)) from exc
    if args.trace:
        print(f"wrote Chrome trace to {args.trace} (load it in ui.perfetto.dev)")

    title = (
        f"{frontier.collective} on {frontier.topology_name} "
        f"(k={frontier.k}, strategy={frontier.strategy}, "
        f"backend={frontier.backend}, bounds={frontier.bounds})"
    )
    rows = frontier.table_rows()
    if rows:
        print(format_table(rows, title=title))
    else:
        print(f"{title}: no satisfiable candidates found")
    print(
        f"total {frontier.total_time:.2f}s, engine {frontier.engine_stats}"
        + (" [step budget exhausted]" if frontier.exhausted_steps else "")
    )
    if args.export_dir:
        written = export_frontier_algorithms(
            frontier, args.export_dir, formats=(args.export_format,)
        )
        print(f"exported {len(written)} file(s) to {args.export_dir}")
    return 0 if rows else 1


# ----------------------------------------------------------------------
# repro export
# ----------------------------------------------------------------------
def _cmd_export(args) -> int:
    from ..interchange import (
        plan_from_algorithm,
        read_plan,
        to_msccl_xml,
        write_plan,
    )

    if args.plan_input:
        plan = read_plan(args.plan_input)
        algorithm = plan.algorithm
        provenance = dict(plan.provenance)
    else:
        if not args.topology:
            raise CliError("--topology is required unless exporting from --plan-input")
        topology = _topology(args)
        cache = _require_cache(args)
        algorithm = cache.load_algorithm(
            args.collective, topology, args.chunks, args.steps, args.rounds,
            root=args.root,
        )
        if algorithm is None:
            raise CliError(
                f"no cached algorithm for {args.collective} on {topology.name} "
                f"(C={args.chunks}, S={args.steps}, R={args.rounds}); run "
                f"`repro synthesize` first"
            )
        provenance = {}

    if args.format == "xml":
        payload = to_msccl_xml(algorithm)
    else:
        plan = plan_from_algorithm(algorithm, provenance=provenance or None)
        payload = plan.dumps()

    if args.output:
        Path(args.output).write_text(payload, encoding="utf-8")
        print(f"wrote {args.format} to {args.output}")
    else:
        sys.stdout.write(payload)
    return 0


# ----------------------------------------------------------------------
# repro import
# ----------------------------------------------------------------------
def _cmd_import(args) -> int:
    from ..interchange import read_msccl_xml, read_plan

    path = Path(args.file)
    if not path.exists():
        raise CliError(f"no such file: {path}")
    fmt = args.format
    if fmt == "auto":
        fmt = "plan" if path.suffix.lower() == ".json" else "xml"

    topology = None
    if args.topology:
        topology = _topology(args)
    if fmt == "xml":
        algorithm = read_msccl_xml(path, topology=topology)
    else:
        plan = read_plan(path)
        if topology is not None and not plan.matches_topology(topology):
            raise CliError(
                f"plan was synthesized for a topology structurally different "
                f"from {args.topology!r} (fingerprint mismatch)"
            )
        algorithm = plan.algorithm

    print(f"imported and re-verified {algorithm.name!r} from {path}")
    if not args.quiet:
        print()
        print(algorithm.describe())
    if args.store:
        _store_imported(algorithm, args)
    return 0


def _store_imported(algorithm, args) -> None:
    from ..core.instance import InstanceError, make_instance
    from ..core.synthesizer import SynthesisResult
    from ..engine.cache import store_result
    from ..interchange import infer_root
    from ..solver import SolveResult

    cache = _require_cache(args)
    try:
        instance = make_instance(
            algorithm.collective,
            algorithm.topology,
            algorithm.chunks_per_node,
            algorithm.num_steps,
            algorithm.total_rounds,
            root=infer_root(algorithm),
        )
    except InstanceError as exc:
        raise CliError(
            f"cannot store {algorithm.collective} into the cache: {exc} "
            f"(store the non-combining base algorithm instead)"
        ) from exc
    result = SynthesisResult(
        instance=instance,
        status=SolveResult.SAT,
        algorithm=algorithm,
        backend=str(algorithm.metadata.get("imported_from", "import")),
    )
    if store_result(cache, result):
        print(f"stored into cache at {cache.root}")
    else:
        raise CliError(f"cache at {cache.root} is not writable")


# ----------------------------------------------------------------------
# repro cache ...
# ----------------------------------------------------------------------
def _cmd_cache_ls(args) -> int:
    cache = _require_cache(args)
    entries = cache.entries()
    unreadable = len(cache.entry_paths()) - len(entries)
    if not entries and not unreadable:
        print(f"cache at {cache.root}: empty")
        return 0
    now = time.time()
    note = f" ({unreadable} unreadable; see `repro cache verify`)" if unreadable else ""
    print(
        f"cache at {cache.root}: {len(entries)} entries, "
        f"{cache.total_bytes()} bytes{note}"
    )
    header = f"{'key':<14} {'status':<7} {'backend':<8} {'age':>8} {'size':>8}  instance"
    print(header)
    print("-" * len(header))
    for path, entry in entries:
        try:
            stat = path.stat()
            age, size = _format_age(now - stat.st_mtime), stat.st_size
        except OSError:
            age, size = "?", 0
        key = entry.key if args.keys else entry.key[:12] + ".."
        print(
            f"{key:<14} {entry.status:<7} {entry.backend:<8} {age:>8} {size:>8}  "
            f"{entry.describe_instance()}"
        )
    return 0


def _format_age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    for unit, width in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= width:
            return f"{seconds / width:.1f}{unit}"
    return f"{seconds:.0f}s"


def _find_entry(cache, key_prefix: str):
    matches = [
        (path, entry) for path, entry in cache.entries()
        if entry.key.startswith(key_prefix)
    ]
    if not matches:
        raise CliError(f"no cache entry matches key prefix {key_prefix!r}")
    if len(matches) > 1:
        raise CliError(
            f"key prefix {key_prefix!r} is ambiguous ({len(matches)} matches); "
            f"use more characters"
        )
    return matches[0]


def _cmd_cache_show(args) -> int:
    from ..core.algorithm import Algorithm

    cache = _require_cache(args)
    path, entry = _find_entry(cache, args.key)
    print(f"key:      {entry.key}")
    print(f"path:     {path}")
    print(f"status:   {entry.status}")
    print(f"backend:  {entry.backend}")
    print(f"instance: {entry.describe_instance()}")
    print(f"solve:    {entry.solve_time:.2f}s")
    if args.json:
        print(json.dumps(entry.to_json(), indent=2, sort_keys=True))
    elif entry.algorithm is not None:
        print()
        print(Algorithm.from_dict(entry.algorithm).describe())
    return 0


def _cmd_cache_verify(args) -> int:
    from ..core.algorithm import Algorithm
    from ..engine.cache import CacheEntry

    cache = _require_cache(args)
    ok, bad = 0, []
    # Walk the raw files, not entries(): unreadable files (crashed writers,
    # hand edits) must be reported as invalid, not silently skipped.
    for path in cache.entry_paths():
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = CacheEntry.from_json(json.load(handle))
            if entry.status == "sat" and entry.algorithm is not None:
                Algorithm.from_dict(entry.algorithm).verify()
            # UNSAT entries carry no schedule to check.
            ok += 1
        except Exception as exc:
            bad.append((path, exc))
    print(f"{ok} entries verified, {len(bad)} invalid")
    for path, exc in bad:
        print(f"  {path.stem[:12]}..: {exc}")
        if args.drop:
            try:
                path.unlink()
                print("    dropped")
            except OSError as unlink_exc:
                print(f"    could not drop: {unlink_exc}")
    return 0 if not bad or args.drop else 1


def _cmd_cache_evict(args) -> int:
    cache = _require_cache(args)
    if args.max_entries is None and args.max_bytes is None and args.max_age_days is None:
        raise CliError(
            "nothing to do: pass --max-entries, --max-bytes and/or --max-age-days"
        )
    before = len(cache)
    evicted = cache.evict(
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_s=None if args.max_age_days is None else args.max_age_days * 86400.0,
    )
    print(f"evicted {len(evicted)} of {before} entries ({len(cache)} remain)")
    if args.verbose:
        for key in evicted:
            print(f"  {key}")
    return 0


def _cmd_cache_clear(args) -> int:
    cache = _require_cache(args)
    count = len(cache)
    cache.clear()
    print(f"cleared {count} entries from {cache.root}")
    return 0


# ----------------------------------------------------------------------
# repro serve / repro request (the planning service)
# ----------------------------------------------------------------------
def _make_registry(args):
    from ..service import PlanRegistry

    cache = _require_cache(args)
    routes_dir = args.routes_dir if getattr(args, "routes_dir", None) else None
    return PlanRegistry(cache=cache, routes_dir=routes_dir)


def _cmd_serve(args) -> int:
    from ..service import PlanningService, make_server

    if args.workers < 1:
        raise CliError("--workers must be at least 1")
    registry = _make_registry(args)
    service = PlanningService(registry, num_workers=args.workers)
    try:
        server = make_server(service, host=args.host, port=args.port)
    except OSError as exc:
        raise CliError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    host, port = server.server_address[:2]
    service.start()
    print(
        f"repro planning service listening on http://{host}:{port} "
        f"(cache {registry.cache.root}, routes {registry.routes_dir}, "
        f"workers={args.workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
        stats = service.broker.stats()
        print(
            f"served {stats['completed']} request(s), "
            f"coalesced {stats['coalesced']} of {stats['submitted']}"
        )
    return 0


def _build_plan_request(args):
    from ..service import PlanRequest, ServiceError

    try:
        return PlanRequest(
            collective=args.collective,
            topology=args.topology,
            chunks=args.chunks,
            steps=args.steps,
            rounds=args.rounds,
            root=args.root,
            size_bytes=args.size,
            synchrony=args.synchrony,
            deadline_s=args.deadline,
            backend=args.backend,
        ).validate()
    except ServiceError as exc:
        raise CliError(str(exc)) from exc


def _print_section(title: str, rows) -> None:
    print(f"{title}:")
    for label, value in rows:
        print(f"  {label:<22} {value}")


def _cmd_request_stats(args) -> int:
    from ..service import PlanningService, ServiceError, fetch_stats

    try:
        if args.local:
            with PlanningService(_make_registry(args), num_workers=args.workers) as service:
                stats = service.stats()
        else:
            stats = fetch_stats(args.url)
    except ServiceError as exc:
        raise CliError(str(exc)) from exc

    broker = stats.get("broker", {})
    _print_section("broker", [
        ("submitted", broker.get("submitted", 0)),
        ("coalesced", f"{broker.get('coalesced', 0)} "
                      f"({broker.get('coalescing_ratio', 0.0):.0%})"),
        ("completed", broker.get("completed", 0)),
        ("failed", broker.get("failed", 0)),
        ("expired", broker.get("expired", 0)),
        ("pending / inflight", f"{broker.get('pending', 0)} / "
                               f"{broker.get('inflight', 0)}"),
        ("resolver crashes", broker.get("resolver_crashes", 0)),
        ("window uptime", f"{broker.get('uptime_s', 0.0):.1f}s"),
    ])
    resolver = stats.get("resolver") or {}
    if resolver:
        rungs = resolver.get("rungs") or {}
        rung_text = (
            ", ".join(f"{name}={rungs[name]}" for name in sorted(rungs)) or "(none)"
        )
        _print_section("resolver", [
            ("solves", resolver.get("solves", 0)),
            ("registry hits", resolver.get("registry_hits", 0)),
            ("replans", resolver.get("replans", 0)),
            ("ladder rungs", rung_text),
        ])
    engine = stats.get("engine") or {}
    bounds = engine.get("bounds") or {}
    cache = engine.get("cache") or {}
    _print_section("engine", [
        ("candidates probed", bounds.get("probed", 0)),
        ("candidates pruned", bounds.get("pruned", 0)),
        ("candidates cut", bounds.get("cut", 0)),
        ("cache hits", cache.get("hits", 0)),
        ("cache misses", cache.get("misses", 0)),
        ("cache hit rate", f"{cache.get('hit_rate', 0.0):.0%}"),
    ])
    faults = stats.get("faults") or {}
    if faults.get("active_topologies"):
        _print_section("faults", [
            ("degraded topologies", faults["active_topologies"]),
        ])
    return 0


def _cmd_request(args) -> int:
    from ..service import PlanningService, ServiceError, request_plan

    if args.stats:
        return _cmd_request_stats(args)
    if not args.collective:
        raise CliError("request needs a COLLECTIVE (or --stats)")
    if not args.topology:
        raise CliError("request needs --topology (unless asking for --stats)")
    request = _build_plan_request(args)
    try:
        if args.local:
            with PlanningService(_make_registry(args), num_workers=args.workers) as service:
                response = service.request(request)
        else:
            response = request_plan(args.url, request)
    except ServiceError as exc:
        raise CliError(str(exc)) from exc

    print(response.summary())
    if response.route:
        route = response.route
        upper = route.get("max_bytes")
        upper_text = "inf" if upper is None else f"{upper:.0f}"
        print(
            f"routed to {route['plan']} (C,S,R)={tuple(route['signature'])} "
            f"for sizes [{route['min_bytes']:.0f}, {upper_text}) bytes"
        )
    if not response.ok:
        return 1
    plan = response.plan_object()  # re-verify before trusting the wire
    print(plan.summary())
    if args.output:
        from ..interchange import write_plan

        path = write_plan(plan, args.output)
        print(f"wrote plan bundle to {path}")
    return 0


# ----------------------------------------------------------------------
# repro fault
# ----------------------------------------------------------------------
def _parse_link(spec: str, flag: str):
    parts = spec.split(":")
    if len(parts) != 2:
        raise CliError(f"bad {flag} spec {spec!r} (expected SRC:DST)")
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise CliError(f"bad {flag} spec {spec!r} (expected SRC:DST)") from exc


def _collect_faults(args) -> list:
    from ..faults import FaultError, LinkDegraded, LinkDown, RankDown

    faults = []
    try:
        for spec in args.link_down or []:
            src, dst = _parse_link(spec, "--link-down")
            faults.append(LinkDown(src, dst).to_json())
        for spec in args.rank_down or []:
            try:
                rank = int(spec)
            except ValueError as exc:
                raise CliError(f"bad --rank-down spec {spec!r}") from exc
            faults.append(RankDown(rank).to_json())
        for spec in args.link_degraded or []:
            parts = spec.split(":")
            if len(parts) < 2 or len(parts) > 4:
                raise CliError(
                    f"bad --link-degraded spec {spec!r} "
                    "(expected SRC:DST[:ALPHA_FACTOR[:BETA_FACTOR]])"
                )
            try:
                src, dst = int(parts[0]), int(parts[1])
                alpha = float(parts[2]) if len(parts) > 2 else 1.0
                beta = float(parts[3]) if len(parts) > 3 else 1.0
            except ValueError as exc:
                raise CliError(f"bad --link-degraded spec {spec!r}") from exc
            faults.append(
                LinkDegraded(src, dst, alpha_factor=alpha, beta_factor=beta).to_json()
            )
    except FaultError as exc:
        raise CliError(str(exc)) from exc
    return faults


def _cmd_fault(args) -> int:
    from ..service import FaultRequest, ServiceError, request_fault

    faults = _collect_faults(args)
    try:
        request = FaultRequest(
            topology=args.topology, action=args.action, faults=tuple(faults)
        ).validate()
    except ServiceError as exc:
        raise CliError(str(exc)) from exc

    if args.preview:
        # Offline: derive and describe the degraded topology locally.
        from ..faults import FaultSet

        topology = request.resolve_topology()
        fault_set = request.fault_set()
        fault_set.validate(topology)
        degraded = fault_set.apply(topology)
        print(f"faults: {fault_set.describe() or '(none)'}")
        print(
            f"degraded topology: {degraded.name} "
            f"({degraded.num_nodes} nodes, {len(degraded.links())} links; "
            f"healthy has {len(topology.links())})"
        )
        return 0

    try:
        response = request_fault(args.url, request)
    except ServiceError as exc:
        raise CliError(str(exc)) from exc
    print(response.summary())
    if response.degraded:
        deg = response.degraded
        print(
            f"degraded topology: {deg.get('name')} "
            f"({deg.get('num_nodes')} nodes, {deg.get('links')} links, "
            f"{deg.get('links_removed')} removed)"
        )
    return 0 if response.ok else 1


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------
def _parse_size(text: str) -> int:
    """``1024``, ``64K``, ``1M``, ``2G`` -> bytes."""
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    text = text.strip()
    scale = units.get(text[-1:].upper())
    digits = text[:-1] if scale else text
    scale = scale or 1
    try:
        size = int(digits) * scale
    except ValueError as exc:
        raise CliError(f"bad size {text!r} (use e.g. 4096, 64K, 1M, 2G)") from exc
    if size <= 0:
        raise CliError(f"size must be positive, got {text!r}")
    return size


def _cmd_run(args) -> int:
    from ..interchange import read_msccl_xml, read_plan
    from ..runtime import Simulator, execute, lower

    path = Path(args.file)
    if not path.exists():
        raise CliError(f"no such file: {path}")
    fmt = args.format
    if fmt == "auto":
        fmt = "plan" if path.suffix.lower() == ".json" else "xml"
    if fmt == "plan":
        algorithm = read_plan(path).algorithm
    else:
        algorithm = read_msccl_xml(path)
    print(f"imported and re-verified {algorithm.name!r} from {path}")

    program = lower(algorithm, protocol=args.protocol)
    execution = execute(program, algorithm)
    print(
        f"functional execution: OK ({execution.transfers} chunk transfers, "
        f"{execution.steps_executed} steps, protocol {args.protocol})"
    )

    sizes = [_parse_size(s) for s in (args.size or ["1K", "1M", "128M"])]
    simulator = Simulator(algorithm.topology)
    print("simulated times (per-node buffer size -> estimate):")
    for size in sizes:
        sim = simulator.simulate(program, size)
        print(
            f"  {size:>12,d} B   {sim.total_time_s * 1e6:10.1f} us   "
            f"({sim.algorithmic_bandwidth() / 1e9:.2f} GB/s)"
        )
    return 0


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------
def _load_trace(path_str: str) -> dict:
    path = Path(path_str)
    if not path.exists():
        raise CliError(f"no such file: {path}")
    try:
        trace = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CliError(f"{path} is not valid trace JSON: {exc}") from exc
    if not isinstance(trace, dict):
        raise CliError(f"{path} is not a Chrome trace (expected a JSON object)")
    return trace


def _cmd_trace(args) -> int:
    from ..telemetry import diff_chrome_traces, summarize_chrome_trace

    trace = _load_trace(args.file)
    if args.diff is not None:
        other = _load_trace(args.diff)
        print(diff_chrome_traces(
            trace, other, label_a=args.file, label_b=args.diff
        ))
        return 0
    print(summarize_chrome_trace(trace, top=args.top))
    return 0


# ----------------------------------------------------------------------
# repro perf
# ----------------------------------------------------------------------
def _perf_archive(args):
    from ..telemetry import PerfArchive, get_archive

    if getattr(args, "archive_dir", None):
        return PerfArchive(args.archive_dir)
    return get_archive()


def _cmd_perf_history(args) -> int:
    from ..telemetry import host_fingerprint

    archive = _perf_archive(args)
    kwargs = {}
    if args.kind:
        kwargs["kind"] = args.kind
    if args.this_host:
        kwargs["host"] = host_fingerprint()
    records = archive.records(**kwargs)
    shown = records[-args.limit:] if args.limit else records
    if args.json:
        print(json.dumps([r.to_json() for r in shown], indent=2, sort_keys=True))
        return 0
    stats = archive.stats()
    print(
        f"archive {stats['root']}: {stats['records']} records in "
        f"{stats['segments']} segment(s)"
        + (f", {stats['corrupt_lines']} corrupt line(s) skipped"
           if stats["corrupt_lines"] else "")
    )
    if not shown:
        print("no matching records (run a sweep or a benchmark to record one)")
        return 0
    for record in shown:
        print(f"{record.run_id:<24} {record.describe()}")
    return 0


def _resolve_perf_record(archive, token: str):
    from ..telemetry import ArchiveError

    try:
        matches = archive.find(token)
    except ArchiveError as exc:
        raise CliError(str(exc)) from exc
    if not matches:
        raise CliError(
            f"no archived record matches {token!r} "
            "(use a run-id prefix from `repro perf history`, or @N for the "
            "Nth most recent)"
        )
    if len(matches) > 1:
        preview = ", ".join(r.run_id for r in matches[:5])
        raise CliError(
            f"{token!r} is ambiguous ({len(matches)} records: {preview}...)"
        )
    return matches[0]


def _cmd_perf_compare(args) -> int:
    from ..perf import compare_records

    archive = _perf_archive(args)
    record_a = _resolve_perf_record(archive, args.run_a)
    record_b = _resolve_perf_record(archive, args.run_b)
    print(compare_records(record_a, record_b))
    return 0


def _cmd_perf_regressions(args) -> int:
    from ..perf import ToleranceBand, detect_regressions

    archive = _perf_archive(args)
    bench_dir = Path(args.bench_dir) if args.bench_dir else Path.cwd()
    current = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CliError(f"cannot read {path}: {exc}") from exc
        if isinstance(payload, dict):
            current[path.stem] = payload
    if not current:
        raise CliError(
            f"no BENCH_*.json files under {bench_dir} "
            "(run the benchmarks first, or pass --bench-dir)"
        )
    band = ToleranceBand(
        max_slowdown=args.max_slowdown,
        max_hit_rate_drop=args.max_hit_rate_drop,
        min_wall_s=args.min_wall,
    )
    report = detect_regressions(
        current, archive, band=band, baseline=args.baseline
    )
    print(report.render())
    if report.failures and not args.warn_only:
        print(
            f"repro perf regressions: {len(report.failures)} metric(s) "
            "outside the tolerance band", file=sys.stderr,
        )
        return 1
    return 0


def _cmd_perf_calibrate(args) -> int:
    from ..perf import ProbeTimeModel, ambient_model
    from ..telemetry import host_fingerprint

    archive = _perf_archive(args)
    if getattr(args, "archive_dir", None):
        model = ProbeTimeModel(
            archive.iter_records(kind="pareto", host=host_fingerprint()),
            host=host_fingerprint(),
        )
    else:
        model = ambient_model(archive)
    rows = model.report()
    print(
        f"probe-time model over {archive.root}: {len(model)} pareto run(s) "
        f"ingested for host {host_fingerprint()}"
    )
    if not rows:
        print(
            "no calibration data yet — strategy=\"auto\" uses the static "
            "size thresholds (cold start); run `repro pareto` a few times "
            "with different --strategy values to record history"
        )
        return 0
    print(f"{'features':<24} {'strategy':<12} {'runs':>5} {'median_s':>10} "
          f"{'mean_s':>10}  pick")
    for row in rows:
        print(
            f"{row['features']:<24} {row['strategy']:<12} {row['count']:>5} "
            f"{row['median_s']:>10.4f} {row['mean_s']:>10.4f}"
            + ("  <-- measured pick" if row["picked"] else "")
        )
    if args.check:
        from ..core.pareto import resolve_strategy

        topology = parse_topology(args.check)
        pick = resolve_strategy(topology, k=args.synchrony, model=model)
        print(
            f"\nresolve_strategy({args.check}, k={args.synchrony}) "
            f"-> {pick!r}"
        )
    return 0


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from ..engine.backends import available_backends

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCCL reproduction toolchain: synthesize, inspect and "
        "export collective algorithms.",
    )
    parser.add_argument(
        "--version", action="version", version=_version_string()
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # synthesize -------------------------------------------------------
    synth = subparsers.add_parser(
        "synthesize", help="solve one (collective, topology, C, S, R) candidate"
    )
    synth.add_argument("collective", help="collective name (e.g. Allgather)")
    _add_topology_option(synth)
    synth.add_argument("-C", "--chunks", type=int, required=True, help="chunks per node")
    synth.add_argument("-S", "--steps", type=int, required=True, help="step count")
    synth.add_argument("-R", "--rounds", type=int, required=True, help="total rounds")
    synth.add_argument("--root", type=int, default=0, help="root node for rooted collectives")
    synth.add_argument("--name", default=None, help="name for the synthesized algorithm")
    synth.add_argument("--xml", default=None, metavar="FILE", help="export MSCCL-style XML")
    synth.add_argument("--plan", default=None, metavar="FILE", help="export a plan bundle")
    synth.add_argument("-q", "--quiet", action="store_true", help="omit the schedule dump")
    synth.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace-event JSON of the solve "
                       "(load in ui.perfetto.dev or chrome://tracing)")
    _add_engine_options(synth)
    _add_cache_options(synth, allow_disable=True)
    synth.set_defaults(func=_cmd_synthesize)

    # pareto -----------------------------------------------------------
    pareto = subparsers.add_parser(
        "pareto", help="run Pareto-Synthesize (Algorithm 1) for a collective"
    )
    pareto.add_argument("collective")
    _add_topology_option(pareto)
    pareto.add_argument("-k", type=int, default=0, help="synchrony budget (default 0)")
    pareto.add_argument("--root", type=int, default=0)
    pareto.add_argument("--max-steps", type=int, default=None)
    pareto.add_argument("--max-chunks", type=int, default=None)
    pareto.add_argument(
        "--strategy",
        choices=("serial", "incremental", "parallel", "speculative", "auto"),
        default="incremental",
        help="candidate-sweep strategy (default incremental; auto picks from "
        "the host's core count and the instance size)",
    )
    pareto.add_argument(
        "--no-bounds", action="store_true",
        help="disable baseline bound-seeding (probe every candidate instead "
        "of pruning those dominated by a verified baseline or an earlier SAT)",
    )
    pareto.add_argument("--max-workers", type=int, default=None,
                        help="worker processes for --strategy parallel/speculative")
    pareto.add_argument(
        "--portfolio", default=None, metavar="BACKENDS",
        help="comma-separated solver backends raced per candidate "
        "(requires --strategy speculative); first SAT/UNSAT verdict wins",
    )
    pareto.add_argument("--export-dir", default=None,
                        help="write every frontier algorithm into this directory")
    pareto.add_argument("--export-format", choices=("xml", "plan", "both"), default="xml")
    pareto.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the whole sweep "
                        "(per-candidate spans; load in ui.perfetto.dev)")
    _add_engine_options(pareto)
    _add_cache_options(pareto, allow_disable=True)
    pareto.set_defaults(func=_cmd_pareto)

    # export -----------------------------------------------------------
    export = subparsers.add_parser(
        "export", help="emit a cached or bundled algorithm as XML or a plan"
    )
    export.add_argument("collective", nargs="?", default=None)
    export.add_argument("-t", "--topology", default=None, help=TOPOLOGY_HELP)
    export.add_argument("-C", "--chunks", type=int, default=None)
    export.add_argument("-S", "--steps", type=int, default=None)
    export.add_argument("-R", "--rounds", type=int, default=None)
    export.add_argument("--root", type=int, default=0)
    export.add_argument("--plan-input", default=None, metavar="FILE",
                        help="export from a plan bundle instead of the cache")
    export.add_argument("--format", choices=("xml", "plan"), default="xml")
    export.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output file (default: stdout)")
    _add_cache_options(export)
    export.set_defaults(func=_cmd_export)

    # import -----------------------------------------------------------
    import_cmd = subparsers.add_parser(
        "import", help="parse an XML/plan file, re-verify it against the spec"
    )
    import_cmd.add_argument("file", help="XML or plan file to import")
    import_cmd.add_argument("--format", choices=("auto", "xml", "plan"), default="auto")
    import_cmd.add_argument("-t", "--topology", default=None,
                            help=f"override the embedded topology ({TOPOLOGY_HELP})")
    import_cmd.add_argument("--store", action="store_true",
                            help="persist the verified algorithm into the cache")
    import_cmd.add_argument("-q", "--quiet", action="store_true")
    _add_cache_options(import_cmd)
    import_cmd.set_defaults(func=_cmd_import)

    # cache ------------------------------------------------------------
    cache_cmd = subparsers.add_parser("cache", help="inspect and manage the algorithm cache")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)

    ls = cache_sub.add_parser("ls", help="list entries (least-recently-used first)")
    ls.add_argument("--keys", action="store_true", help="print full keys")
    _add_cache_options(ls)
    ls.set_defaults(func=_cmd_cache_ls)

    show = cache_sub.add_parser("show", help="show one entry by key (prefix allowed)")
    show.add_argument("key")
    show.add_argument("--json", action="store_true", help="dump the raw entry JSON")
    _add_cache_options(show)
    show.set_defaults(func=_cmd_cache_show)

    verify = cache_sub.add_parser("verify", help="re-verify every cached schedule")
    verify.add_argument("--drop", action="store_true", help="discard invalid entries")
    _add_cache_options(verify)
    verify.set_defaults(func=_cmd_cache_verify)

    evict = cache_sub.add_parser(
        "evict", help="LRU-prune the cache to size/age limits"
    )
    evict.add_argument("--max-entries", type=int, default=None, metavar="N")
    evict.add_argument("--max-bytes", type=int, default=None, metavar="B")
    evict.add_argument("--max-age-days", type=float, default=None, metavar="D")
    evict.add_argument("-v", "--verbose", action="store_true", help="print evicted keys")
    _add_cache_options(evict)
    evict.set_defaults(func=_cmd_cache_evict)

    clear = cache_sub.add_parser("clear", help="remove every entry")
    _add_cache_options(clear)
    clear.set_defaults(func=_cmd_cache_clear)

    # serve ------------------------------------------------------------
    from ..service.server import DEFAULT_HOST, DEFAULT_PORT

    serve = subparsers.add_parser(
        "serve", help="run the planning service (HTTP endpoint + worker pool)"
    )
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (0 picks a free one; default {DEFAULT_PORT})")
    serve.add_argument("--workers", type=int, default=2,
                       help="planning worker threads (default 2)")
    serve.add_argument("--routes-dir", default=None,
                       help="routing-table directory (default: <cache>/../routes)")
    _add_cache_options(serve)
    serve.set_defaults(func=_cmd_serve)

    # request ----------------------------------------------------------
    request = subparsers.add_parser(
        "request", help="ask a running planning service for a plan"
    )
    request.add_argument("collective", nargs="?", default=None,
                         help="collective name (omit with --stats)")
    request.add_argument("-t", "--topology", default=None, help=TOPOLOGY_HELP)
    request.add_argument("--stats", action="store_true",
                         help="print the service's /v1/stats counters "
                         "(broker, resolver ladder, bounds, cache) and exit")
    request.add_argument("-C", "--chunks", type=int, default=None,
                         help="pin the candidate: chunks per node")
    request.add_argument("-S", "--steps", type=int, default=None)
    request.add_argument("-R", "--rounds", type=int, default=None)
    request.add_argument("--root", type=int, default=0)
    request.add_argument("--size", type=int, default=None, metavar="BYTES",
                         help="route by per-node buffer size instead of pinning C/S/R")
    request.add_argument("-k", "--synchrony", type=int, default=2,
                         help="synchrony budget for routed-mode sweeps (default 2)")
    request.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="give up (and fall back to a baseline) after S seconds")
    request.add_argument("--backend", default=None, help="solver backend name")
    request.add_argument("--url", default=f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
                         help="service URL (default %(default)s)")
    request.add_argument("--local", action="store_true",
                         help="answer in-process instead of contacting a server")
    request.add_argument("--workers", type=int, default=2,
                         help="worker threads for --local (default 2)")
    request.add_argument("--routes-dir", default=None,
                         help="routing-table directory for --local")
    request.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="write the returned plan bundle to FILE")
    _add_cache_options(request)
    request.set_defaults(func=_cmd_request)

    # fault ------------------------------------------------------------
    fault = subparsers.add_parser(
        "fault",
        help="register, clear or inspect fabric faults on a running service",
    )
    fault.add_argument("action", choices=("register", "clear", "status"))
    _add_topology_option(fault)
    fault.add_argument("--link-down", action="append", default=None,
                       metavar="SRC:DST", help="declare a link dead (repeatable)")
    fault.add_argument("--rank-down", action="append", default=None,
                       metavar="RANK", help="declare a rank dead (repeatable)")
    fault.add_argument("--link-degraded", action="append", default=None,
                       metavar="SRC:DST[:AF[:BF]]",
                       help="inflate a link's alpha/beta by the given factors "
                       "(repeatable)")
    fault.add_argument("--url", default=f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
                       help="service URL (default %(default)s)")
    fault.add_argument("--preview", action="store_true",
                       help="derive and print the degraded topology locally "
                       "without contacting a server")
    fault.set_defaults(func=_cmd_fault)

    # run --------------------------------------------------------------
    run = subparsers.add_parser(
        "run", help="execute an imported plan/XML on the executor + simulator"
    )
    run.add_argument("file", help="plan bundle (.json) or MSCCL-style XML")
    run.add_argument("--format", choices=("auto", "xml", "plan"), default="auto")
    run.add_argument("--protocol", default="single_kernel_push",
                     help="lowering protocol (default single_kernel_push)")
    run.add_argument("--size", action="append", default=None, metavar="BYTES",
                     help="per-node buffer size to simulate (repeatable; "
                     "accepts K/M/G suffixes; default 1K, 1M, 128M)")
    run.set_defaults(func=_cmd_run)

    # trace ------------------------------------------------------------
    trace = subparsers.add_parser(
        "trace", help="summarize a Chrome trace written by --trace"
    )
    trace.add_argument("file", help="trace-event JSON file (from --trace FILE)")
    trace.add_argument("--top", type=int, default=0, metavar="N",
                       help="also list the N slowest individual spans")
    trace.add_argument("--diff", default=None, metavar="OTHER.json",
                       help="phase-by-phase comparison against a second trace "
                       "instead of a summary")
    trace.set_defaults(func=_cmd_trace)

    # perf -------------------------------------------------------------
    perf = subparsers.add_parser(
        "perf",
        help="query the persistent performance archive "
        "(~/.cache/repro/perf or $REPRO_PERF_DIR)",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _add_archive_option(p) -> None:
        p.add_argument("--archive-dir", default=None, metavar="DIR",
                       help="performance archive directory "
                       "(default: $REPRO_PERF_DIR or ~/.cache/repro/perf)")

    history = perf_sub.add_parser(
        "history", help="list archived runs (probes, sweeps, pareto, "
        "service requests, benchmarks)"
    )
    history.add_argument("--kind", default=None,
                         choices=("probe", "sweep", "pareto", "service", "bench"),
                         help="only records of this kind")
    history.add_argument("--limit", type=int, default=20, metavar="N",
                         help="show the N most recent records (0 = all)")
    history.add_argument("--this-host", action="store_true",
                         help="only records from this host's fingerprint")
    history.add_argument("--json", action="store_true",
                         help="dump the raw records as JSON")
    _add_archive_option(history)
    history.set_defaults(func=_cmd_perf_history)

    compare = perf_sub.add_parser(
        "compare", help="diff two archived runs phase by phase"
    )
    compare.add_argument("run_a", help="run-id/session/fingerprint prefix, "
                         "or @N for the Nth most recent record")
    compare.add_argument("run_b")
    _add_archive_option(compare)
    compare.set_defaults(func=_cmd_perf_compare)

    regressions = perf_sub.add_parser(
        "regressions",
        help="compare fresh BENCH_*.json files against the archived "
        "trajectory (the CI gate)",
    )
    regressions.add_argument("--bench-dir", default=None, metavar="DIR",
                             help="directory holding BENCH_*.json "
                             "(default: current directory)")
    regressions.add_argument("--baseline", default=None, metavar="RUN",
                             help="pin the baseline to specific archived runs "
                             "(run-id/session prefix or @N) instead of the "
                             "whole same-host trajectory median")
    regressions.add_argument("--max-slowdown", type=float, default=0.25,
                             metavar="FRAC",
                             help="relative slowdown tolerance for time/rate "
                             "metrics (default 0.25 = +25%%)")
    regressions.add_argument("--max-hit-rate-drop", type=float, default=0.05,
                             metavar="FRAC",
                             help="absolute drop tolerance for hit-rate/ratio "
                             "metrics (default 0.05)")
    regressions.add_argument("--min-wall", type=float, default=0.05,
                             metavar="S",
                             help="noise floor: timings under S seconds are "
                             "never judged (default 0.05)")
    regressions.add_argument("--warn-only", action="store_true",
                             help="report findings but always exit 0 "
                             "(an empty archive is warn-only by itself)")
    _add_archive_option(regressions)
    regressions.set_defaults(func=_cmd_perf_regressions)

    calibrate = perf_sub.add_parser(
        "calibrate",
        help="show the probe-time model strategy=\"auto\" would consult",
    )
    calibrate.add_argument("--check", default=None, metavar="TOPOLOGY",
                           help="also print the resolved strategy for this "
                           f"topology ({TOPOLOGY_HELP})")
    calibrate.add_argument("-k", "--synchrony", type=int, default=0,
                           help="synchrony budget for --check (default 0)")
    _add_archive_option(calibrate)
    calibrate.set_defaults(func=_cmd_perf_calibrate)

    # backends ---------------------------------------------------------
    backends = subparsers.add_parser("backends", help="list registered solver backends")
    backends.set_defaults(func=lambda args: print("\n".join(available_backends())) or 0)

    return parser


def _version_string() -> str:
    from .. import __version__

    return f"repro-sccl {__version__}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "export" and not args.plan_input:
        missing = [
            flag for flag, value in (
                ("collective", args.collective),
                ("--chunks", args.chunks),
                ("--steps", args.steps),
                ("--rounds", args.rounds),
            )
            if value is None
        ]
        if missing:
            parser.error(
                f"export needs {', '.join(missing)} (or --plan-input FILE)"
            )
    try:
        return int(args.func(args) or 0)
    except BrokenPipeError:
        # Downstream reader (head, grep -q) closed the pipe: not an error.
        return 0
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # surfaced engine/interchange errors
        print(f"repro: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface (``repro`` / ``python -m repro``).

See :mod:`repro.cli.main` for the subcommand reference.  The console script
is declared in ``pyproject.toml`` (``repro = "repro.cli:main"``).
"""

from .main import CliError, build_parser, main
from .topologies import TOPOLOGY_HELP, TopologySpecError, parse_topology

__all__ = [
    "CliError",
    "TOPOLOGY_HELP",
    "TopologySpecError",
    "build_parser",
    "main",
    "parse_topology",
]

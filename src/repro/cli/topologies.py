"""Topology specs for the command line.

A topology is named by a compact spec string so invocations stay
one-liners: ``ring:4``, ``fc:8:2`` (8 nodes, bandwidth 2 per link),
``torus:3x4``, ``dgx1``.  The machines from the paper's evaluation are
available by name.
"""

from __future__ import annotations

from ..topology import (
    Topology,
    amd_z52,
    dgx1,
    fully_connected,
    hypercube,
    line,
    ring,
    star,
    torus_2d,
)

#: Help text shown by every subcommand taking ``--topology``.
TOPOLOGY_HELP = (
    "topology spec: ring:N, line:N, star:N, fc:N (fully connected), "
    "hypercube:D, torus:RxC, dgx1, amd_z52; parameterized specs accept a "
    "trailing :BW link bandwidth (e.g. ring:8:2)"
)


class TopologySpecError(ValueError):
    """Raised for malformed topology spec strings."""


def parse_topology(spec: str) -> Topology:
    """Build a :class:`Topology` from a CLI spec string."""
    parts = [part for part in spec.strip().split(":") if part]
    if not parts:
        raise TopologySpecError("empty topology spec")
    name, args = parts[0].lower(), parts[1:]

    if name in ("dgx1", "dgx-1"):
        _expect_args(spec, args, 0)
        return dgx1()
    if name in ("amd_z52", "amd", "z52"):
        _expect_args(spec, args, 0)
        return amd_z52()

    builders = {
        "ring": ring,
        "line": line,
        "star": star,
        "fc": fully_connected,
        "fully_connected": fully_connected,
        "hypercube": hypercube,
    }
    if name in builders:
        if not 1 <= len(args) <= 2:
            raise TopologySpecError(
                f"{name} takes a size and an optional bandwidth, got {spec!r}"
            )
        size = _int_arg(spec, args[0])
        bandwidth = _int_arg(spec, args[1]) if len(args) == 2 else 1
        return builders[name](size, bandwidth)
    if name == "torus":
        if not 1 <= len(args) <= 2:
            raise TopologySpecError(f"torus takes RxC and an optional bandwidth, got {spec!r}")
        dims = args[0].lower().split("x")
        if len(dims) != 2:
            raise TopologySpecError(f"torus size must be RxC (e.g. torus:3x4), got {args[0]!r}")
        bandwidth = _int_arg(spec, args[1]) if len(args) == 2 else 1
        return torus_2d(_int_arg(spec, dims[0]), _int_arg(spec, dims[1]), bandwidth)

    raise TopologySpecError(f"unknown topology {name!r} in spec {spec!r} ({TOPOLOGY_HELP})")


def _expect_args(spec: str, args: list, count: int) -> None:
    if len(args) != count:
        raise TopologySpecError(f"spec {spec!r} takes no parameters")


def _int_arg(spec: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise TopologySpecError(f"non-integer parameter {raw!r} in spec {spec!r}") from exc

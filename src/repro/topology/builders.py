"""Constructors for common synthetic topologies.

These are the topologies used throughout the tests, the examples and the
paper's motivating discussion (the 4-node ring of Figure 2, fully-connected
groups, trees/stars, hypercubes and tori from the related-work algorithms).
All constructors return a :class:`~repro.topology.topology.Topology` whose
bandwidth relation consists of point-to-point constraints unless stated
otherwise.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .topology import BandwidthConstraint, Link, Topology, TopologyError


def ring(
    num_nodes: int,
    bandwidth: int = 1,
    bidirectional: bool = True,
    name: Optional[str] = None,
    alpha: float = 5e-6,
    beta: float = 1.0 / 25e9,
) -> Topology:
    """A ring of ``num_nodes`` nodes.

    With ``bidirectional=True`` (the default) each adjacent pair gets links
    in both directions, as in Figure 2 of the paper.
    """
    if num_nodes < 2:
        raise TopologyError("a ring needs at least 2 nodes")
    topo = Topology(
        name=name or f"ring{num_nodes}", num_nodes=num_nodes, alpha=alpha, beta=beta
    )
    for node in range(num_nodes):
        nxt = (node + 1) % num_nodes
        topo.add_link(node, nxt, bandwidth)
        if bidirectional:
            topo.add_link(nxt, node, bandwidth)
    return topo


def line(num_nodes: int, bandwidth: int = 1, name: Optional[str] = None) -> Topology:
    """A bidirectional path graph."""
    if num_nodes < 2:
        raise TopologyError("a line needs at least 2 nodes")
    topo = Topology(name=name or f"line{num_nodes}", num_nodes=num_nodes)
    for node in range(num_nodes - 1):
        topo.add_link(node, node + 1, bandwidth)
        topo.add_link(node + 1, node, bandwidth)
    return topo


def star(num_nodes: int, bandwidth: int = 1, center: int = 0, name: Optional[str] = None) -> Topology:
    """A star with ``center`` connected bidirectionally to every other node."""
    if num_nodes < 2:
        raise TopologyError("a star needs at least 2 nodes")
    if not 0 <= center < num_nodes:
        raise TopologyError("star center out of range")
    topo = Topology(name=name or f"star{num_nodes}", num_nodes=num_nodes)
    for node in range(num_nodes):
        if node == center:
            continue
        topo.add_link(center, node, bandwidth)
        topo.add_link(node, center, bandwidth)
    return topo


def fully_connected(num_nodes: int, bandwidth: int = 1, name: Optional[str] = None) -> Topology:
    """A complete directed graph (every ordered pair is a link)."""
    if num_nodes < 2:
        raise TopologyError("a fully connected topology needs at least 2 nodes")
    topo = Topology(name=name or f"fc{num_nodes}", num_nodes=num_nodes)
    for src in range(num_nodes):
        for dst in range(num_nodes):
            if src != dst:
                topo.add_link(src, dst, bandwidth)
    return topo


def hypercube(dimensions: int, bandwidth: int = 1, name: Optional[str] = None) -> Topology:
    """A binary hypercube with ``2 ** dimensions`` nodes."""
    if dimensions < 1:
        raise TopologyError("hypercube needs at least one dimension")
    num_nodes = 1 << dimensions
    topo = Topology(name=name or f"hypercube{dimensions}", num_nodes=num_nodes)
    for node in range(num_nodes):
        for bit in range(dimensions):
            peer = node ^ (1 << bit)
            topo.add_link(node, peer, bandwidth)
    return topo


def torus_2d(rows: int, cols: int, bandwidth: int = 1, name: Optional[str] = None) -> Topology:
    """A 2-D torus (wrap-around mesh); node (r, c) has index ``r * cols + c``."""
    if rows < 2 or cols < 2:
        raise TopologyError("torus needs at least 2x2 nodes")
    topo = Topology(name=name or f"torus{rows}x{cols}", num_nodes=rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            for peer in (right, down):
                topo.add_link(node, peer, bandwidth)
                topo.add_link(peer, node, bandwidth)
    return topo


def shared_bus(num_nodes: int, bandwidth: int = 1, name: Optional[str] = None) -> Topology:
    """All-to-all connectivity where only ``bandwidth`` messages total fit per round.

    This exercises the most general form of the bandwidth relation (a single
    constraint covering every link), as described in Section 3.2.1 for
    shared-bus topologies.
    """
    if num_nodes < 2:
        raise TopologyError("a shared bus needs at least 2 nodes")
    topo = Topology(name=name or f"bus{num_nodes}", num_nodes=num_nodes)
    links = [(s, d) for s in range(num_nodes) for d in range(num_nodes) if s != d]
    # Individual links exist (capacity = bus capacity)...
    for (s, d) in links:
        topo.add_link(s, d, bandwidth)
    # ...but the shared constraint caps the total per round.
    topo.add_shared_constraint(links, bandwidth, name="bus")
    return topo


def from_edge_list(
    num_nodes: int,
    edges: Iterable[Tuple[int, int, int]],
    name: str = "custom",
    alpha: float = 5e-6,
    beta: float = 1.0 / 25e9,
) -> Topology:
    """Build a topology from ``(src, dst, bandwidth)`` triples (directed)."""
    topo = Topology(name=name, num_nodes=num_nodes, alpha=alpha, beta=beta)
    for (src, dst, bandwidth) in edges:
        topo.add_link(src, dst, bandwidth)
    return topo

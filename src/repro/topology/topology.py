"""Topology model: nodes, links and the bandwidth relation B.

Section 3.2.1 of the paper models a topology as a node count ``P`` and a
*bandwidth relation* ``B ⊆ P([P] × [P]) × N``: each entry ``(L, b)`` bounds
the number of chunks that may traverse the set of directed links ``L``
during a single round by ``b``.  Point-to-point links, shared-bus segments
and per-node egress caps are all expressible this way, and the synthesis
encoding consumes the relation directly (constraint C5).

A :class:`Topology` additionally carries per-link latency/bandwidth figures
(``alpha``/``beta`` in the paper's cost model, Section 2.3) so that the
runtime simulator and the evaluation harness can turn synthesized schedules
into wall-clock estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

Link = Tuple[int, int]

#: Per-link latency assumed when a topology carries no explicit override
#: (the NVLink hop latency the simulator's cost model is calibrated to).
DEFAULT_LINK_LATENCY_S = 0.7e-6


class TopologyError(Exception):
    """Raised for malformed topologies or out-of-range nodes."""


@dataclass(frozen=True)
class BandwidthConstraint:
    """One entry ``(L, b)`` of the bandwidth relation.

    ``links`` is the set of directed links the constraint covers and
    ``bandwidth`` the maximum number of chunks that may cross those links in
    one round (multiplied by ``r_s`` for a step with ``r_s`` rounds).
    """

    links: FrozenSet[Link]
    bandwidth: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise TopologyError(f"negative bandwidth in constraint {self.name!r}")

    def covers(self, link: Link) -> bool:
        return link in self.links


@dataclass
class Topology:
    """A communication topology.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"dgx1"``).
    num_nodes:
        Number of nodes ``P``.
    constraints:
        The bandwidth relation ``B`` as a list of :class:`BandwidthConstraint`.
    alpha:
        Per-step fixed cost (seconds) used by the cost model.
    beta:
        Per-byte cost (seconds/byte) of a unit-bandwidth link.
    link_latency:
        Optional per-link latency overrides used by the simulator.
    link_beta_scale:
        Optional per-link multipliers on the per-byte cost (``> 1`` means
        slower than nominal).  Used by fault models to express degraded
        links without touching the structural bandwidth relation.
    provenance:
        Free-form metadata describing how a derived topology was obtained
        (e.g. the fault set applied to a healthy base topology).  Never
        part of the structural fingerprint.
    """

    name: str
    num_nodes: int
    constraints: List[BandwidthConstraint] = field(default_factory=list)
    alpha: float = 5e-6
    beta: float = 1.0 / 25e9
    link_latency: Dict[Link, float] = field(default_factory=dict)
    link_beta_scale: Dict[Link, float] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError("a topology needs at least one node")
        for constraint in self.constraints:
            for (src, dst) in constraint.links:
                self._check_node(src)
                self._check_node(dst)
                if src == dst:
                    raise TopologyError(f"self-loop {src}->{dst} is not allowed")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range for topology {self.name!r} with "
                f"{self.num_nodes} nodes"
            )

    # ------------------------------------------------------------------
    # Derived link structure
    # ------------------------------------------------------------------
    def nodes(self) -> range:
        return range(self.num_nodes)

    def links(self) -> Set[Link]:
        """All directed links with non-zero bandwidth (the set ``E`` in §3.4)."""
        capacity = self.link_capacity()
        return {link for link, cap in capacity.items() if cap > 0}

    def link_capacity(self) -> Dict[Link, int]:
        """Per-link effective capacity: the tightest bound over constraints covering it."""
        capacity: Dict[Link, int] = {}
        for constraint in self.constraints:
            for link in constraint.links:
                if link in capacity:
                    capacity[link] = min(capacity[link], constraint.bandwidth)
                else:
                    capacity[link] = constraint.bandwidth
        return capacity

    def out_neighbors(self, node: int) -> List[int]:
        self._check_node(node)
        return sorted({dst for (src, dst) in self.links() if src == node})

    def in_neighbors(self, node: int) -> List[int]:
        self._check_node(node)
        return sorted({src for (src, dst) in self.links() if dst == node})

    def degree(self, node: int) -> int:
        return len(self.out_neighbors(node))

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self.links()

    def bandwidth_between(self, src: int, dst: int) -> int:
        """Chunks per round that may flow on the direct link ``src -> dst`` (0 if absent)."""
        return self.link_capacity().get((src, dst), 0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_link(self, src: int, dst: int, bandwidth: int = 1, name: str = "") -> None:
        """Add a dedicated point-to-point constraint for one directed link."""
        self._check_node(src)
        self._check_node(dst)
        self.constraints.append(
            BandwidthConstraint(frozenset({(src, dst)}), bandwidth, name or f"{src}->{dst}")
        )

    def add_shared_constraint(
        self, links: Iterable[Link], bandwidth: int, name: str = ""
    ) -> None:
        """Add a constraint bounding the total traffic over a set of links."""
        link_set = frozenset(links)
        for (src, dst) in link_set:
            self._check_node(src)
            self._check_node(dst)
        self.constraints.append(BandwidthConstraint(link_set, bandwidth, name))

    def reversed(self) -> "Topology":
        """Return the topology with every link direction flipped.

        Used by the combining-collective reduction (Section 3.5): a Reduce
        algorithm is obtained by inverting a Broadcast algorithm *on the
        reversed topology*.
        """
        reversed_constraints = [
            BandwidthConstraint(
                frozenset((dst, src) for (src, dst) in c.links),
                c.bandwidth,
                c.name + "_rev" if c.name else "",
            )
            for c in self.constraints
        ]
        return Topology(
            name=self.name + "_reversed",
            num_nodes=self.num_nodes,
            constraints=reversed_constraints,
            alpha=self.alpha,
            beta=self.beta,
            link_latency={(d, s): v for (s, d), v in self.link_latency.items()},
            link_beta_scale={(d, s): v for (s, d), v in self.link_beta_scale.items()},
            provenance=dict(self.provenance),
        )

    def is_symmetric(self) -> bool:
        """True when every link has a same-capacity reverse link."""
        capacity = self.link_capacity()
        return all(capacity.get((dst, src)) == cap for (src, dst), cap in capacity.items())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human readable description (used by examples)."""
        lines = [f"Topology {self.name!r}: {self.num_nodes} nodes"]
        capacity = self.link_capacity()
        for (src, dst) in sorted(capacity):
            lines.append(f"  {src} -> {dst}  bandwidth {capacity[(src, dst)]} chunk(s)/round")
        shared = [c for c in self.constraints if len(c.links) > 1]
        if shared:
            lines.append("  shared constraints:")
            for c in shared:
                links = ", ".join(f"{s}->{d}" for (s, d) in sorted(c.links))
                lines.append(f"    [{links}] <= {c.bandwidth}/round ({c.name})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly serialization."""
        data = {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "alpha": self.alpha,
            "beta": self.beta,
            "constraints": [
                {
                    "links": sorted(list(c.links)),
                    "bandwidth": c.bandwidth,
                    "name": c.name,
                }
                for c in self.constraints
            ],
        }
        # Cost overrides and provenance are optional extras: omit them when
        # empty so documents produced before they existed stay byte-stable.
        if self.link_latency:
            data["link_latency"] = [
                [src, dst, value] for (src, dst), value in sorted(self.link_latency.items())
            ]
        if self.link_beta_scale:
            data["link_beta_scale"] = [
                [src, dst, value]
                for (src, dst), value in sorted(self.link_beta_scale.items())
            ]
        if self.provenance:
            data["provenance"] = dict(self.provenance)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        return cls(
            name=data["name"],
            num_nodes=data["num_nodes"],
            alpha=data.get("alpha", 5e-6),
            beta=data.get("beta", 1.0 / 25e9),
            constraints=[
                BandwidthConstraint(
                    frozenset(tuple(link) for link in entry["links"]),
                    entry["bandwidth"],
                    entry.get("name", ""),
                )
                for entry in data.get("constraints", [])
            ],
            link_latency={
                (int(src), int(dst)): float(value)
                for src, dst, value in data.get("link_latency", [])
            },
            link_beta_scale={
                (int(src), int(dst)): float(value)
                for src, dst, value in data.get("link_beta_scale", [])
            },
            provenance=dict(data.get("provenance", {})),
        )

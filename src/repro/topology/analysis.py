"""Topology analysis: distances, diameter, bisection bandwidth.

Algorithm 1 (Pareto-Synthesize) needs two lower bounds computed from the
topology:

* ``a_l`` — the latency lower bound, which is the diameter of the directed
  link graph (any chunk must be able to reach the farthest node that needs
  it, and each step moves a chunk by at most one hop), and
* ``b_l`` — the bandwidth lower bound, the *inverse bisection bandwidth*:
  for Allgather-style collectives every node must receive ``(P-1)/P`` of the
  global data, so the per-node incoming capacity bounds how fast any
  algorithm can finish.

This module also provides all-pairs shortest path distances used by the
encoder for pruning (a chunk cannot be present at a node earlier than its
graph distance from the chunk's source).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .topology import Link, Topology, TopologyError


def shortest_path_lengths(topology: Topology) -> Dict[int, Dict[int, int]]:
    """All-pairs unweighted shortest path lengths over directed links.

    Unreachable pairs are absent from the inner dictionaries.
    """
    adjacency: Dict[int, List[int]] = {n: [] for n in topology.nodes()}
    for (src, dst) in topology.links():
        adjacency[src].append(dst)
    distances: Dict[int, Dict[int, int]] = {}
    for source in topology.nodes():
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in dist:
                        dist[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        distances[source] = dist
    return distances


def distance(topology: Topology, src: int, dst: int) -> Optional[int]:
    """Length of the shortest directed path from ``src`` to ``dst`` (None if unreachable)."""
    return shortest_path_lengths(topology).get(src, {}).get(dst)


def is_strongly_connected(topology: Topology) -> bool:
    distances = shortest_path_lengths(topology)
    n = topology.num_nodes
    return all(len(distances[node]) == n for node in topology.nodes())


def diameter(topology: Topology) -> int:
    """Directed diameter; raises if the graph is not strongly connected."""
    distances = shortest_path_lengths(topology)
    worst = 0
    for source in topology.nodes():
        if len(distances[source]) != topology.num_nodes:
            missing = set(topology.nodes()) - set(distances[source])
            raise TopologyError(
                f"topology {topology.name!r} is not strongly connected: "
                f"{source} cannot reach {sorted(missing)}"
            )
        worst = max(worst, max(distances[source].values()))
    return worst


def node_in_capacity(topology: Topology, node: int) -> int:
    """Aggregate chunks/round that can arrive at ``node`` (its incoming capacity)."""
    capacity = topology.link_capacity()
    return sum(cap for (src, dst), cap in capacity.items() if dst == node)


def node_out_capacity(topology: Topology, node: int) -> int:
    capacity = topology.link_capacity()
    return sum(cap for (src, dst), cap in capacity.items() if src == node)


def min_node_in_capacity(topology: Topology) -> int:
    return min(node_in_capacity(topology, node) for node in topology.nodes())


def min_node_out_capacity(topology: Topology) -> int:
    return min(node_out_capacity(topology, node) for node in topology.nodes())


def cut_capacity(topology: Topology, part: Set[int]) -> int:
    """Capacity (chunks/round) of directed links crossing from outside ``part`` into it."""
    capacity = topology.link_capacity()
    return sum(
        cap for (src, dst), cap in capacity.items() if dst in part and src not in part
    )


def bisection_cut_capacity(topology: Topology, exact_limit: int = 12) -> int:
    """Minimum incoming capacity over all (near-)balanced bipartitions.

    For small node counts (``P <= exact_limit``) every balanced bipartition
    is enumerated; beyond that a node-local lower bound is used, which is
    exact for the topologies in the paper.
    """
    n = topology.num_nodes
    if n < 2:
        return 0
    half = n // 2
    if n <= exact_limit:
        best: Optional[int] = None
        nodes = list(topology.nodes())
        for subset in combinations(nodes, half):
            part = set(subset)
            cut = min(cut_capacity(topology, part), cut_capacity(topology, set(nodes) - part))
            if best is None or cut < best:
                best = cut
        return best if best is not None else 0
    return min_node_in_capacity(topology)


def inverse_bisection_bandwidth(
    topology: Topology, per_node_fraction: Optional[Fraction] = None
) -> Fraction:
    """Bandwidth lower bound ``b_l`` in rounds per (per-node) chunk.

    For an Allgather each node must receive the other ``P - 1`` nodes'
    data; with an aggregate incoming capacity of ``cap`` chunks per round
    the best achievable bandwidth cost (the ``R / C`` ratio of a schedule)
    is ``(P - 1) / cap``.  The DGX-1 figure from Section 2.4 — ``7/6`` —
    falls out of this directly (7 peer chunks over 6 incoming NVLinks).

    ``per_node_fraction`` overrides the numerator for collectives that move
    less data (e.g. Broadcast needs each non-root to receive 1 chunk's worth
    per input chunk).
    """
    cap = min_node_in_capacity(topology)
    if cap == 0:
        raise TopologyError(f"node with zero incoming capacity in {topology.name!r}")
    numerator = (
        per_node_fraction
        if per_node_fraction is not None
        else Fraction(topology.num_nodes - 1, 1)
    )
    return Fraction(numerator, cap)


def latency_lower_bound(topology: Topology) -> int:
    """Latency lower bound ``a_l`` = topology diameter (steps)."""
    return diameter(topology)


def link_utilization(topology: Topology, sends_per_link: Dict[Link, int]) -> Dict[Link, float]:
    """Fraction of per-round capacity consumed on each link for a set of sends.

    Used by tests and by the evaluation harness to sanity-check that
    synthesized schedules saturate the links they claim to saturate.
    """
    capacity = topology.link_capacity()
    utilization: Dict[Link, float] = {}
    for link, count in sends_per_link.items():
        cap = capacity.get(link, 0)
        if cap == 0:
            raise TopologyError(f"sends scheduled on non-existent link {link}")
        utilization[link] = count / cap
    return utilization


def to_networkx(topology: Topology):
    """Export the directed link graph to a :class:`networkx.DiGraph`.

    Link capacities become the ``capacity`` edge attribute.  The export is
    used by the examples for visualization/degree statistics and lets users
    run their own graph algorithms on modeled machines.
    """
    import networkx as nx

    graph = nx.DiGraph(name=topology.name)
    graph.add_nodes_from(topology.nodes())
    for (src, dst), cap in topology.link_capacity().items():
        if cap > 0:
            graph.add_edge(src, dst, capacity=cap)
    return graph

"""The Gigabyte Z52 topology with 8 AMD MI50 GPUs (Figure 3 / Section 5.1.2).

The machine has two xGMI "islands" of four GPUs each; within an island the
GPUs are linked by xGMI, and the islands are joined through PCIe 4.0
switches.  Following Section 5.2.2 the paper does **not** model xGMI's
transparent routing or the simultaneous use of xGMI and PCIe.  Instead it
models the machine as a single bidirectional 8-ring in which GPUs 1 and 5
bridge the two islands over PCIe, with the same per-link chunk rate for
xGMI and PCIe (the PCIe links bound the bisection bandwidth anyway).

The resulting ring order used here is ``0-2-3-1-7-6-4-5-0`` — GPU 1
connects its island (0, 2, 3) to GPU 5's island (4, 6, 7) through the PCIe
bridge 1-7 ... 5-0 closing of the cycle; the exact labeling of intermediate
ring members does not change any measured quantity (diameter 4, incoming
capacity 2/node), and the paper's Figure 3 admits several equivalent ring
embeddings.
"""

from __future__ import annotations

from typing import List, Tuple

from .topology import Topology

#: Ring order of the 8 MI50 GPUs once xGMI islands are bridged over PCIe.
Z52_RING_ORDER: Tuple[int, ...] = (0, 2, 3, 1, 7, 6, 4, 5)

#: Measured PCIe 4.0 x16 bandwidth (bytes/second); xGMI is modeled at the
#: same rate because the PCIe bridges bound any bandwidth-optimal schedule.
PCIE4_BANDWIDTH_BYTES_PER_S = 27e9

#: Per-step fixed overhead, seconds.
Z52_ALPHA_SECONDS = 8e-6


def amd_z52(
    alpha: float = Z52_ALPHA_SECONDS,
    beta: float = 1.0 / PCIE4_BANDWIDTH_BYTES_PER_S,
) -> Topology:
    """Build the Gigabyte Z52 (8x MI50) topology as a bidirectional 8-ring."""
    topo = Topology(name="amd_z52", num_nodes=8, alpha=alpha, beta=beta)
    order = Z52_RING_ORDER
    for i, node in enumerate(order):
        nxt = order[(i + 1) % len(order)]
        topo.add_link(node, nxt, bandwidth=1, name=f"link_{node}_{nxt}")
        topo.add_link(nxt, node, bandwidth=1, name=f"link_{nxt}_{node}")
    return topo


def amd_z52_ring_order() -> List[int]:
    """The ring order used to build :func:`amd_z52` (useful for baselines)."""
    return list(Z52_RING_ORDER)

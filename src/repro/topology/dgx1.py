"""The NVIDIA DGX-1 topology (Figure 1 / Section 5.1.1 / 5.2.1).

The DGX-1 has 8 V100 GPUs connected by NVLink.  The 8 GPUs form two
non-overlapping Hamiltonian cycles:

* ``0-1-4-5-6-7-2-3-0`` where every adjacent pair is connected by **two**
  NVLinks, and
* ``0-2-1-3-6-4-7-5-0`` where every adjacent pair is connected by **one**
  NVLink.

Both cycles are bidirectional, giving each GPU exactly 6 NVLink ports
(2 + 1 in each direction along its two cycles), i.e. an aggregate incoming
capacity of 6 chunks/round per GPU — which is where the paper's 7/6
bandwidth lower bound for Allgather comes from.

Following Section 5.2.1, the bandwidth relation contains one point-to-point
entry per connected GPU pair: ``({(n, n')}, 2)`` for pairs on the
double-NVLink cycle and ``({(n, n')}, 1)`` for pairs on the single-NVLink
cycle.  PCIe links to the host CPUs are not modeled (the paper ignores
them due to the NVLink/PCIe bandwidth disparity).
"""

from __future__ import annotations

from typing import List, Tuple

from .topology import Topology

#: Hamiltonian cycle whose edges carry two NVLinks each.
DOUBLE_NVLINK_CYCLE: Tuple[int, ...] = (0, 1, 4, 5, 6, 7, 2, 3)

#: Hamiltonian cycle whose edges carry a single NVLink each.
SINGLE_NVLINK_CYCLE: Tuple[int, ...] = (0, 2, 1, 3, 6, 4, 7, 5)

#: Measured NVLink bandwidth per link (bytes/second) used for the cost model.
NVLINK_BANDWIDTH_BYTES_PER_S = 25e9

#: Per-step fixed overhead (kernel launch / synchronization), seconds.
DGX1_ALPHA_SECONDS = 5e-6


def _cycle_edges(cycle: Tuple[int, ...]) -> List[Tuple[int, int]]:
    edges = []
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        edges.append((node, nxt))
        edges.append((nxt, node))
    return edges


def dgx1(
    alpha: float = DGX1_ALPHA_SECONDS,
    beta: float = 1.0 / NVLINK_BANDWIDTH_BYTES_PER_S,
) -> Topology:
    """Build the DGX-1 NVLink topology.

    Parameters mirror the (alpha, beta) cost model: ``alpha`` is the
    per-step latency and ``beta`` the per-byte time of a single NVLink.
    """
    topo = Topology(name="dgx1", num_nodes=8, alpha=alpha, beta=beta)
    for (src, dst) in _cycle_edges(DOUBLE_NVLINK_CYCLE):
        topo.add_link(src, dst, bandwidth=2, name=f"nvlink2_{src}_{dst}")
    for (src, dst) in _cycle_edges(SINGLE_NVLINK_CYCLE):
        topo.add_link(src, dst, bandwidth=1, name=f"nvlink1_{src}_{dst}")
    return topo


def dgx1_logical_rings() -> List[List[int]]:
    """The 6 logical single-NVLink rings NCCL uses on a DGX-1 (Section 2.4).

    The double-NVLink cycle contributes 2 rings per direction (4 total) and
    the single-NVLink cycle 1 per direction (2 total).
    """
    rings: List[List[int]] = []
    forward_double = list(DOUBLE_NVLINK_CYCLE)
    backward_double = list(reversed(DOUBLE_NVLINK_CYCLE))
    forward_single = list(SINGLE_NVLINK_CYCLE)
    backward_single = list(reversed(SINGLE_NVLINK_CYCLE))
    rings.append(forward_double)
    rings.append(forward_double)
    rings.append(backward_double)
    rings.append(backward_double)
    rings.append(forward_single)
    rings.append(backward_single)
    return rings

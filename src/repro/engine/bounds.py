"""Bound-seeded synthesis: baseline costs prune the (S, R, C) sweep lattice.

The baseline suite (:mod:`repro.baselines`) yields *verified* feasible
algorithms whose ``(steps, rounds, chunks)`` costs are free upper bounds on
the Pareto sweep — the same trick superoptimizers use when a cheap greedy
solution seeds the solver search.  A :class:`BoundsLedger` holds that
knowledge plus everything a running sweep learns, and turns it into a
per-step :class:`ProbePlan` that the dispatchers consult before issuing any
solver work.

The lattice algebra rests on one monotonicity fact about SynColl
instances, the *feasibility cone*: an algorithm for ``(S0, R0, C0)`` is
also an algorithm for every ``(S, R, C)`` with ``S >= S0``, ``R >= R0``
and ``C <= C0`` (steps can be split, idle rounds padded, and surplus chunk
levels dropped).  Its contrapositive is the monotone UNSAT cut: UNSAT at
``(S, R, C)`` kills every ``(S', R', C')`` with ``S' <= S``, ``R' <= R``
and ``C' >= C`` on the same structure.

Three pruning rules follow:

* **cut** — a candidate inside a recorded UNSAT's monotone shadow is
  answered with a synthetic UNSAT result (no solver call); the result
  stream stays byte-identical to an unseeded sweep.
* **frontier prune** — once an earlier step count produced a SAT of
  bandwidth cost ``beta_f``, any candidate at a later step count with cost
  ``>= beta_f`` can only yield a Pareto-dominated point (same-or-worse
  bandwidth at strictly worse latency); it is skipped outright.
* **baseline prune** — a candidate with cost *strictly worse* than a
  verified baseline of step count ``<= S`` is dominated by an algorithm we
  already ship; it is skipped outright.  (Strictly: a candidate *matching*
  a baseline's bandwidth may still be the bandwidth-optimal frontier
  terminal and must be probed.)

Cuts preserve the probe stream byte for byte; prunes drop only points the
unseeded sweep would have marked ``pareto_optimal=False`` (or points
dominated by a shipped baseline), so the Pareto-optimal frontier subset is
byte-identical with bounds on or off.  The over-prune guard is structural:
feasible points enter the ledger only after :meth:`Algorithm.verify`, and
:meth:`add_feasible` / :meth:`add_infeasible` raise :class:`BoundsError`
on any feasible/infeasible cone overlap instead of silently mispruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology import Topology


class BoundsError(Exception):
    """Raised when the bounds ledger would become inconsistent."""


#: Plan actions, one per candidate: issue the probe, answer it with a
#: synthetic UNSAT (monotone cut), or skip it entirely (dominance prune).
PROBE = "probe"
CUT = "cut"
PRUNE = "prune"


@dataclass(frozen=True)
class FeasiblePoint:
    """One known-feasible lattice point and where it came from."""

    steps: int
    rounds: int
    chunks: int
    source: str  # "baseline:<name>" or "sweep"

    @property
    def bandwidth(self) -> Fraction:
        return Fraction(self.rounds, self.chunks)


@dataclass(frozen=True)
class ProbePlan:
    """Per-candidate actions for one fixed-``S`` sweep, in candidate order."""

    steps: int
    actions: Tuple[str, ...]
    #: Cut witnesses by candidate index: the recorded UNSAT that kills it.
    witnesses: Dict[int, Tuple[int, int, int]]

    @property
    def probes(self) -> int:
        return sum(1 for a in self.actions if a == PROBE)

    @property
    def cuts(self) -> int:
        return sum(1 for a in self.actions if a == CUT)

    @property
    def pruned(self) -> int:
        return sum(1 for a in self.actions if a == PRUNE)


def _in_feasible_cone(point: FeasiblePoint, steps: int, rounds: int, chunks: int) -> bool:
    """Does ``point`` witness feasibility of ``(steps, rounds, chunks)``?"""
    return point.steps <= steps and point.rounds <= rounds and point.chunks >= chunks


def _in_infeasible_shadow(
    witness: Tuple[int, int, int], steps: int, rounds: int, chunks: int
) -> bool:
    """Does UNSAT ``witness`` kill ``(steps, rounds, chunks)``?"""
    w_steps, w_rounds, w_chunks = witness
    return steps <= w_steps and rounds <= w_rounds and chunks >= w_chunks


class BoundsLedger:
    """Feasible/infeasible knowledge about one ``(collective, topology, root)``.

    The ledger is seeded from the baseline suite (:func:`seed_ledger`) and
    fed every committed sweep result via :meth:`observe`.  Dispatchers ask
    it for a :meth:`plan` per step count; baseline-derived and sweep-derived
    feasible points are tracked separately because they prune differently
    (strict vs non-strict bandwidth comparison — see the module docstring).
    """

    def __init__(self, collective: str, topology: Topology, *, root: int = 0) -> None:
        self.collective = collective
        self.topology = topology
        self.root = root
        self._baselines: List[FeasiblePoint] = []
        self._sweep_sats: List[FeasiblePoint] = []
        self._infeasible: List[Tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_feasible(
        self, steps: int, rounds: int, chunks: int, *, source: str = "sweep"
    ) -> None:
        """Record a known-feasible lattice point.

        Raises :class:`BoundsError` if the point sits inside a recorded
        UNSAT's shadow — that would mean a bound was wrong, and a wrong
        bound must fail loudly rather than over-prune silently.
        """
        if steps < 1 or rounds < steps or chunks < 1:
            raise BoundsError(
                f"invalid lattice point (S={steps}, R={rounds}, C={chunks})"
            )
        witness = self.known_infeasible(steps, rounds, chunks)
        if witness is not None:
            raise BoundsError(
                f"feasible point (S={steps}, R={rounds}, C={chunks}) contradicts "
                f"recorded UNSAT at (S={witness[0]}, R={witness[1]}, C={witness[2]})"
            )
        point = FeasiblePoint(steps, rounds, chunks, source)
        store = self._baselines if source.startswith("baseline") else self._sweep_sats
        # Keep only cone-maximal knowledge: drop the new point if an existing
        # one already witnesses it, and existing points the new one subsumes.
        if any(_in_feasible_cone(p, steps, rounds, chunks) for p in store):
            return
        store[:] = [
            p for p in store if not _in_feasible_cone(point, p.steps, p.rounds, p.chunks)
        ]
        store.append(point)

    def add_infeasible(self, steps: int, rounds: int, chunks: int) -> None:
        """Record a proven-UNSAT lattice point (and its monotone shadow)."""
        if steps < 1 or rounds < steps or chunks < 1:
            raise BoundsError(
                f"invalid lattice point (S={steps}, R={rounds}, C={chunks})"
            )
        feasible = self.known_feasible(steps, rounds, chunks)
        if feasible is not None:
            raise BoundsError(
                f"UNSAT at (S={steps}, R={rounds}, C={chunks}) contradicts "
                f"known-feasible point from {feasible}"
            )
        witness = (steps, rounds, chunks)
        if self.known_infeasible(steps, rounds, chunks) is not None:
            return
        self._infeasible = [
            w for w in self._infeasible if not _in_infeasible_shadow(witness, *w)
        ]
        self._infeasible.append(witness)

    def observe(self, result) -> None:
        """Fold one sweep :class:`~repro.core.synthesizer.SynthesisResult` in.

        SAT and UNSAT verdicts are sound knowledge (including cache
        replays); UNKNOWN carries none and is ignored.  Synthetic cut
        results re-state what the ledger already knows and are skipped.
        """
        if getattr(result, "provenance", "solved") == "cut":
            return
        instance = result.instance
        if result.is_sat:
            self.add_feasible(
                instance.steps, instance.rounds, instance.chunks_per_node
            )
        elif result.is_unsat:
            self.add_infeasible(
                instance.steps, instance.rounds, instance.chunks_per_node
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def known_feasible(self, steps: int, rounds: int, chunks: int) -> Optional[str]:
        """The source witnessing feasibility of a point, or ``None``."""
        for point in self._baselines + self._sweep_sats:
            if _in_feasible_cone(point, steps, rounds, chunks):
                return point.source
        return None

    def known_infeasible(
        self, steps: int, rounds: int, chunks: int
    ) -> Optional[Tuple[int, int, int]]:
        """The recorded UNSAT whose shadow covers a point, or ``None``."""
        for witness in self._infeasible:
            if _in_infeasible_shadow(witness, steps, rounds, chunks):
                return witness
        return None

    def frontier_cap(self, steps: int) -> Optional[Fraction]:
        """Best bandwidth cost among sweep SATs at *strictly earlier* steps."""
        costs = [p.bandwidth for p in self._sweep_sats if p.steps < steps]
        return min(costs) if costs else None

    def baseline_cap(self, steps: int) -> Optional[Fraction]:
        """Best bandwidth cost among baselines at step count ``<= steps``."""
        costs = [p.bandwidth for p in self._baselines if p.steps <= steps]
        return min(costs) if costs else None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self, steps: int, candidates: Sequence[Tuple[int, int]]
    ) -> ProbePlan:
        """Classify each ``(rounds, chunks)`` candidate of a fixed-``S`` sweep.

        Candidates arrive in ascending bandwidth-cost order, so the prune
        decisions form a tail; each candidate is still judged independently
        so the algebra holds for arbitrary point sets too.
        """
        beta_f = self.frontier_cap(steps)
        beta_b = self.baseline_cap(steps)
        actions: List[str] = []
        witnesses: Dict[int, Tuple[int, int, int]] = {}
        for index, (rounds, chunks) in enumerate(candidates):
            cost = Fraction(rounds, chunks)
            if (beta_f is not None and cost >= beta_f) or (
                beta_b is not None and cost > beta_b
            ):
                actions.append(PRUNE)
                continue
            witness = self.known_infeasible(steps, rounds, chunks)
            if witness is not None:
                actions.append(CUT)
                witnesses[index] = witness
                continue
            actions.append(PROBE)
        return ProbePlan(steps=steps, actions=tuple(actions), witnesses=witnesses)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sources(self) -> List[str]:
        """Provenance of every seeded upper bound (stable order)."""
        return sorted({p.source for p in self._baselines})

    def stats(self) -> Dict[str, object]:
        return {
            "baseline_points": [
                [p.steps, p.rounds, p.chunks] for p in self._baselines
            ],
            "baseline_sources": self.sources(),
            "sweep_sats": len(self._sweep_sats),
            "infeasible": len(self._infeasible),
        }

    def describe(self) -> str:
        return (
            f"BoundsLedger({self.collective} on {self.topology.name}: "
            f"{len(self._baselines)} baseline bound(s) "
            f"[{', '.join(self.sources()) or 'none'}], "
            f"{len(self._sweep_sats)} sweep SAT(s), "
            f"{len(self._infeasible)} UNSAT witness(es))"
        )


def cut_result(
    collective: str,
    topology: Topology,
    steps: int,
    rounds: int,
    chunks: int,
    *,
    root: int = 0,
    witness: Optional[Tuple[int, int, int]] = None,
    backend: str = "bounds",
):
    """A synthetic UNSAT result for a candidate killed by a monotone cut.

    Positionally byte-identical to a solver UNSAT in the sweep's result
    stream; ``provenance="cut"`` records that no solver ran, and the
    witness travels in ``solver_stats`` for forensics.
    """
    from ..core.instance import make_instance
    from ..core.synthesizer import SynthesisResult
    from ..solver import SolveResult

    instance = make_instance(collective, topology, chunks, steps, rounds, root=root)
    stats: Dict[str, float] = {}
    if witness is not None:
        stats = {
            "cut_witness_steps": witness[0],
            "cut_witness_rounds": witness[1],
            "cut_witness_chunks": witness[2],
        }
    return SynthesisResult(
        instance=instance,
        status=SolveResult.UNSAT,
        backend=backend,
        solver_stats=stats,
        provenance="cut",
    )


def seed_ledger(collective: str, topology: Topology, *, root: int = 0) -> BoundsLedger:
    """Build a ledger seeded with every applicable verified baseline.

    Baselines that do not fit the collective or topology (no Hamiltonian
    ring, unmodeled fabric, ...) are skipped; each admitted bound comes
    from an algorithm that passed :meth:`Algorithm.verify`, so a seeded
    bound can never claim feasibility the lattice does not have.
    """
    from ..baselines.suite import baseline_suite

    ledger = BoundsLedger(collective, topology, root=root)
    for baseline in baseline_suite(collective, topology, root=root):
        steps, rounds, chunks = baseline.cost()
        ledger.add_feasible(steps, rounds, chunks, source=f"baseline:{baseline.name}")
    return ledger

"""Incremental synthesis sessions: encode once, probe many candidates.

A :class:`IncrementalSession` fixes everything about a SynColl candidate
except the total round count ``R``: the collective, topology, per-node
chunk count ``C`` and step count ``S``.  It builds a single
:class:`~repro.core.encoding.ScclEncoding` with a rounds budget of
``max_rounds``, loads the CNF into one persistent solver handle, and
answers each ``solve(R)`` probe with assumption literals over the
rounds-budget selector layer — reusing the solver's learned clauses across
probes instead of re-encoding and re-solving from a cold start, exactly the
assumption interface :meth:`repro.solver.sat.SATSolver.solve` already
exposed but nothing above it used.

A :class:`SessionFamily` generalizes this across the whole ``(S, C)``
lattice: per step count ``S`` it owns one *shared-prefix* encoding
(``chunk_selector=True``) built at that sweep's chunk and rounds budgets,
so every ``(C, R)`` candidate of a fixed-``S`` sweep is a per-candidate
assumption frame over one encoding and one persistent solver — one encode
per ``S`` instead of one per distinct ``C``.  The ``S``-independent
reachability analysis is computed once per family and shared by every
per-``S`` encoding, and a candidate beyond the current chunk budget grows
the encoding in place (:meth:`ScclEncoding.extend_chunks`) instead of
re-encoding the shared time/send substructure.

Satisfiability is identical to a cold encode at the probed candidate:
widening the per-step round domains is inert once the total is pinned
(every other step performs at least one round, so no step can exceed
``R - (S - 1)``), the selector assumptions force the total exactly, and
disabled chunk levels can neither send nor owe postconditions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.encoding import PrefixAnalysis, ScclEncoding
from ..core.instance import SynCollInstance, make_instance
from ..solver import SolveResult
from ..telemetry import get_metrics, get_tracer
from ..topology import Topology
from .backends import SolverBackend, SolverHandle, get_backend


class SessionError(Exception):
    """Raised for invalid incremental-session requests."""


class IncrementalSession:
    """One encoding + one solver serving a fixed-``(S, C)`` rounds sweep."""

    def __init__(
        self,
        collective: str,
        topology: Topology,
        chunks_per_node: int,
        steps: int,
        max_rounds: int,
        *,
        root: int = 0,
        prune: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        if max_rounds < steps:
            raise SessionError(
                f"max_rounds ({max_rounds}) must be at least steps ({steps})"
            )
        self.collective = collective
        self.topology = topology
        self.chunks_per_node = chunks_per_node
        self.steps = steps
        self.max_rounds = max_rounds
        self.root = root
        self.prune = prune
        self.backend_name = (backend or get_backend().name)
        self._backend: SolverBackend = get_backend(backend)
        # The encoding is built against the *budget* instance; individual
        # probes rebuild the instance at their own R for reporting.
        self._budget_instance = make_instance(
            collective, topology, chunks_per_node, steps, max_rounds, root=root
        )
        self._encoder: Optional[ScclEncoding] = None
        self._handle: Optional[SolverHandle] = None
        self._trivially_unsat = False
        self.encode_calls = 0
        self.solver_calls = 0
        self.encode_time = 0.0
        self._prev_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lazy setup
    # ------------------------------------------------------------------
    def _ensure_encoded(self) -> None:
        if self._encoder is not None:
            return
        with get_tracer().span(
            "encode", S=self.steps, C=self.chunks_per_node, R=self.max_rounds
        ):
            start = time.monotonic()
            encoder = ScclEncoding(
                self._budget_instance, prune=self.prune, rounds_budget=self.max_rounds
            )
            ctx = encoder.encode()
            self.encode_time = time.monotonic() - start
        self.encode_calls += 1
        get_metrics().observe("repro_encode_seconds", self.encode_time)
        handle = self._backend.create()
        if not handle.load(ctx.cnf):
            self._trivially_unsat = True
        self._encoder = encoder
        self._handle = handle

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def solve(
        self,
        rounds: int,
        *,
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        verify: bool = True,
        name: Optional[str] = None,
    ):
        """Probe the candidate ``(C, S, rounds)``; returns a SynthesisResult."""
        from ..core.synthesizer import SynthesisError, SynthesisResult

        if not self.steps <= rounds <= self.max_rounds:
            raise SessionError(
                f"rounds {rounds} outside the session budget "
                f"[{self.steps}, {self.max_rounds}]"
            )
        instance = make_instance(
            self.collective, self.topology, self.chunks_per_node,
            self.steps, rounds, root=self.root,
        )
        tracer = get_tracer()
        with tracer.span(
            "probe",
            collective=self.collective,
            C=self.chunks_per_node,
            S=self.steps,
            R=rounds,
            encoding="sccl",
            backend=self.backend_name,
        ) as probe_span:
            first_solve = self._encoder is None
            self._ensure_encoded()
            assert self._encoder is not None and self._handle is not None
            # Mirror the serial path's accounting: the one-time encoding cost
            # is attributed to the probe that paid it.
            encode_time = self.encode_time if first_solve else 0.0

            if self._trivially_unsat:
                status = SolveResult.UNSAT
                solve_time = 0.0
                solver_stats: Dict[str, float] = {}
            else:
                assumptions = self._encoder.rounds_assumptions(rounds)
                with tracer.span("solve", backend=self.backend_name):
                    start = time.monotonic()
                    status = self._handle.solve(
                        assumptions, conflict_limit=conflict_limit,
                        time_limit=time_limit,
                    )
                    solve_time = time.monotonic() - start
                solver_stats = self._delta_stats(self._handle.stats())
            self.solver_calls += 1
            metrics = get_metrics()
            metrics.inc("repro_solver_calls_total", backend=self.backend_name)
            metrics.observe(
                "repro_solve_seconds", solve_time, backend=self.backend_name
            )
            probe_span.set(verdict=status.value, cache_hit=False)

            result = SynthesisResult(
                instance=instance,
                status=status,
                encode_time=encode_time,
                solve_time=solve_time,
                encoding_stats=self._encoder.stats.as_dict(),
                solver_stats=solver_stats,
                encoding="sccl",
                backend=self.backend_name,
            )
            if status is SolveResult.SAT:
                algorithm = self._encoder.decode(self._handle.model(), name=name)
                if verify:
                    with tracer.span("verify"):
                        start = time.monotonic()
                        try:
                            algorithm.verify()
                        except Exception as exc:  # pragma: no cover - encoder bug guard
                            raise SynthesisError(
                                f"decoded algorithm fails verification: {exc}"
                            ) from exc
                        result.verify_time = time.monotonic() - start
                if algorithm.total_rounds != rounds:  # pragma: no cover - selector guard
                    raise SynthesisError(
                        f"rounds selector leak: asked for {rounds} rounds, decoded "
                        f"{algorithm.total_rounds}"
                    )
                result.algorithm = algorithm
            return result

    def _delta_stats(self, raw: Dict[str, float]) -> Dict[str, float]:
        """Per-probe solver statistics.

        The handle's counters are cumulative across the session's probes;
        reporting the per-call difference keeps each SynthesisResult's
        accounting comparable to a cold solve.  High-water marks (which are
        not additive) are passed through unchanged.
        """
        watermarks = {"max_decision_level"}
        delta = {
            key: value if key in watermarks else value - self._prev_stats.get(key, 0)
            for key, value in raw.items()
        }
        self._prev_stats = dict(raw)
        return delta

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"IncrementalSession({self.collective} on {self.topology.name}: "
            f"C={self.chunks_per_node}, S={self.steps}, R<={self.max_rounds}, "
            f"backend={self.backend_name}, encodes={self.encode_calls}, "
            f"solves={self.solver_calls})"
        )


@dataclass
class _FamilyEntry:
    """One step count's shared-prefix encoding plus its solver handle."""

    encoder: ScclEncoding
    handle: SolverHandle
    trivially_unsat: bool = False
    pending_encode_time: float = 0.0  # attributed to the next probe
    prev_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def chunks_budget(self) -> int:
        return self.encoder.instance.chunks_per_node

    @property
    def rounds_budget(self) -> int:
        return self.encoder.rounds_budget or self.encoder.instance.rounds


class SessionFamily:
    """Shared-prefix encodings across the whole ``(S, C, R)`` lattice.

    The family owns one chunk-selector encoding (and one persistent solver
    handle) per step count ``S``; :meth:`solve` answers any ``(S, C, R)``
    candidate with a per-candidate assumption frame, so a fixed-``S``
    candidate sweep pays exactly one encoding, and the reachability
    analysis behind variable pruning is computed once for the whole
    family.  Chunk counts beyond an encoding's budget extend it in place;
    rounds beyond the budget rebuild that step count's encoding (the round
    variables' domains cannot be widened after the fact), which callers
    avoid by passing the sweep's known budgets up front via ``max_chunks``
    / ``max_rounds``.
    """

    def __init__(
        self,
        collective: str,
        topology: Topology,
        *,
        root: int = 0,
        prune: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self.collective = collective
        self.topology = topology
        self.root = root
        self.prune = prune
        self.backend_name = (backend or get_backend().name)
        self._backend: SolverBackend = get_backend(backend)
        self._analysis = PrefixAnalysis(topology)
        self._entries: Dict[int, _FamilyEntry] = {}
        self.encode_calls = 0      # full encodes + in-place extensions
        self.extensions = 0        # chunk-budget growths (subset of the above)
        self.rebuilds = 0          # rounds-budget overflows (full re-encodes)
        self.solver_calls = 0
        self.encode_time = 0.0

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _budget_instance(self, steps: int, chunks: int, rounds: int) -> SynCollInstance:
        return make_instance(
            self.collective, self.topology, chunks, steps, rounds, root=self.root
        )

    def _build_entry(self, steps: int, chunks: int, rounds: int) -> _FamilyEntry:
        with get_tracer().span("encode", S=steps, C=chunks, R=rounds, family=True):
            start = time.monotonic()
            encoder = ScclEncoding(
                self._budget_instance(steps, chunks, rounds),
                prune=self.prune,
                rounds_budget=rounds,
                chunk_selector=True,
                analysis=self._analysis,
            )
            ctx = encoder.encode()
            elapsed = time.monotonic() - start
        self.encode_time += elapsed
        self.encode_calls += 1
        get_metrics().observe("repro_encode_seconds", elapsed)
        handle = self._backend.create()
        loaded = handle.load(ctx.cnf)
        entry = _FamilyEntry(
            encoder=encoder,
            handle=handle,
            trivially_unsat=not loaded,
            pending_encode_time=elapsed,
        )
        self._entries[steps] = entry
        return entry

    def _entry_for(
        self, steps: int, chunks: int, rounds: int,
        max_chunks: Optional[int], max_rounds: Optional[int],
    ) -> _FamilyEntry:
        want_chunks = max(chunks, max_chunks or 0)
        want_rounds = max(rounds, max_rounds or 0)
        entry = self._entries.get(steps)
        if entry is None:
            return self._build_entry(steps, want_chunks, want_rounds)
        if want_rounds > entry.rounds_budget:
            # Round domains are fixed at creation; rebuild this step count
            # at the larger budget (the analysis prefix is still shared).
            self.rebuilds += 1
            get_metrics().inc("repro_family_rebuilds_total")
            return self._build_entry(
                steps, max(want_chunks, entry.chunks_budget), want_rounds
            )
        if want_chunks > entry.chunks_budget:
            with get_tracer().span(
                "extend", S=steps, C=want_chunks, family=True
            ):
                start = time.monotonic()
                ctx = entry.encoder.extend_chunks(
                    self._budget_instance(steps, want_chunks, entry.rounds_budget)
                )
                elapsed = time.monotonic() - start
            self.encode_time += elapsed
            self.encode_calls += 1
            self.extensions += 1
            get_metrics().inc("repro_family_extensions_total")
            get_metrics().observe("repro_encode_seconds", elapsed)
            # The formula grew: reload a fresh handle (learned clauses from
            # the smaller prefix are dropped, the encoding work is kept).
            handle = self._backend.create()
            entry.handle = handle
            entry.trivially_unsat = not handle.load(ctx.cnf)
            entry.prev_stats = {}
            entry.pending_encode_time += elapsed
        return entry

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def solve(
        self,
        steps: int,
        chunks: int,
        rounds: int,
        *,
        max_chunks: Optional[int] = None,
        max_rounds: Optional[int] = None,
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        verify: bool = True,
        name: Optional[str] = None,
    ):
        """Probe one ``(S, C, R)`` candidate; returns a SynthesisResult."""
        from ..core.synthesizer import SynthesisError, SynthesisResult

        if rounds < steps:
            raise SessionError(
                f"rounds {rounds} below the step count {steps}"
            )
        if chunks < 1:
            raise SessionError(f"chunk count must be positive, got {chunks}")
        instance = self._budget_instance(steps, chunks, rounds)
        tracer = get_tracer()
        probe_ctx = tracer.span(
            "probe",
            collective=self.collective,
            C=chunks,
            S=steps,
            R=rounds,
            encoding="sccl",
            backend=self.backend_name,
        )
        with probe_ctx as probe_span:
            entry = self._entry_for(steps, chunks, rounds, max_chunks, max_rounds)
            encode_time, entry.pending_encode_time = entry.pending_encode_time, 0.0

            if entry.trivially_unsat:
                status = SolveResult.UNSAT
                solve_time = 0.0
                solver_stats: Dict[str, float] = {}
            else:
                assumptions = entry.encoder.frame_assumptions(chunks, rounds)
                with tracer.span("solve", backend=self.backend_name):
                    start = time.monotonic()
                    status = entry.handle.solve(
                        assumptions, conflict_limit=conflict_limit,
                        time_limit=time_limit,
                    )
                    solve_time = time.monotonic() - start
                raw = entry.handle.stats()
                watermarks = {"max_decision_level"}
                solver_stats = {
                    key: value if key in watermarks else value - entry.prev_stats.get(key, 0)
                    for key, value in raw.items()
                }
                entry.prev_stats = dict(raw)
            self.solver_calls += 1
            metrics = get_metrics()
            metrics.inc("repro_solver_calls_total", backend=self.backend_name)
            metrics.observe(
                "repro_solve_seconds", solve_time, backend=self.backend_name
            )
            probe_span.set(verdict=status.value, cache_hit=False)

            result = SynthesisResult(
                instance=instance,
                status=status,
                encode_time=encode_time,
                solve_time=solve_time,
                encoding_stats=entry.encoder.stats.as_dict(),
                solver_stats=solver_stats,
                encoding="sccl",
                backend=self.backend_name,
            )
            if status is SolveResult.SAT:
                algorithm = entry.encoder.decode(
                    entry.handle.model(), name=name, instance=instance
                )
                if verify:
                    with tracer.span("verify"):
                        start = time.monotonic()
                        try:
                            algorithm.verify()
                        except Exception as exc:  # pragma: no cover - encoder bug guard
                            raise SynthesisError(
                                f"decoded algorithm fails verification: {exc}"
                            ) from exc
                        result.verify_time = time.monotonic() - start
                if algorithm.total_rounds != rounds:  # pragma: no cover - selector guard
                    raise SynthesisError(
                        f"rounds selector leak: asked for {rounds} rounds, decoded "
                        f"{algorithm.total_rounds}"
                    )
                if algorithm.num_chunks != instance.num_chunks:  # pragma: no cover
                    raise SynthesisError(
                        f"chunk selector leak: asked for {instance.num_chunks} chunks, "
                        f"decoded {algorithm.num_chunks}"
                    )
                result.algorithm = algorithm
            return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        budgets = ", ".join(
            f"S={steps}:C<={entry.chunks_budget},R<={entry.rounds_budget}"
            for steps, entry in sorted(self._entries.items())
        )
        return (
            f"SessionFamily({self.collective} on {self.topology.name}: "
            f"[{budgets}] backend={self.backend_name}, "
            f"encodes={self.encode_calls} (+{self.extensions} ext, "
            f"{self.rebuilds} rebuilds), solves={self.solver_calls})"
        )

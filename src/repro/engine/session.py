"""Incremental synthesis sessions: encode once, probe many rounds budgets.

A :class:`IncrementalSession` fixes everything about a SynColl candidate
except the total round count ``R``: the collective, topology, per-node
chunk count ``C`` and step count ``S``.  It builds a single
:class:`~repro.core.encoding.ScclEncoding` with a rounds budget of
``max_rounds``, loads the CNF into one persistent solver handle, and
answers each ``solve(R)`` probe with assumption literals over the
rounds-budget selector layer — reusing the solver's learned clauses across
probes instead of re-encoding and re-solving from a cold start, exactly the
assumption interface :meth:`repro.solver.sat.SATSolver.solve` already
exposed but nothing above it used.

Satisfiability is identical to a cold encode at the probed ``R``: widening
the per-step round domains is inert once the total is pinned (every other
step performs at least one round, so no step can exceed ``R - (S - 1)``),
and the selector assumptions force the total exactly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.encoding import ScclEncoding
from ..core.instance import SynCollInstance, make_instance
from ..solver import SolveResult
from ..topology import Topology
from .backends import SolverBackend, SolverHandle, get_backend


class SessionError(Exception):
    """Raised for invalid incremental-session requests."""


class IncrementalSession:
    """One encoding + one solver serving a fixed-``(S, C)`` rounds sweep."""

    def __init__(
        self,
        collective: str,
        topology: Topology,
        chunks_per_node: int,
        steps: int,
        max_rounds: int,
        *,
        root: int = 0,
        prune: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        if max_rounds < steps:
            raise SessionError(
                f"max_rounds ({max_rounds}) must be at least steps ({steps})"
            )
        self.collective = collective
        self.topology = topology
        self.chunks_per_node = chunks_per_node
        self.steps = steps
        self.max_rounds = max_rounds
        self.root = root
        self.prune = prune
        self.backend_name = (backend or get_backend().name)
        self._backend: SolverBackend = get_backend(backend)
        # The encoding is built against the *budget* instance; individual
        # probes rebuild the instance at their own R for reporting.
        self._budget_instance = make_instance(
            collective, topology, chunks_per_node, steps, max_rounds, root=root
        )
        self._encoder: Optional[ScclEncoding] = None
        self._handle: Optional[SolverHandle] = None
        self._trivially_unsat = False
        self.encode_calls = 0
        self.solver_calls = 0
        self.encode_time = 0.0
        self._prev_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lazy setup
    # ------------------------------------------------------------------
    def _ensure_encoded(self) -> None:
        if self._encoder is not None:
            return
        start = time.monotonic()
        encoder = ScclEncoding(
            self._budget_instance, prune=self.prune, rounds_budget=self.max_rounds
        )
        ctx = encoder.encode()
        self.encode_time = time.monotonic() - start
        self.encode_calls += 1
        handle = self._backend.create()
        if not handle.load(ctx.cnf):
            self._trivially_unsat = True
        self._encoder = encoder
        self._handle = handle

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def solve(
        self,
        rounds: int,
        *,
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        verify: bool = True,
        name: Optional[str] = None,
    ):
        """Probe the candidate ``(C, S, rounds)``; returns a SynthesisResult."""
        from ..core.synthesizer import SynthesisError, SynthesisResult

        if not self.steps <= rounds <= self.max_rounds:
            raise SessionError(
                f"rounds {rounds} outside the session budget "
                f"[{self.steps}, {self.max_rounds}]"
            )
        instance = make_instance(
            self.collective, self.topology, self.chunks_per_node,
            self.steps, rounds, root=self.root,
        )
        first_solve = self._encoder is None
        self._ensure_encoded()
        assert self._encoder is not None and self._handle is not None
        # Mirror the serial path's accounting: the one-time encoding cost is
        # attributed to the probe that paid it.
        encode_time = self.encode_time if first_solve else 0.0

        if self._trivially_unsat:
            status = SolveResult.UNSAT
            solve_time = 0.0
            solver_stats: Dict[str, float] = {}
        else:
            assumptions = self._encoder.rounds_assumptions(rounds)
            start = time.monotonic()
            status = self._handle.solve(
                assumptions, conflict_limit=conflict_limit, time_limit=time_limit
            )
            solve_time = time.monotonic() - start
            solver_stats = self._delta_stats(self._handle.stats())
        self.solver_calls += 1

        result = SynthesisResult(
            instance=instance,
            status=status,
            encode_time=encode_time,
            solve_time=solve_time,
            encoding_stats=self._encoder.stats.as_dict(),
            solver_stats=solver_stats,
            encoding="sccl",
            backend=self.backend_name,
        )
        if status is SolveResult.SAT:
            algorithm = self._encoder.decode(self._handle.model(), name=name)
            if verify:
                try:
                    algorithm.verify()
                except Exception as exc:  # pragma: no cover - encoder bug guard
                    raise SynthesisError(
                        f"decoded algorithm fails verification: {exc}"
                    ) from exc
            if algorithm.total_rounds != rounds:  # pragma: no cover - selector guard
                raise SynthesisError(
                    f"rounds selector leak: asked for {rounds} rounds, decoded "
                    f"{algorithm.total_rounds}"
                )
            result.algorithm = algorithm
        return result

    def _delta_stats(self, raw: Dict[str, float]) -> Dict[str, float]:
        """Per-probe solver statistics.

        The handle's counters are cumulative across the session's probes;
        reporting the per-call difference keeps each SynthesisResult's
        accounting comparable to a cold solve.  High-water marks (which are
        not additive) are passed through unchanged.
        """
        watermarks = {"max_decision_level"}
        delta = {
            key: value if key in watermarks else value - self._prev_stats.get(key, 0)
            for key, value in raw.items()
        }
        self._prev_stats = dict(raw)
        return delta

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"IncrementalSession({self.collective} on {self.topology.name}: "
            f"C={self.chunks_per_node}, S={self.steps}, R<={self.max_rounds}, "
            f"backend={self.backend_name}, encodes={self.encode_calls}, "
            f"solves={self.solver_calls})"
        )

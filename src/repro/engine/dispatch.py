"""Candidate-sweep dispatchers for Pareto-Synthesize.

Algorithm 1 probes, for each step count ``S``, an ordered list of ``(R, C)``
candidates and keeps the first satisfiable one.  The dispatchers here are
interchangeable strategies for executing that probe list:

* :class:`SerialDispatcher` — the paper's loop: one cold encode+solve per
  candidate, in cost order, stopping at the first SAT.
* :class:`IncrementalDispatcher` — drives each fixed-``S`` sweep through a
  :class:`~repro.engine.session.SessionFamily`: one shared-prefix encoding
  per step count serves *every* ``(R, C)`` candidate via per-candidate
  assumption frames, so a sweep pays one encoding total (previously one
  per distinct ``C``), and the reachability analysis is shared across step
  counts.
* :class:`ParallelDispatcher` — fans candidates across a process pool and
  then *replays* the serial decision rule over the results in candidate
  order, so the reported outcome (and hence the Pareto frontier) is
  byte-identical to the serial path; the parallelism is opportunistic, in
  the PopPy sense — extra completed probes past the first SAT are discarded.
* :class:`SpeculativeDispatcher` — the cross-``S`` pipeline: given the whole
  sweep sequence (:meth:`~SpeculativeDispatcher.sweep_many`), it keeps the
  pool fed with candidates from the next ``lookahead`` step counts while
  the current one is still in flight, cancels losers the moment a cheaper
  SAT lands, and commits results strictly in cost order — so its frontier
  is byte-identical to the serial dispatcher's even though completion order
  is arbitrary.  An optional backend *portfolio* races several solver
  backends on each candidate and takes the first SAT/UNSAT verdict.

All dispatchers consult and populate the algorithm cache when one is
supplied, and report uniform :class:`SweepStats` so callers can account
encodes, solver calls and cache hits.  The process-pool dispatchers ship
the shared sweep context (topology, limits, backend objects) once per
worker via the pool initializer; per-candidate task payloads are just the
``(S, R, C, backend)`` tuple.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.instance import make_instance
from ..telemetry import Span, get_metrics, get_tracer
from ..topology import Topology
from .backends import QUARANTINE, BackendQuarantine, get_backend
from .bounds import CUT, PROBE, PRUNE, BoundsLedger, ProbePlan, cut_result
from .cache import AlgorithmCache, lookup_result, store_result
from .session import SessionFamily


class DispatchError(Exception):
    """Raised for invalid dispatcher configurations."""


@dataclass(frozen=True)
class SweepRequest:
    """One fixed-``S`` candidate sweep: the (R, C) list in probe order."""

    collective: str
    topology: Topology
    steps: int
    candidates: Tuple[Tuple[int, int], ...]  # (rounds, chunks) in cost order
    root: int = 0
    encoding: str = "sccl"
    prune: bool = True
    backend: Optional[str] = None
    time_limit: Optional[float] = None
    conflict_limit: Optional[int] = None
    stop_at_first_sat: bool = True
    #: The deterministic UNKNOWN policy: when a probe through a derived
    #: formula (a shared-prefix family frame) comes back UNKNOWN, retry the
    #: *exact* standalone formula with the same per-probe budget before
    #: conceding the lattice point.  Strategies that already solve exact
    #: formulas (serial/parallel/speculative) are unaffected, so frontiers
    #: agree across strategies under resource limits.
    unknown_retry: bool = True
    #: Bound-seeded pruning: a shared :class:`~repro.engine.bounds.BoundsLedger`
    #: consulted before any solver work.  Candidates it classifies as
    #: dominance-pruned are skipped outright, candidates inside a recorded
    #: UNSAT's monotone shadow are answered with a synthetic cut result, and
    #: every committed verdict is fed back via ``observe`` so later sweeps
    #: prune harder.  ``None`` disables seeding (the pre-bounds behaviour).
    bounds: Optional[BoundsLedger] = None


@dataclass
class SweepStats:
    """Work accounting for one or more sweeps."""

    encode_calls: int = 0
    solver_calls: int = 0
    cache_hits: int = 0
    candidates_probed: int = 0
    unknown_retries: int = 0
    #: Candidates skipped outright by dominance pruning (no result emitted).
    probes_pruned: int = 0
    #: Candidates answered by a synthetic monotone-cut UNSAT (no solver call).
    probes_cut: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.encode_calls += other.encode_calls
        self.solver_calls += other.solver_calls
        self.cache_hits += other.cache_hits
        self.candidates_probed += other.candidates_probed
        self.unknown_retries += other.unknown_retries
        self.probes_pruned += other.probes_pruned
        self.probes_cut += other.probes_cut

    def as_dict(self) -> Dict[str, int]:
        return {
            "encode_calls": self.encode_calls,
            "solver_calls": self.solver_calls,
            "cache_hits": self.cache_hits,
            "candidates_probed": self.candidates_probed,
            "unknown_retries": self.unknown_retries,
            "probes_pruned": self.probes_pruned,
            "probes_cut": self.probes_cut,
        }


@dataclass
class SweepOutcome:
    """Per-candidate results in probe order, truncated by the serial rule."""

    results: List = field(default_factory=list)  # List[SynthesisResult]
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def first_sat(self):
        for result in self.results:
            if result.is_sat:
                return result
        return None


def _account(stats: SweepStats, result) -> None:
    stats.candidates_probed += 1
    if result.cache_hit:
        stats.cache_hits += 1
    else:
        stats.encode_calls += 1
        stats.solver_calls += 1


def _publish_bounds_metrics(stats: SweepStats) -> None:
    """Mirror one sweep's bounds accounting into the metrics registry.

    Published once per *committed* sweep, straight from the stats the
    caller reports, so the ``repro_bounds_candidates_total`` series equals
    the SweepStats totals by construction — in particular, speculative
    ``_try_commit`` replays (which build and discard partial outcomes)
    never double-count.
    """
    metrics = get_metrics()
    if stats.candidates_probed:
        metrics.inc(
            "repro_bounds_candidates_total",
            value=float(stats.candidates_probed), action="probed",
        )
    if stats.probes_pruned:
        metrics.inc(
            "repro_bounds_candidates_total",
            value=float(stats.probes_pruned), action="pruned",
        )
    if stats.probes_cut:
        metrics.inc(
            "repro_bounds_candidates_total",
            value=float(stats.probes_cut), action="cut",
        )


def _commit_sweep_telemetry(
    strategy: str, request: SweepRequest, outcome: SweepOutcome
) -> None:
    """Publish one committed sweep: metrics registry + performance archive.

    Called exactly once per committed sweep by every dispatcher (the
    speculative path calls it from ``_try_commit``, whose discarded partial
    replays never reach here), so the archive's ``sweep`` records and the
    ``repro_bounds_candidates_total`` series agree by construction.
    """
    from ..telemetry import exact_quantiles, record_run

    _publish_bounds_metrics(outcome.stats)
    solved = [r for r in outcome.results if not r.cache_hit]
    first_sat = outcome.first_sat
    record_run(
        "sweep",
        name=f"{request.collective}/{request.topology.name}/S{request.steps}",
        features={
            "nodes": request.topology.num_nodes,
            "S": request.steps,
            "candidates": len(request.candidates),
        },
        strategy=strategy,
        backend=(
            outcome.results[0].backend if outcome.results
            else (request.backend or "")
        ),
        verdict=first_sat.status.value if first_sat is not None else "unsat",
        wall_s=sum(r.encode_time + r.solve_time + r.verify_time for r in solved),
        phases={
            "encode_s": round(sum(r.encode_time for r in solved), 6),
            "solve_s": round(sum(r.solve_time for r in solved), 6),
            "verify_s": round(sum(r.verify_time for r in solved), 6),
        },
        quantiles={
            f"solve_{key}": value
            for key, value in exact_quantiles(
                [r.solve_time for r in solved]
            ).items()
        },
        extra=outcome.stats.as_dict(),
    )


def _cached_result(request: SweepRequest, rounds: int, chunks: int, cache):
    """Resolve one candidate against the cache (None on a miss or no cache)."""
    if cache is None:
        return None
    instance = make_instance(
        request.collective, request.topology, chunks,
        request.steps, rounds, root=request.root,
    )
    return lookup_result(
        cache, instance, encoding=request.encoding, prune=request.prune
    )


def _plan_probes(request: SweepRequest) -> Optional[ProbePlan]:
    """The bounds ledger's verdict on this sweep's candidates (None unseeded).

    Planned *before* any cache lookup, so warm replays make the same
    probe/cut/prune decisions as the cold run that filled the cache.
    """
    if request.bounds is None:
        return None
    return request.bounds.plan(request.steps, request.candidates)


def _plan_action(plan: Optional[ProbePlan], index: int) -> str:
    return PROBE if plan is None else plan.actions[index]


def _cut_for(request: SweepRequest, plan: ProbePlan, index: int, cache):
    """Materialize the synthetic UNSAT for a cut candidate (and persist it)."""
    rounds, chunks = request.candidates[index]
    result = cut_result(
        request.collective, request.topology, request.steps, rounds, chunks,
        root=request.root, witness=plan.witnesses.get(index),
    )
    if cache is not None:
        store_result(cache, result, encoding=request.encoding, prune=request.prune)
    return result


class SerialDispatcher:
    """Cold encode+solve per candidate — the seed behaviour, cache-aware."""

    name = "serial"

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        from ..core.synthesizer import synthesize

        outcome = SweepOutcome()
        plan = _plan_probes(request)
        with get_tracer().span(
            "sweep", strategy=self.name, S=request.steps,
            collective=request.collective,
        ):
            for index, (rounds, chunks) in enumerate(request.candidates):
                action = _plan_action(plan, index)
                if action == PRUNE:
                    outcome.stats.probes_pruned += 1
                    continue
                if action == CUT:
                    outcome.stats.probes_cut += 1
                    outcome.results.append(_cut_for(request, plan, index, cache))
                    continue
                instance = make_instance(
                    request.collective, request.topology, chunks,
                    request.steps, rounds, root=request.root,
                )
                result = synthesize(
                    instance,
                    encoding=request.encoding,
                    prune=request.prune,
                    time_limit=request.time_limit,
                    conflict_limit=request.conflict_limit,
                    backend=request.backend,
                    cache=cache,
                )
                _account(outcome.stats, result)
                if request.bounds is not None:
                    request.bounds.observe(result)
                outcome.results.append(result)
                if result.is_sat and request.stop_at_first_sat:
                    break
        _commit_sweep_telemetry(self.name, request, outcome)
        return outcome


class IncrementalDispatcher:
    """Assumption-based probing over shared-prefix family encodings.

    Each sweep is served by a :class:`SessionFamily` held across ``sweep``
    calls, so a whole Pareto run pays one encoding per step count — every
    ``(R, C)`` candidate is an assumption frame over it — and the
    reachability analysis behind variable pruning is computed once per
    (collective, topology).  Falls back to the serial dispatcher for the
    naive ablation encoding, which has no selector layers.
    """

    name = "incremental"

    def __init__(self) -> None:
        self._families: Dict[tuple, SessionFamily] = {}

    def _family(self, request: SweepRequest) -> SessionFamily:
        key = (
            request.collective, id(request.topology), request.root,
            request.prune, request.backend or "",
        )
        family = self._families.get(key)
        if family is None:
            family = SessionFamily(
                request.collective,
                request.topology,
                root=request.root,
                prune=request.prune,
                backend=request.backend,
            )
            self._families[key] = family
        return family

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        if request.encoding != "sccl":
            return SerialDispatcher().sweep(request, cache)

        outcome = SweepOutcome()
        family = self._family(request)
        plan = _plan_probes(request)
        # Size-adaptive family budget: the chunk selector starts at the first
        # probed candidate's C and grows on demand (SessionFamily extends the
        # chunk layer in place), so a sweep whose large-C candidates were all
        # pruned never pays for their selector variables.  Rounds overflow
        # forces a rebuild, so the rounds budget is still sized up front —
        # but only over the candidates that will actually be probed.
        max_rounds = max(
            (
                r
                for index, (r, _) in enumerate(request.candidates)
                if _plan_action(plan, index) == PROBE
            ),
            default=request.steps,
        )
        tracer = get_tracer()
        with tracer.span(
            "sweep", strategy=self.name, S=request.steps,
            collective=request.collective,
        ):
            for index, (rounds, chunks) in enumerate(request.candidates):
                action = _plan_action(plan, index)
                if action == PRUNE:
                    outcome.stats.probes_pruned += 1
                    continue
                if action == CUT:
                    outcome.stats.probes_cut += 1
                    outcome.results.append(_cut_for(request, plan, index, cache))
                    continue
                cached = _cached_result(request, rounds, chunks, cache)
                if cached is not None:
                    result = cached
                    outcome.stats.cache_hits += 1
                    outcome.stats.candidates_probed += 1
                    # family.solve was never entered, so emit the replayed
                    # candidate's probe event here (zero duration).
                    tracer.instant(
                        "probe",
                        collective=request.collective, C=chunks,
                        S=request.steps, R=rounds,
                        verdict=result.status.value, cache_hit=True,
                        backend=result.backend,
                    )
                else:
                    before = family.encode_calls
                    result = family.solve(
                        request.steps,
                        chunks,
                        rounds,
                        max_rounds=max_rounds,
                        time_limit=request.time_limit,
                        conflict_limit=request.conflict_limit,
                    )
                    outcome.stats.encode_calls += family.encode_calls - before
                    outcome.stats.solver_calls += 1
                    outcome.stats.candidates_probed += 1
                    if result.is_unknown and request.unknown_retry:
                        result = self._retry_exact(request, rounds, chunks, result, outcome)
                    if cache is not None:
                        store_result(
                            cache, result, encoding=request.encoding, prune=request.prune
                        )
                if request.bounds is not None:
                    request.bounds.observe(result)
                outcome.results.append(result)
                if result.is_sat and request.stop_at_first_sat:
                    break
        _commit_sweep_telemetry(self.name, request, outcome)
        return outcome

    @staticmethod
    def _retry_exact(
        request: SweepRequest, rounds: int, chunks: int, family_result, outcome: SweepOutcome
    ):
        """The deterministic UNKNOWN policy (see :class:`SweepRequest`).

        A family frame solves a *larger* shared formula under assumptions,
        so it can exhaust a budget where the standalone formula would not —
        and the serial strategy, which always solves standalone formulas,
        would then disagree with this one on the frontier.  Retrying the
        exact formula with the same per-probe budget restores agreement;
        the family's SAT/UNSAT verdicts are sound and are never retried.
        """
        from ..core.synthesizer import synthesize

        instance = make_instance(
            request.collective, request.topology, chunks,
            request.steps, rounds, root=request.root,
        )
        retry = synthesize(
            instance,
            encoding=request.encoding,
            prune=request.prune,
            time_limit=request.time_limit,
            conflict_limit=request.conflict_limit,
            backend=request.backend,
        )
        outcome.stats.unknown_retries += 1
        outcome.stats.encode_calls += 1
        outcome.stats.solver_calls += 1
        return retry if not retry.is_unknown else family_result


# ----------------------------------------------------------------------
# Process-pool workers
# ----------------------------------------------------------------------
#: Per-worker sweep context installed by the pool initializer, so the
#: request payload (topology object, limits, backend objects) is pickled
#: once per worker instead of once per candidate task.
_WORKER_SHARED: Optional[dict] = None


def _init_candidate_worker(shared: dict) -> None:
    """Pool initializer: install the shared sweep context in this worker.

    A worker process starts with a fresh registry (only the default and
    any import-time backends), so runtime-registered backends travel as
    pickled objects once per worker and are re-registered here.
    """
    global _WORKER_SHARED
    from .backends import register_backend

    for backend_obj in shared.get("backend_objs", ()):
        register_backend(backend_obj, replace=True)
    _WORKER_SHARED = shared


def _solve_candidate_worker(task: Tuple[int, int, int, Optional[str], bool]):
    """Solve one interned ``(steps, rounds, chunks, backend, store)`` task."""
    from ..core.synthesizer import synthesize

    shared = _WORKER_SHARED
    if shared is None:  # pragma: no cover - initializer contract
        raise DispatchError("worker used before _init_candidate_worker ran")
    steps, rounds, chunks, backend, store_cache = task
    cache = (
        AlgorithmCache(shared["cache_dir"])
        if shared["cache_dir"] and store_cache
        else None
    )
    instance = make_instance(
        shared["collective"], shared["topology"], chunks, steps, rounds,
        root=shared["root"],
    )
    kwargs = dict(
        encoding=shared["encoding"],
        prune=shared["prune"],
        time_limit=shared["time_limit"],
        conflict_limit=shared["conflict_limit"],
        backend=backend,
        cache=cache,
    )
    if not shared.get("trace"):
        return synthesize(instance, **kwargs)
    # The parent is tracing: record this probe with a private worker tracer
    # and ship the span forest back in the pickled result.  The parent
    # re-parents it under its sweep span, keeping this process's pid/tid.
    from ..telemetry import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        result = synthesize(instance, **kwargs)
    result.trace = tracer.export()
    return result


def _shared_payload(
    request: SweepRequest,
    cache: Optional[AlgorithmCache],
    backend_objs: Sequence[object],
) -> dict:
    return {
        "collective": request.collective,
        "topology": request.topology,
        "root": request.root,
        "encoding": request.encoding,
        "prune": request.prune,
        "time_limit": request.time_limit,
        "conflict_limit": request.conflict_limit,
        "cache_dir": str(cache.root) if cache is not None else None,
        "backend_objs": list(backend_objs),
        "trace": get_tracer().enabled,
    }


def _ingest_worker_result(result, span) -> None:
    """Fold one pool-worker result into the parent's telemetry.

    Worker processes run with their own (discarded) metrics registry, so
    the parent replays the per-result counters here — for *every* worker
    completion it consumes, including speculative losers: the solver time
    was honestly spent even when the replay rule later discards the
    result.  Worker-recorded spans are grafted under ``span`` with their
    original pid/tid so Perfetto renders one track per worker.
    """
    metrics = get_metrics()
    if result.cache_hit:
        metrics.inc("repro_cache_lookups_total", outcome="hit")
    else:
        metrics.inc("repro_solver_calls_total", backend=result.backend)
        metrics.observe(
            "repro_solve_seconds", result.solve_time, backend=result.backend
        )
        metrics.observe("repro_encode_seconds", result.encode_time)
    if result.trace:
        if isinstance(span, Span):
            span.adopt(result.trace)
        result.trace = None


class ParallelDispatcher:
    """Process-pool fan-out with deterministic serial-replay semantics."""

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise DispatchError("max_workers must be at least 1")
        self.max_workers = max_workers

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        # Fail fast on unknown backend names before spawning any workers.
        backend_obj = get_backend(request.backend)
        candidates = list(request.candidates)
        if len(candidates) <= 1 or self.max_workers == 1:
            return SerialDispatcher().sweep(request, cache)

        outcome = SweepOutcome()
        plan = _plan_probes(request)
        tracer = get_tracer()
        with tracer.span(
            "sweep", strategy=self.name, S=request.steps,
            collective=request.collective,
        ) as sweep_span:
            # Fast path: resolve cuts and cache hits in-process before
            # spawning workers; pruned candidates never reach the pool (or
            # the cache).
            results: List = [None] * len(candidates)
            pending: List[int] = []
            parent_hits: Set[int] = set()
            for index, (rounds, chunks) in enumerate(candidates):
                action = _plan_action(plan, index)
                if action == PRUNE:
                    continue  # accounted during the ordered replay below
                if action == CUT:
                    results[index] = _cut_for(request, plan, index, cache)
                    continue
                cached = _cached_result(request, rounds, chunks, cache)
                if cached is not None:
                    results[index] = cached
                    parent_hits.add(index)
                else:
                    pending.append(index)

            if request.stop_at_first_sat:
                # A SAT cache hit already decides the sweep at its position;
                # candidates after it would be discarded by the replay.
                for index, cached in enumerate(results):
                    if cached is not None and cached.is_sat:
                        pending = [i for i in pending if i < index]
                        break

            if pending:
                shared = _shared_payload(request, cache, [backend_obj])
                workers = min(self.max_workers or os.cpu_count() or 1, len(pending))
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_candidate_worker,
                    initargs=(shared,),
                ) as pool:
                    try:
                        futures = {
                            index: pool.submit(
                                _solve_candidate_worker,
                                (
                                    request.steps,
                                    candidates[index][0],
                                    candidates[index][1],
                                    request.backend,
                                    True,
                                ),
                            )
                            for index in pending
                        }
                        # Consume in candidate order; once the decisive ordered
                        # prefix is resolved (first SAT under stop_at_first_sat),
                        # cancel the rest — their results would be discarded by
                        # the replay anyway.
                        for index in pending:
                            results[index] = futures[index].result()
                            _ingest_worker_result(results[index], sweep_span)
                            if results[index].is_sat and request.stop_at_first_sat:
                                break
                    finally:
                        pool.shutdown(wait=False, cancel_futures=True)

            # Replay the serial decision rule over the ordered results so the
            # observable outcome is identical to SerialDispatcher's.
            for index, result in enumerate(results):
                action = _plan_action(plan, index)
                if action == PRUNE:
                    outcome.stats.probes_pruned += 1
                    continue
                if result is None:
                    break  # probes past the first SAT that were cancelled
                if action == CUT:
                    outcome.stats.probes_cut += 1
                    outcome.results.append(result)
                    continue
                if index in parent_hits:
                    # Resolved from the parent's cache before the pool ran:
                    # no worker span exists, so emit the probe event here.
                    tracer.instant(
                        "probe",
                        collective=request.collective,
                        C=candidates[index][1], S=request.steps,
                        R=candidates[index][0],
                        verdict=result.status.value, cache_hit=True,
                        backend=result.backend,
                    )
                _account(outcome.stats, result)
                if request.bounds is not None:
                    request.bounds.observe(result)
                outcome.results.append(result)
                if result.is_sat and request.stop_at_first_sat:
                    break
        _commit_sweep_telemetry(self.name, request, outcome)
        return outcome


# ----------------------------------------------------------------------
# Speculative cross-S pipeline
# ----------------------------------------------------------------------
@dataclass
class _SweepState:
    """In-flight bookkeeping for one request of a speculative batch."""

    request: SweepRequest
    candidates: List[Tuple[int, int]]
    results: List  # Optional[SynthesisResult] per candidate index
    inflight: Set[int] = field(default_factory=set)  # indices awaiting a verdict
    sat_bound: Optional[int] = None  # smallest index known SAT
    verdicts: Dict[int, List] = field(default_factory=dict)  # portfolio returns
    #: Free-floating "sweep" span for this step count (``tracer.open``) —
    #: several stay open at once while the pipeline speculates; closed with
    #: ``committed=True/False`` at commit / batch teardown.  ``NULL_SPAN``
    #: (not a :class:`Span`) when tracing is disabled.
    span: object = None
    #: Indices resolved from the parent's cache at prepare time; their
    #: probe events are synthesized at commit (workers never saw them).
    cached: Set[int] = field(default_factory=set)

    def note_sat(self, index: int) -> None:
        if self.sat_bound is None or index < self.sat_bound:
            self.sat_bound = index


class SpeculativeDispatcher:
    """Cross-``S`` speculative fan-out with deterministic cost-order commits.

    :meth:`sweep_many` receives the whole sweep sequence (one request per
    step count, in enumeration order) plus an optional ``stop`` predicate
    (Algorithm 1's bandwidth-optimality test).  Candidates are fanned over
    one process pool: the current step count's probes are submitted first
    and the next ``lookahead`` step counts are kept in flight behind them,
    so the pool never drains while a slow UNSAT proof blocks the frontier
    decision.  Completion order is arbitrary, but results are *committed*
    strictly in (step count, cost) order and each sweep is truncated by the
    serial first-SAT rule, so the observable outcome — and therefore the
    Pareto frontier — is byte-identical to running the serial dispatcher
    over the same sequence.  Losers are cancelled as soon as a cheaper SAT
    or a satisfied ``stop`` predicate makes them irrelevant; a cancelled
    sweep simply never produces an outcome (its slot stays ``None``).

    ``portfolio`` names several registered solver backends to race on every
    candidate: the first SAT/UNSAT verdict wins and the sibling runs are
    cancelled; UNKNOWN only wins when every backend returns it.  Racing
    keeps the *frontier signatures* deterministic (satisfiability does not
    depend on the winner) but the decoded schedules may vary run to run
    with which backend answers first, so the byte-identity contract holds
    only for the default single-backend configuration.  With a portfolio
    the dispatcher writes only committed winners back to the cache, so a
    warm replay serves exactly the schedules this run reported.
    """

    name = "speculative"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        lookahead: int = 1,
        portfolio: Optional[Sequence[str]] = None,
        quarantine: Optional[BackendQuarantine] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise DispatchError("max_workers must be at least 1")
        if lookahead < 0:
            raise DispatchError("lookahead must be non-negative")
        self.max_workers = max_workers
        self.lookahead = lookahead
        self.portfolio: Optional[Tuple[str, ...]] = (
            tuple(portfolio) if portfolio else None
        )
        if self.portfolio is not None and len(set(self.portfolio)) != len(self.portfolio):
            raise DispatchError("portfolio backends must be distinct")
        self.quarantine = quarantine if quarantine is not None else QUARANTINE

    # ------------------------------------------------------------------
    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        if self.portfolio is None and (
            len(request.candidates) <= 1 or self.max_workers == 1
        ):
            # Nothing to speculate over; skip the pool like the parallel path.
            get_backend(request.backend)
            return SerialDispatcher().sweep(request, cache)
        outcome = self.sweep_many([request], cache=cache)[0]
        assert outcome is not None  # a single request is never skipped
        return outcome

    # ------------------------------------------------------------------
    def sweep_many(
        self,
        requests: Sequence[SweepRequest],
        cache: Optional[AlgorithmCache] = None,
        stop: Optional[Callable[[SweepOutcome], bool]] = None,
    ) -> List[Optional[SweepOutcome]]:
        """Execute the sweep sequence, speculating past undecided step counts.

        Returns one entry per request, in order: a :class:`SweepOutcome`
        for every sweep that was committed, then ``None`` for sweeps that
        were cancelled because ``stop`` accepted an earlier outcome.  The
        committed prefix is exactly the sequence of outcomes a serial loop
        calling ``sweep`` per request (and breaking when ``stop`` fires)
        would have produced.
        """
        requests = list(requests)
        if not requests:
            return []
        self._check_uniform(requests)
        backends = (
            list(self.portfolio)
            if self.portfolio is not None
            else [requests[0].backend]
        )
        # Fail fast on unknown backend names before spawning any workers.
        backend_objs = [get_backend(name) for name in backends]

        tracer = get_tracer()
        batch_ctx = tracer.span(
            "sweep_batch", strategy=self.name, sweeps=len(requests),
            collective=requests[0].collective,
        )
        with batch_ctx:
            return self._sweep_many_traced(requests, cache, stop, backends, backend_objs)

    def _sweep_many_traced(
        self,
        requests: List[SweepRequest],
        cache: Optional[AlgorithmCache],
        stop: Optional[Callable[[SweepOutcome], bool]],
        backends: List[Optional[str]],
        backend_objs: List[object],
    ) -> List[Optional[SweepOutcome]]:
        states = [self._prepare_state(request, cache) for request in requests]
        outcomes: List[Optional[SweepOutcome]] = [None] * len(requests)

        total_tasks = sum(len(state.inflight) for state in states)
        if total_tasks == 0:
            # Every candidate was cut, pruned or cached; commit poollessly.
            for index, state in enumerate(states):
                outcomes[index] = self._try_commit(state)
                self._persist_cuts(outcomes[index], requests[index], cache)
                if stop is not None and stop(outcomes[index]):
                    break
            for index, state in enumerate(states):
                self._close_sweep_span(state, committed=outcomes[index] is not None)
            return outcomes

        shared = _shared_payload(requests[0], cache, backend_objs)
        workers = min(
            self.max_workers or os.cpu_count() or 1,
            max(1, total_tasks * len(backends)),
        )
        futures: Dict[object, Tuple[int, int, str]] = {}
        candidate_futures: Dict[Tuple[int, int], List[object]] = {}
        decided = 0
        submitted = 0

        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_candidate_worker,
            initargs=(shared,),
        )
        try:
            def active_backends() -> List[Optional[str]]:
                """The portfolio minus quarantined members (never empty).

                Quarantine filtering happens at submit time, so a backend
                benched mid-batch stops receiving new candidates while its
                in-flight ones drain normally.  If *every* portfolio member
                is benched the full portfolio runs anyway — refusing to
                solve would be worse than racing flaky solvers.
                """
                if self.portfolio is None:
                    return list(backends)
                healthy = [
                    name for name in backends
                    if not self.quarantine.is_quarantined(name)
                ]
                return healthy or list(backends)

            def submit_request(index: int) -> None:
                state = states[index]
                if state.request.bounds is not None:
                    # Re-plan with everything committed so far: candidates
                    # that became dominance-pruned since prepare time are
                    # dropped before they ever reach the pool.  Pruning is
                    # monotone (the frontier cap only tightens), so a
                    # trimmed candidate stays pruned at commit time.
                    replanned = _plan_probes(state.request)
                    for cand in list(state.inflight):
                        if replanned.actions[cand] != PROBE:
                            state.inflight.discard(cand)
                store = self.portfolio is None
                racers = active_backends()
                for cand in sorted(state.inflight):
                    rounds, chunks = state.candidates[cand]
                    group = candidate_futures.setdefault((index, cand), [])
                    for backend in racers:
                        future = pool.submit(
                            _solve_candidate_worker,
                            (state.request.steps, rounds, chunks, backend, store),
                        )
                        futures[future] = (index, cand, backend)
                        group.append(future)

            def cancel_candidate(index: int, cand: int) -> None:
                state = states[index]
                for future in candidate_futures.get((index, cand), ()):
                    future.cancel()
                if state.results[cand] is None:
                    state.inflight.discard(cand)

            # Keep the current sweep plus `lookahead` speculative ones in
            # flight; FIFO pool order makes earlier step counts run first.
            while submitted < len(requests) and submitted <= decided + self.lookahead:
                submit_request(submitted)
                submitted += 1

            while decided < len(requests):
                outcome = self._try_commit(states[decided])
                if outcome is not None:
                    if cache is not None and self.portfolio is not None:
                        # Only committed winners are persisted under a
                        # portfolio, so warm replays match this run.  Cut
                        # results are handled below for both configurations.
                        for result in outcome.results:
                            if not result.cache_hit and result.provenance != "cut":
                                store_result(
                                    cache, result,
                                    encoding=requests[0].encoding,
                                    prune=requests[0].prune,
                                )
                    self._persist_cuts(outcome, requests[0], cache)
                    outcomes[decided] = outcome
                    self._close_sweep_span(states[decided], committed=True)
                    decided += 1
                    if stop is not None and stop(outcome):
                        break  # later step counts are speculative losers
                    while (
                        submitted < len(requests)
                        and submitted <= decided + self.lookahead
                    ):
                        submit_request(submitted)
                        submitted += 1
                    continue
                if not futures:  # pragma: no cover - commit/wait invariant
                    raise DispatchError("speculative sweep stalled with no futures")
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    index, cand, backend = futures.pop(future)
                    state = states[index]
                    if future.cancelled():
                        if state.results[cand] is None:
                            state.inflight.discard(cand)
                        continue
                    result = future.result()  # worker errors propagate
                    # Crash counters travel back from the worker process in
                    # the result's solver stats; fold them into the parent's
                    # quarantine so submit-time filtering sees them.
                    self._note_backend_health(result)
                    _ingest_worker_result(result, state.span)
                    expected = len(candidate_futures.get((index, cand), ()))
                    self._record(state, cand, backend, result, expected)
                    if state.results[cand] is None:
                        continue  # portfolio race still undecided
                    # The race is decided: stop the losing sibling backends
                    # (queued ones are cancelled; running ones finish and
                    # are dropped by _record).
                    for sibling in candidate_futures.get((index, cand), ()):
                        if sibling is not future:
                            sibling.cancel()
                    if state.results[cand].is_sat and state.request.stop_at_first_sat:
                        state.note_sat(cand)
                        for later in list(state.inflight):
                            if later > cand:
                                cancel_candidate(index, later)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            # Close cancelled/abandoned sweep spans; committed ones already
            # closed (close is idempotent, so this is a no-op for them).
            for state in states:
                self._close_sweep_span(state, committed=False)
        return outcomes

    # ------------------------------------------------------------------
    @staticmethod
    def _close_sweep_span(state: _SweepState, *, committed: bool) -> None:
        """Finish one step count's free-floating sweep span (idempotent)."""
        if isinstance(state.span, Span):
            get_tracer().close(state.span, committed=committed)

    @staticmethod
    def _persist_cuts(
        outcome: Optional[SweepOutcome], request: SweepRequest, cache
    ) -> None:
        """Persist commit-time cut results so warm replays see provenance."""
        if cache is None or outcome is None:
            return
        for result in outcome.results:
            if result.provenance == "cut" and not result.cache_hit:
                store_result(
                    cache, result, encoding=request.encoding, prune=request.prune
                )

    @staticmethod
    def _check_uniform(requests: Sequence[SweepRequest]) -> None:
        def context(request: SweepRequest) -> tuple:
            return (
                request.collective, id(request.topology), request.root,
                request.encoding, request.prune, request.backend,
                request.time_limit, request.conflict_limit,
                request.stop_at_first_sat, id(request.bounds),
            )

        first = context(requests[0])
        for request in requests[1:]:
            if context(request) != first:
                raise DispatchError(
                    "sweep_many requests must differ only in steps/candidates"
                )

    def _prepare_state(
        self, request: SweepRequest, cache: Optional[AlgorithmCache]
    ) -> _SweepState:
        candidates = list(request.candidates)
        state = _SweepState(
            request=request, candidates=candidates, results=[None] * len(candidates)
        )
        state.span = get_tracer().open(
            "sweep", strategy=self.name, S=request.steps,
            collective=request.collective,
        )
        plan = _plan_probes(request)
        pending: List[int] = []
        for index, (rounds, chunks) in enumerate(candidates):
            if _plan_action(plan, index) != PROBE:
                # Cut or pruned by the ledger: resolved at commit time with
                # no solver work and no cache traffic.
                continue
            cached = _cached_result(request, rounds, chunks, cache)
            if cached is not None:
                state.results[index] = cached
                state.cached.add(index)
                if cached.is_sat and request.stop_at_first_sat:
                    state.note_sat(index)
            else:
                pending.append(index)
        if state.sat_bound is not None:
            pending = [i for i in pending if i < state.sat_bound]
        state.inflight = set(pending)
        return state

    def _note_backend_health(self, result) -> None:
        """Feed a worker result's crash accounting into the quarantine."""
        stats = getattr(result, "solver_stats", None) or {}
        exhausted = int(stats.get("exhausted_calls", 0) or 0)
        if exhausted:
            for _ in range(exhausted):
                self.quarantine.record_crash(result.backend)
        elif not result.is_unknown and not result.cache_hit:
            self.quarantine.record_success(result.backend)

    def _record(
        self, state: _SweepState, cand: int, backend: str, result, expected: int
    ) -> None:
        """Fold one worker return into the candidate's verdict.

        ``expected`` is how many racers were submitted for this candidate
        (quarantine filtering makes it per-candidate, not the portfolio
        size).
        """
        if state.results[cand] is not None:
            return  # a sibling already decided this candidate
        if self.portfolio is None:
            state.results[cand] = result
            state.inflight.discard(cand)
            return
        if not result.is_unknown:
            # First definite verdict wins the race.
            state.results[cand] = result
            state.inflight.discard(cand)
            return
        returned = state.verdicts.setdefault(cand, [])
        returned.append(result)
        if len(returned) >= expected:
            # Every racer gave up within its limits: UNKNOWN it is.
            state.results[cand] = returned[0]
            state.inflight.discard(cand)

    @staticmethod
    def _try_commit(state: _SweepState) -> Optional[SweepOutcome]:
        """Replay the serial decision rule once the ordered prefix is known.

        With a bounds ledger the plan is recomputed *at commit time*:
        commits happen strictly in step-count order and verdicts are fed to
        the ledger only on successful commits, so the ledger state here is
        exactly what a serial run would have seen when it planned this
        sweep — speculative over-submission never changes the outcome.
        """
        request = state.request
        plan = _plan_probes(request)
        outcome = SweepOutcome()
        observed: List = []
        committed_cached: List[int] = []
        for index in range(len(state.candidates)):
            action = _plan_action(plan, index)
            if action == PRUNE:
                outcome.stats.probes_pruned += 1
                continue
            if action == CUT:
                outcome.stats.probes_cut += 1
                outcome.results.append(_cut_for(request, plan, index, None))
                continue
            result = state.results[index]
            if result is None:
                if index in state.inflight:
                    return None  # the decision still depends on this probe
                break  # cancelled loser past the first SAT
            _account(outcome.stats, result)
            outcome.results.append(result)
            observed.append(result)
            if index in state.cached:
                committed_cached.append(index)
            if result.is_sat and state.request.stop_at_first_sat:
                break
        if request.bounds is not None:
            for result in observed:
                request.bounds.observe(result)
        # The commit succeeded (earlier attempts bail out above without
        # side effects): publish telemetry exactly once per sweep.
        if isinstance(state.span, Span):
            # Candidates replayed from the parent's cache never reached a
            # worker, so no span was recorded for them; synthesize their
            # zero-duration probe events under this sweep's span.
            for index in committed_cached:
                result = state.results[index]
                note = Span(
                    "probe",
                    {
                        "collective": request.collective,
                        "C": state.candidates[index][1],
                        "S": request.steps,
                        "R": state.candidates[index][0],
                        "verdict": result.status.value,
                        "cache_hit": True,
                        "backend": result.backend,
                    },
                )
                note._open = False
                state.span.children.append(note)
        _commit_sweep_telemetry("speculative", request, outcome)
        return outcome


STRATEGIES = {
    "serial": SerialDispatcher,
    "incremental": IncrementalDispatcher,
    "parallel": ParallelDispatcher,
    "speculative": SpeculativeDispatcher,
}


def make_dispatcher(
    strategy: str = "incremental",
    *,
    max_workers: Optional[int] = None,
    portfolio: Optional[Sequence[str]] = None,
    lookahead: int = 1,
):
    """Build a dispatcher by strategy name."""
    if strategy == "parallel":
        if portfolio:
            raise DispatchError(
                "portfolio racing requires strategy='speculative'"
            )
        return ParallelDispatcher(max_workers=max_workers)
    if strategy == "speculative":
        return SpeculativeDispatcher(
            max_workers=max_workers, lookahead=lookahead, portfolio=portfolio
        )
    if portfolio:
        raise DispatchError("portfolio racing requires strategy='speculative'")
    cls = STRATEGIES.get(strategy)
    if cls is None:
        raise DispatchError(
            f"unknown sweep strategy {strategy!r}; available: {sorted(STRATEGIES)}"
        )
    return cls()

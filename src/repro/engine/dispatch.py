"""Candidate-sweep dispatchers for Pareto-Synthesize.

Algorithm 1 probes, for each step count ``S``, an ordered list of ``(R, C)``
candidates and keeps the first satisfiable one.  The dispatchers here are
interchangeable strategies for executing that probe list:

* :class:`SerialDispatcher` — the paper's loop: one cold encode+solve per
  candidate, in cost order, stopping at the first SAT.
* :class:`IncrementalDispatcher` — groups candidates by chunk count ``C``
  and drives each group through one
  :class:`~repro.engine.session.IncrementalSession`, so a fixed-``S`` sweep
  pays one encoding per distinct ``C`` instead of one per candidate.
* :class:`ParallelDispatcher` — fans candidates across a process pool and
  then *replays* the serial decision rule over the results in candidate
  order, so the reported outcome (and hence the Pareto frontier) is
  byte-identical to the serial path; the parallelism is opportunistic, in
  the PopPy sense — extra completed probes past the first SAT are discarded.

All three consult and populate the algorithm cache when one is supplied,
and report uniform :class:`SweepStats` so callers can account encodes,
solver calls and cache hits.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import make_instance
from ..topology import Topology
from .backends import get_backend
from .cache import AlgorithmCache, lookup_result, store_result
from .session import IncrementalSession


class DispatchError(Exception):
    """Raised for invalid dispatcher configurations."""


@dataclass(frozen=True)
class SweepRequest:
    """One fixed-``S`` candidate sweep: the (R, C) list in probe order."""

    collective: str
    topology: Topology
    steps: int
    candidates: Tuple[Tuple[int, int], ...]  # (rounds, chunks) in cost order
    root: int = 0
    encoding: str = "sccl"
    prune: bool = True
    backend: Optional[str] = None
    time_limit: Optional[float] = None
    conflict_limit: Optional[int] = None
    stop_at_first_sat: bool = True


@dataclass
class SweepStats:
    """Work accounting for one or more sweeps."""

    encode_calls: int = 0
    solver_calls: int = 0
    cache_hits: int = 0
    candidates_probed: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.encode_calls += other.encode_calls
        self.solver_calls += other.solver_calls
        self.cache_hits += other.cache_hits
        self.candidates_probed += other.candidates_probed

    def as_dict(self) -> Dict[str, int]:
        return {
            "encode_calls": self.encode_calls,
            "solver_calls": self.solver_calls,
            "cache_hits": self.cache_hits,
            "candidates_probed": self.candidates_probed,
        }


@dataclass
class SweepOutcome:
    """Per-candidate results in probe order, truncated by the serial rule."""

    results: List = field(default_factory=list)  # List[SynthesisResult]
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def first_sat(self):
        for result in self.results:
            if result.is_sat:
                return result
        return None


def _account(stats: SweepStats, result) -> None:
    stats.candidates_probed += 1
    if result.cache_hit:
        stats.cache_hits += 1
    else:
        stats.encode_calls += 1
        stats.solver_calls += 1


def _cached_result(request: SweepRequest, rounds: int, chunks: int, cache):
    """Resolve one candidate against the cache (None on a miss or no cache)."""
    if cache is None:
        return None
    instance = make_instance(
        request.collective, request.topology, chunks,
        request.steps, rounds, root=request.root,
    )
    return lookup_result(
        cache, instance, encoding=request.encoding, prune=request.prune
    )


class SerialDispatcher:
    """Cold encode+solve per candidate — the seed behaviour, cache-aware."""

    name = "serial"

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        from ..core.synthesizer import synthesize

        outcome = SweepOutcome()
        for rounds, chunks in request.candidates:
            instance = make_instance(
                request.collective, request.topology, chunks,
                request.steps, rounds, root=request.root,
            )
            result = synthesize(
                instance,
                encoding=request.encoding,
                prune=request.prune,
                time_limit=request.time_limit,
                conflict_limit=request.conflict_limit,
                backend=request.backend,
                cache=cache,
            )
            _account(outcome.stats, result)
            outcome.results.append(result)
            if result.is_sat and request.stop_at_first_sat:
                break
        return outcome


class IncrementalDispatcher:
    """Assumption-based probing: one encoding per distinct chunk count.

    Falls back to the serial dispatcher for the naive ablation encoding,
    which has no rounds-budget selector layer.
    """

    name = "incremental"

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        if request.encoding != "sccl":
            return SerialDispatcher().sweep(request, cache)

        outcome = SweepOutcome()
        sessions: Dict[int, IncrementalSession] = {}
        max_rounds_per_chunks: Dict[int, int] = {}
        for rounds, chunks in request.candidates:
            max_rounds_per_chunks[chunks] = max(
                max_rounds_per_chunks.get(chunks, request.steps), rounds
            )
        for rounds, chunks in request.candidates:
            cached = _cached_result(request, rounds, chunks, cache)
            if cached is not None:
                result = cached
                outcome.stats.cache_hits += 1
                outcome.stats.candidates_probed += 1
            else:
                session = sessions.get(chunks)
                if session is None:
                    session = IncrementalSession(
                        request.collective,
                        request.topology,
                        chunks,
                        request.steps,
                        max_rounds_per_chunks[chunks],
                        root=request.root,
                        prune=request.prune,
                        backend=request.backend,
                    )
                    sessions[chunks] = session
                before = session.encode_calls
                result = session.solve(
                    rounds,
                    time_limit=request.time_limit,
                    conflict_limit=request.conflict_limit,
                )
                outcome.stats.encode_calls += session.encode_calls - before
                outcome.stats.solver_calls += 1
                outcome.stats.candidates_probed += 1
                if cache is not None:
                    store_result(
                        cache, result, encoding=request.encoding, prune=request.prune
                    )
            outcome.results.append(result)
            if result.is_sat and request.stop_at_first_sat:
                break
        return outcome


def _solve_candidate_worker(payload: dict):
    """Top-level worker for the process pool (must be picklable by name)."""
    from ..core.synthesizer import synthesize
    from .backends import register_backend

    # A worker process starts with a fresh registry (only the default and
    # any import-time backends), so runtime-registered backends travel as
    # pickled objects and are re-registered here.
    backend_obj = payload["backend_obj"]
    if backend_obj is not None:
        register_backend(backend_obj, replace=True)
    cache = AlgorithmCache(payload["cache_dir"]) if payload["cache_dir"] else None
    instance = make_instance(
        payload["collective"], payload["topology"], payload["chunks"],
        payload["steps"], payload["rounds"], root=payload["root"],
    )
    return synthesize(
        instance,
        encoding=payload["encoding"],
        prune=payload["prune"],
        time_limit=payload["time_limit"],
        conflict_limit=payload["conflict_limit"],
        backend=payload["backend"],
        cache=cache,
    )


class ParallelDispatcher:
    """Process-pool fan-out with deterministic serial-replay semantics."""

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise DispatchError("max_workers must be at least 1")
        self.max_workers = max_workers

    def sweep(self, request: SweepRequest, cache: Optional[AlgorithmCache] = None) -> SweepOutcome:
        # Fail fast on unknown backend names before spawning any workers.
        backend_obj = get_backend(request.backend)
        candidates = list(request.candidates)
        if len(candidates) <= 1 or self.max_workers == 1:
            return SerialDispatcher().sweep(request, cache)

        outcome = SweepOutcome()
        # Fast path: resolve cache hits in-process before spawning workers.
        results: List = [None] * len(candidates)
        pending: List[int] = []
        for index, (rounds, chunks) in enumerate(candidates):
            cached = _cached_result(request, rounds, chunks, cache)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if request.stop_at_first_sat:
            # A SAT cache hit already decides the sweep at its position;
            # candidates after it would be discarded by the replay.
            for index, cached in enumerate(results):
                if cached is not None and cached.is_sat:
                    pending = [i for i in pending if i < index]
                    break

        if pending:
            def payload(index: int) -> dict:
                return {
                    "collective": request.collective,
                    "topology": request.topology,
                    "chunks": candidates[index][1],
                    "steps": request.steps,
                    "rounds": candidates[index][0],
                    "root": request.root,
                    "encoding": request.encoding,
                    "prune": request.prune,
                    "backend": request.backend,
                    "backend_obj": backend_obj,
                    "time_limit": request.time_limit,
                    "conflict_limit": request.conflict_limit,
                    "cache_dir": str(cache.root) if cache is not None else None,
                }

            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                try:
                    futures = {
                        index: pool.submit(_solve_candidate_worker, payload(index))
                        for index in pending
                    }
                    # Consume in candidate order; once the decisive ordered
                    # prefix is resolved (first SAT under stop_at_first_sat),
                    # cancel the rest — their results would be discarded by
                    # the replay anyway.
                    for index in pending:
                        results[index] = futures[index].result()
                        if results[index].is_sat and request.stop_at_first_sat:
                            break
                finally:
                    pool.shutdown(wait=False, cancel_futures=True)

        # Replay the serial decision rule over the ordered results so the
        # observable outcome is identical to SerialDispatcher's.
        for result in results:
            if result is None:
                break  # probes past the first SAT that were cancelled
            _account(outcome.stats, result)
            outcome.results.append(result)
            if result.is_sat and request.stop_at_first_sat:
                break
        return outcome


STRATEGIES = {
    "serial": SerialDispatcher,
    "incremental": IncrementalDispatcher,
    "parallel": ParallelDispatcher,
}


def make_dispatcher(strategy: str = "incremental", *, max_workers: Optional[int] = None):
    """Build a dispatcher by strategy name."""
    if strategy == "parallel":
        return ParallelDispatcher(max_workers=max_workers)
    cls = STRATEGIES.get(strategy)
    if cls is None:
        raise DispatchError(
            f"unknown sweep strategy {strategy!r}; available: {sorted(STRATEGIES)}"
        )
    return cls()

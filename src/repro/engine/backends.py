"""Pluggable solver backends for the synthesis engine.

The synthesis pipeline only needs a narrow slice of a SAT solver: load a
CNF, solve under assumptions with optional resource limits, read a model.
:class:`SolverBackend` captures that slice as a protocol, and a process-wide
registry maps backend names to factories so external solvers (a PySAT
binding, a subprocess DIMACS solver, ...) can be slotted in without touching
the encode/decode layers.

The default backend, ``"cdcl"``, wraps the pure-Python CDCL solver in
:mod:`repro.solver.sat`.  A ``"pysat"`` backend is registered automatically
when the optional ``python-sat`` package is importable, and a DIMACS
subprocess backend is registered for each industrial-strength solver binary
found on ``PATH`` (``kissat``, ``cadical``); the container image used for CI
ships neither, so both registrations are gated, never required.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..solver import CNF, SATSolver, SolveResult


class BackendError(Exception):
    """Raised for unknown or misconfigured solver backends."""


@runtime_checkable
class SolverHandle(Protocol):
    """One solver instance owning a loaded formula.

    A handle is *incremental*: after :meth:`load`, :meth:`solve` may be
    called many times with different assumption sets, and learned state may
    be reused across calls.
    """

    def load(self, cnf: CNF) -> bool:
        """Load a formula; returns False if it is trivially UNSAT."""
        ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        ...

    def model(self) -> Dict[int, bool]:
        ...

    def stats(self) -> Dict[str, float]:
        ...


@runtime_checkable
class SolverBackend(Protocol):
    """A named factory of :class:`SolverHandle` instances."""

    name: str

    def create(self) -> SolverHandle:
        ...


class CdclHandle:
    """Handle over the project's pure-Python CDCL solver."""

    def __init__(self) -> None:
        self._solver = SATSolver()

    def load(self, cnf: CNF) -> bool:
        return self._solver.add_cnf(cnf)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        return self._solver.solve(
            assumptions, conflict_limit=conflict_limit, time_limit=time_limit
        )

    def model(self) -> Dict[int, bool]:
        return self._solver.model()

    def stats(self) -> Dict[str, float]:
        return self._solver.stats.as_dict()


class CdclBackend:
    """The default backend: one :class:`SATSolver` per handle."""

    name = "cdcl"

    def create(self) -> CdclHandle:
        return CdclHandle()


class PySatBackend:
    """Backend over the optional ``python-sat`` package (if installed).

    Resource limits: conflict budgets map onto python-sat's ``conf_budget``;
    wall-clock limits — which python-sat does not expose natively — are
    honored with a watchdog timer that calls ``Solver.interrupt()`` when the
    budget expires, so a ``time_limit`` yields ``UNKNOWN`` instead of being
    silently ignored.
    """

    name = "pysat"

    def __init__(self, solver_name: str = "minisat22") -> None:
        self.solver_name = solver_name

    def create(self) -> "_PySatHandle":
        return _PySatHandle(self.solver_name)


class _PySatHandle:
    def __init__(self, solver_name: str) -> None:
        from pysat.solvers import Solver  # gated import; see register below

        self._solver = Solver(name=solver_name)
        self._num_vars = 0

    def load(self, cnf: CNF) -> bool:
        self._num_vars = cnf.num_vars
        for clause in cnf.clauses:
            self._solver.add_clause(clause)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        if conflict_limit is None and time_limit is None:
            answer = self._solver.solve(assumptions=list(assumptions))
            return SolveResult.SAT if answer else SolveResult.UNSAT
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
        watchdog: Optional[threading.Timer] = None
        if time_limit is not None:
            watchdog = threading.Timer(time_limit, self._solver.interrupt)
            watchdog.daemon = True
            watchdog.start()
        try:
            answer = self._solver.solve_limited(
                assumptions=list(assumptions),
                expect_interrupt=time_limit is not None,
            )
        finally:
            if watchdog is not None:
                watchdog.cancel()
                # The timer may have fired between solve_limited returning
                # and cancel(); always re-arm the handle so the next probe
                # of an incremental session is not stillborn-UNKNOWN.
                self._solver.clear_interrupt()
        if answer is None:
            return SolveResult.UNKNOWN
        return SolveResult.SAT if answer else SolveResult.UNSAT

    def model(self) -> Dict[int, bool]:
        raw = self._solver.get_model() or []
        model = {abs(lit): lit > 0 for lit in raw}
        for var in range(1, self._num_vars + 1):
            model.setdefault(var, False)
        return model

    def stats(self) -> Dict[str, float]:
        return dict(self._solver.accum_stats() or {})


#: Solver families whose native resource-limit flags we know how to drive.
#: ``{family: (time_flag_template, conflict_flag_template)}`` — ``None``
#: entries mean the limit is enforced only by the subprocess timeout.
_DIMACS_LIMIT_FLAGS: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    "kissat": ("--time={seconds}", "--conflicts={conflicts}"),
    "cadical": ("-t {seconds}", None),
}

#: Binaries probed on PATH at import time, in registration order.
DIMACS_SOLVER_CANDIDATES = ("kissat", "cadical")


class DimacsSolverBackend:
    """Subprocess backend over any DIMACS CNF solver binary.

    The handle writes the loaded formula (plus per-call assumptions as unit
    clauses) to a temporary ``.cnf`` file and invokes the solver, following
    SAT-competition conventions: exit code 10 is SAT (with a ``v``-line
    model), 20 is UNSAT, anything else is UNKNOWN.  Wall-clock limits are
    enforced twice — via the solver's native flag when the family is known
    (see ``_DIMACS_LIMIT_FLAGS``) and via the subprocess timeout always —
    so even a solver that ignores its flag cannot overrun the budget.
    Conflict budgets are passed through only where the family exposes a
    flag; requesting one from a family that does not raises
    :class:`BackendError` rather than silently running unbounded.

    Unlike the in-process backends the subprocess is not incremental: each
    ``solve`` call pays a fresh file write and process start.  The payoff is
    raw solver speed on the hard high-chunk-count instances.
    """

    def __init__(
        self,
        executable: str,
        *,
        name: Optional[str] = None,
        extra_args: Sequence[str] = (),
    ) -> None:
        self.executable = executable
        self.name = name or Path(executable).stem
        self.extra_args = tuple(extra_args)

    def create(self) -> "_DimacsHandle":
        return _DimacsHandle(self.executable, self.name, self.extra_args)


class _DimacsHandle:
    def __init__(self, executable: str, family: str, extra_args: Tuple[str, ...]) -> None:
        self._executable = executable
        self._family = family
        self._extra_args = extra_args
        self._cnf: Optional[CNF] = None
        self._model: Dict[int, bool] = {}
        self._stats: Dict[str, float] = {"subprocess_calls": 0, "subprocess_time": 0.0}

    def load(self, cnf: CNF) -> bool:
        self._cnf = cnf
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        import time as _time

        if self._cnf is None:
            raise BackendError("solve() called before load()")
        self._model = {}
        command = [self._executable, *self._extra_args]
        time_flag, conflict_flag = _DIMACS_LIMIT_FLAGS.get(self._family, (None, None))
        if time_limit is not None and time_flag is not None:
            command.extend(time_flag.format(seconds=max(1, int(time_limit))).split())
        if conflict_limit is not None:
            if conflict_flag is None:
                # Silently running unbounded would betray the "exceeded ->
                # unknown" contract; fail fast with an actionable message.
                raise BackendError(
                    f"solver family {self._family!r} exposes no conflict-budget "
                    f"flag; use a time limit instead"
                )
            command.extend(conflict_flag.format(conflicts=conflict_limit).split())

        fd, path = tempfile.mkstemp(prefix="repro-", suffix=".cnf")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # Assumptions become unit clauses of this one-shot formula;
                # the header counts them so strict parsers accept the file.
                handle.write(
                    f"p cnf {self._cnf.num_vars} "
                    f"{self._cnf.num_clauses + len(assumptions)}\n"
                )
                for clause in self._cnf.clauses:
                    handle.write(" ".join(str(lit) for lit in clause) + " 0\n")
                for literal in assumptions:
                    handle.write(f"{literal} 0\n")
            command.append(path)
            deadline = None if time_limit is None else time_limit + 5.0
            start = _time.monotonic()
            try:
                completed = subprocess.run(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    timeout=deadline,
                    text=True,
                )
            except subprocess.TimeoutExpired:
                return SolveResult.UNKNOWN
            except OSError as exc:
                raise BackendError(
                    f"cannot run DIMACS solver {self._executable!r}: {exc}"
                ) from exc
            finally:
                self._stats["subprocess_calls"] += 1
                self._stats["subprocess_time"] += _time.monotonic() - start
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

        if completed.returncode == 10:
            self._model = self._parse_model(completed.stdout)
            return SolveResult.SAT
        if completed.returncode == 20:
            return SolveResult.UNSAT
        return SolveResult.UNKNOWN

    def _parse_model(self, stdout: str) -> Dict[int, bool]:
        model: Dict[int, bool] = {}
        for line in stdout.splitlines():
            if not line.startswith("v"):
                continue
            for token in line[1:].split():
                literal = int(token)
                if literal == 0:
                    continue
                model[abs(literal)] = literal > 0
        assert self._cnf is not None
        for var in range(1, self._cnf.num_vars + 1):
            model.setdefault(var, False)
        return model

    def model(self) -> Dict[int, bool]:
        return dict(self._model)

    def stats(self) -> Dict[str, float]:
        return dict(self._stats)


def register_dimacs_backends(
    candidates: Sequence[str] = DIMACS_SOLVER_CANDIDATES,
) -> List[str]:
    """Register a DIMACS backend per solver binary found on PATH.

    Called once at import time (mirroring the pysat gating); safe to call
    again after installing a solver.  Returns the names registered.
    """
    registered: List[str] = []
    for name in candidates:
        if name in _REGISTRY:
            continue
        executable = shutil.which(name)
        if executable is None:
            continue
        register_backend(DimacsSolverBackend(executable, name=name))
        registered.append(name)
    return registered


_REGISTRY: Dict[str, SolverBackend] = {}

DEFAULT_BACKEND = "cdcl"


def register_backend(backend: SolverBackend, *, replace: bool = False) -> None:
    """Register a backend under ``backend.name``."""
    name = getattr(backend, "name", "")
    if not name:
        raise BackendError("backend must expose a non-empty .name")
    if name in _REGISTRY and not replace:
        raise BackendError(f"backend {name!r} already registered (pass replace=True)")
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (the default cannot be removed)."""
    if name == DEFAULT_BACKEND:
        raise BackendError("the default cdcl backend cannot be unregistered")
    _REGISTRY.pop(name, None)


def get_backend(name: Optional[str] = None) -> SolverBackend:
    """Look up a backend by name (``None`` selects the default)."""
    key = name or DEFAULT_BACKEND
    backend = _REGISTRY.get(key)
    if backend is None:
        raise BackendError(
            f"unknown solver backend {key!r}; available: {sorted(_REGISTRY)}"
        )
    return backend


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


register_backend(CdclBackend())

try:  # pragma: no cover - exercised only where python-sat is installed
    import pysat.solvers  # noqa: F401

    register_backend(PySatBackend())
except ImportError:
    pass

register_dimacs_backends()

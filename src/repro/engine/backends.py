"""Pluggable solver backends for the synthesis engine.

The synthesis pipeline only needs a narrow slice of a SAT solver: load a
CNF, solve under assumptions with optional resource limits, read a model.
:class:`SolverBackend` captures that slice as a protocol, and a process-wide
registry maps backend names to factories so external solvers (a PySAT
binding, a subprocess DIMACS solver, ...) can be slotted in without touching
the encode/decode layers.

The default backend, ``"cdcl"``, wraps the pure-Python CDCL solver in
:mod:`repro.solver.sat`.  A ``"pysat"`` backend is registered automatically
when the optional ``python-sat`` package is importable; the container image
used for CI does not ship it, so the registration is gated, never required.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence, runtime_checkable

from ..solver import CNF, SATSolver, SolveResult


class BackendError(Exception):
    """Raised for unknown or misconfigured solver backends."""


@runtime_checkable
class SolverHandle(Protocol):
    """One solver instance owning a loaded formula.

    A handle is *incremental*: after :meth:`load`, :meth:`solve` may be
    called many times with different assumption sets, and learned state may
    be reused across calls.
    """

    def load(self, cnf: CNF) -> bool:
        """Load a formula; returns False if it is trivially UNSAT."""
        ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        ...

    def model(self) -> Dict[int, bool]:
        ...

    def stats(self) -> Dict[str, float]:
        ...


@runtime_checkable
class SolverBackend(Protocol):
    """A named factory of :class:`SolverHandle` instances."""

    name: str

    def create(self) -> SolverHandle:
        ...


class CdclHandle:
    """Handle over the project's pure-Python CDCL solver."""

    def __init__(self) -> None:
        self._solver = SATSolver()

    def load(self, cnf: CNF) -> bool:
        return self._solver.add_cnf(cnf)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        return self._solver.solve(
            assumptions, conflict_limit=conflict_limit, time_limit=time_limit
        )

    def model(self) -> Dict[int, bool]:
        return self._solver.model()

    def stats(self) -> Dict[str, float]:
        return self._solver.stats.as_dict()


class CdclBackend:
    """The default backend: one :class:`SATSolver` per handle."""

    name = "cdcl"

    def create(self) -> CdclHandle:
        return CdclHandle()


class PySatBackend:
    """Backend over the optional ``python-sat`` package (if installed).

    Resource limits: python-sat exposes conflict budgets but no wall-clock
    limit; ``time_limit`` is therefore ignored and such calls can only be
    bounded by ``conflict_limit``.
    """

    name = "pysat"

    def __init__(self, solver_name: str = "minisat22") -> None:
        self.solver_name = solver_name

    def create(self) -> "_PySatHandle":
        return _PySatHandle(self.solver_name)


class _PySatHandle:
    def __init__(self, solver_name: str) -> None:
        from pysat.solvers import Solver  # gated import; see register below

        self._solver = Solver(name=solver_name)
        self._num_vars = 0

    def load(self, cnf: CNF) -> bool:
        self._num_vars = cnf.num_vars
        for clause in cnf.clauses:
            self._solver.add_clause(clause)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
            answer = self._solver.solve_limited(assumptions=list(assumptions))
        else:
            answer = self._solver.solve(assumptions=list(assumptions))
        if answer is None:
            return SolveResult.UNKNOWN
        return SolveResult.SAT if answer else SolveResult.UNSAT

    def model(self) -> Dict[int, bool]:
        raw = self._solver.get_model() or []
        model = {abs(lit): lit > 0 for lit in raw}
        for var in range(1, self._num_vars + 1):
            model.setdefault(var, False)
        return model

    def stats(self) -> Dict[str, float]:
        return dict(self._solver.accum_stats() or {})


_REGISTRY: Dict[str, SolverBackend] = {}

DEFAULT_BACKEND = "cdcl"


def register_backend(backend: SolverBackend, *, replace: bool = False) -> None:
    """Register a backend under ``backend.name``."""
    name = getattr(backend, "name", "")
    if not name:
        raise BackendError("backend must expose a non-empty .name")
    if name in _REGISTRY and not replace:
        raise BackendError(f"backend {name!r} already registered (pass replace=True)")
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (the default cannot be removed)."""
    if name == DEFAULT_BACKEND:
        raise BackendError("the default cdcl backend cannot be unregistered")
    _REGISTRY.pop(name, None)


def get_backend(name: Optional[str] = None) -> SolverBackend:
    """Look up a backend by name (``None`` selects the default)."""
    key = name or DEFAULT_BACKEND
    backend = _REGISTRY.get(key)
    if backend is None:
        raise BackendError(
            f"unknown solver backend {key!r}; available: {sorted(_REGISTRY)}"
        )
    return backend


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


register_backend(CdclBackend())

try:  # pragma: no cover - exercised only where python-sat is installed
    import pysat.solvers  # noqa: F401

    register_backend(PySatBackend())
except ImportError:
    pass

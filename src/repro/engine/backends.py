"""Pluggable solver backends for the synthesis engine.

The synthesis pipeline only needs a narrow slice of a SAT solver: load a
CNF, solve under assumptions with optional resource limits, read a model.
:class:`SolverBackend` captures that slice as a protocol, and a process-wide
registry maps backend names to factories so external solvers (a PySAT
binding, a subprocess DIMACS solver, ...) can be slotted in without touching
the encode/decode layers.

The default backend, ``"cdcl"``, wraps the pure-Python CDCL solver in
:mod:`repro.solver.sat`.  A ``"pysat"`` backend is registered automatically
when the optional ``python-sat`` package is importable, and a DIMACS
subprocess backend is registered for each industrial-strength solver binary
found on ``PATH`` (``kissat``, ``cadical``); the container image used for CI
ships neither, so both registrations are gated, never required.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..solver import CNF, SATSolver, SolveResult
from ..telemetry import get_metrics


class BackendError(Exception):
    """Raised for unknown or misconfigured solver backends."""


# ----------------------------------------------------------------------
# Backend quarantine
# ----------------------------------------------------------------------
class BackendQuarantine:
    """Track repeated solver failures and bench the offenders.

    A *crash* here means a solve call that failed completely — every retry
    exhausted without producing a verdict.  After ``threshold`` consecutive
    crashes a backend is quarantined: the portfolio dispatcher stops
    submitting work to it, so one flaky binary cannot slow every sweep to
    its retry ceiling.  A successful verdict resets the counter; an
    optional ``cooldown_s`` lets a quarantined backend back in after a
    quiet period (``None`` quarantines until an explicit :meth:`release`).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise BackendError("quarantine threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._crashes: Dict[str, int] = {}
        self._quarantined_at: Dict[str, float] = {}
        self._total_crashes: Dict[str, int] = {}

    def record_crash(self, name: str) -> bool:
        """Record one exhausted solve call; True if ``name`` is now benched."""
        with self._lock:
            count = self._crashes.get(name, 0) + 1
            self._crashes[name] = count
            self._total_crashes[name] = self._total_crashes.get(name, 0) + 1
            if count >= self.threshold and name not in self._quarantined_at:
                self._quarantined_at[name] = self._clock()
                get_metrics().inc("repro_backend_quarantined_total", backend=name)
            return name in self._quarantined_at

    def record_success(self, name: str) -> None:
        with self._lock:
            self._crashes.pop(name, None)
            self._quarantined_at.pop(name, None)

    def is_quarantined(self, name: str) -> bool:
        with self._lock:
            benched_at = self._quarantined_at.get(name)
            if benched_at is None:
                return False
            if self.cooldown_s is not None and (
                self._clock() - benched_at >= self.cooldown_s
            ):
                # Cooldown elapsed: give the backend one more chance (the
                # crash counter restarts, so a still-broken solver is
                # re-benched after `threshold` further failures).
                self._quarantined_at.pop(name, None)
                self._crashes.pop(name, None)
                return False
            return True

    def release(self, name: str) -> None:
        """Manually un-bench a backend (e.g. after replacing the binary)."""
        self.record_success(name)

    def quarantined(self) -> List[str]:
        with self._lock:
            names = list(self._quarantined_at)
        return sorted(n for n in names if self.is_quarantined(n))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "consecutive_crashes": dict(self._crashes),
                "total_crashes": dict(self._total_crashes),
                "quarantined": sorted(self._quarantined_at),
            }

    def reset(self) -> None:
        with self._lock:
            self._crashes.clear()
            self._quarantined_at.clear()
            self._total_crashes.clear()


#: Process-wide quarantine shared by every dispatcher and DIMACS handle.
QUARANTINE = BackendQuarantine()


def get_quarantine() -> BackendQuarantine:
    return QUARANTINE


@runtime_checkable
class SolverHandle(Protocol):
    """One solver instance owning a loaded formula.

    A handle is *incremental*: after :meth:`load`, :meth:`solve` may be
    called many times with different assumption sets, and learned state may
    be reused across calls.
    """

    def load(self, cnf: CNF) -> bool:
        """Load a formula; returns False if it is trivially UNSAT."""
        ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        ...

    def model(self) -> Dict[int, bool]:
        ...

    def stats(self) -> Dict[str, float]:
        ...


@runtime_checkable
class SolverBackend(Protocol):
    """A named factory of :class:`SolverHandle` instances."""

    name: str

    def create(self) -> SolverHandle:
        ...


class CdclHandle:
    """Handle over the project's pure-Python CDCL solver."""

    def __init__(self) -> None:
        self._solver = SATSolver()

    def load(self, cnf: CNF) -> bool:
        return self._solver.add_cnf(cnf)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        return self._solver.solve(
            assumptions, conflict_limit=conflict_limit, time_limit=time_limit
        )

    def model(self) -> Dict[int, bool]:
        return self._solver.model()

    def stats(self) -> Dict[str, float]:
        return self._solver.stats.as_dict()


class CdclBackend:
    """The default backend: one :class:`SATSolver` per handle."""

    name = "cdcl"

    def create(self) -> CdclHandle:
        return CdclHandle()


class PySatBackend:
    """Backend over the optional ``python-sat`` package (if installed).

    Resource limits: conflict budgets map onto python-sat's ``conf_budget``;
    wall-clock limits — which python-sat does not expose natively — are
    honored with a watchdog timer that calls ``Solver.interrupt()`` when the
    budget expires, so a ``time_limit`` yields ``UNKNOWN`` instead of being
    silently ignored.
    """

    name = "pysat"

    def __init__(self, solver_name: str = "minisat22") -> None:
        self.solver_name = solver_name

    def create(self) -> "_PySatHandle":
        return _PySatHandle(self.solver_name)


class _PySatHandle:
    def __init__(self, solver_name: str) -> None:
        from pysat.solvers import Solver  # gated import; see register below

        self._solver = Solver(name=solver_name)
        self._num_vars = 0

    def load(self, cnf: CNF) -> bool:
        self._num_vars = cnf.num_vars
        for clause in cnf.clauses:
            self._solver.add_clause(clause)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        if conflict_limit is None and time_limit is None:
            answer = self._solver.solve(assumptions=list(assumptions))
            return SolveResult.SAT if answer else SolveResult.UNSAT
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
        watchdog: Optional[threading.Timer] = None
        if time_limit is not None:
            watchdog = threading.Timer(time_limit, self._solver.interrupt)
            watchdog.daemon = True
            watchdog.start()
        try:
            answer = self._solver.solve_limited(
                assumptions=list(assumptions),
                expect_interrupt=time_limit is not None,
            )
        finally:
            if watchdog is not None:
                watchdog.cancel()
                # The timer may have fired between solve_limited returning
                # and cancel(); always re-arm the handle so the next probe
                # of an incremental session is not stillborn-UNKNOWN.
                self._solver.clear_interrupt()
        if answer is None:
            return SolveResult.UNKNOWN
        return SolveResult.SAT if answer else SolveResult.UNSAT

    def model(self) -> Dict[int, bool]:
        raw = self._solver.get_model() or []
        model = {abs(lit): lit > 0 for lit in raw}
        for var in range(1, self._num_vars + 1):
            model.setdefault(var, False)
        return model

    def stats(self) -> Dict[str, float]:
        return dict(self._solver.accum_stats() or {})


#: Solver families whose native resource-limit flags we know how to drive.
#: ``{family: (time_flag_template, conflict_flag_template)}`` — ``None``
#: entries mean the limit is enforced only by the subprocess timeout.
_DIMACS_LIMIT_FLAGS: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    "kissat": ("--time={seconds}", "--conflicts={conflicts}"),
    "cadical": ("-t {seconds}", None),
}

#: Binaries probed on PATH at import time, in registration order.
DIMACS_SOLVER_CANDIDATES = ("kissat", "cadical")


def classify_dimacs_exit(returncode: int) -> str:
    """SAT-competition exit-code classification.

    ``10`` is SAT, ``20`` is UNSAT, ``0`` is a clean "don't know" (a solver
    that hit its own limit and said so).  Everything else — negative codes
    (killed by a signal: OOM, segfault) and unexpected positive codes — is
    a *crash*: the solver did not render a verdict, and retrying the same
    formula is meaningful.
    """
    if returncode == 10:
        return "sat"
    if returncode == 20:
        return "unsat"
    if returncode == 0:
        return "unknown"
    return "crash"


class DimacsSolverBackend:
    """Subprocess backend over any DIMACS CNF solver binary.

    The handle writes the loaded formula (plus per-call assumptions as unit
    clauses) to a temporary ``.cnf`` file and invokes the solver, following
    SAT-competition conventions: exit code 10 is SAT (with a ``v``-line
    model), 20 is UNSAT, anything else is UNKNOWN.  Wall-clock limits are
    enforced twice — via the solver's native flag when the family is known
    (see ``_DIMACS_LIMIT_FLAGS``) and via the subprocess timeout always —
    so even a solver that ignores its flag cannot overrun the budget.
    Conflict budgets are passed through only where the family exposes a
    flag; requesting one from a family that does not raises
    :class:`BackendError` rather than silently running unbounded.

    Unlike the in-process backends the subprocess is not incremental: each
    ``solve`` call pays a fresh file write and process start.  The payoff is
    raw solver speed on the hard high-chunk-count instances.

    **Failure handling.**  Exit codes are classified with
    :func:`classify_dimacs_exit`; a *crash* (signal death, unexpected exit
    code) is retried on the exact same formula up to ``max_retries`` times
    with exponential backoff.  A call whose every attempt crashed counts
    against the process-wide :class:`BackendQuarantine` and conservatively
    reports ``UNKNOWN`` — a dying solver can slow a sweep down, never sink
    it or flip a verdict.  Any successful verdict resets the backend's
    quarantine counter.
    """

    def __init__(
        self,
        executable: str,
        *,
        name: Optional[str] = None,
        extra_args: Sequence[str] = (),
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        quarantine: Optional[BackendQuarantine] = None,
    ) -> None:
        if max_retries < 0:
            raise BackendError("max_retries must be non-negative")
        if retry_backoff_s < 0:
            raise BackendError("retry_backoff_s must be non-negative")
        self.executable = executable
        self.name = name or Path(executable).stem
        self.extra_args = tuple(extra_args)
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.quarantine = quarantine

    def create(self) -> "_DimacsHandle":
        return _DimacsHandle(
            self.executable,
            self.name,
            self.extra_args,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            quarantine=self.quarantine,
        )


class _DimacsHandle:
    def __init__(
        self,
        executable: str,
        family: str,
        extra_args: Tuple[str, ...],
        *,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        quarantine: Optional[BackendQuarantine] = None,
    ) -> None:
        self._executable = executable
        self._family = family
        self._extra_args = extra_args
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._quarantine = quarantine if quarantine is not None else QUARANTINE
        self._cnf: Optional[CNF] = None
        self._model: Dict[int, bool] = {}
        self._stats: Dict[str, float] = {
            "subprocess_calls": 0,
            "subprocess_time": 0.0,
            "crashes": 0,
            "retries": 0,
            "exhausted_calls": 0,
        }

    def load(self, cnf: CNF) -> bool:
        self._cnf = cnf
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        if self._cnf is None:
            raise BackendError("solve() called before load()")
        self._model = {}
        command = [self._executable, *self._extra_args]
        time_flag, conflict_flag = _DIMACS_LIMIT_FLAGS.get(self._family, (None, None))
        if time_limit is not None and time_flag is not None:
            command.extend(time_flag.format(seconds=max(1, int(time_limit))).split())
        if conflict_limit is not None:
            if conflict_flag is None:
                # Silently running unbounded would betray the "exceeded ->
                # unknown" contract; fail fast with an actionable message.
                raise BackendError(
                    f"solver family {self._family!r} exposes no conflict-budget "
                    f"flag; use a time limit instead"
                )
            command.extend(conflict_flag.format(conflicts=conflict_limit).split())

        fd, path = tempfile.mkstemp(prefix="repro-", suffix=".cnf")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # Assumptions become unit clauses of this one-shot formula;
                # the header counts them so strict parsers accept the file.
                handle.write(
                    f"p cnf {self._cnf.num_vars} "
                    f"{self._cnf.num_clauses + len(assumptions)}\n"
                )
                for clause in self._cnf.clauses:
                    handle.write(" ".join(str(lit) for lit in clause) + " 0\n")
                for literal in assumptions:
                    handle.write(f"{literal} 0\n")
            command.append(path)
            return self._solve_with_retries(command, time_limit)
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _solve_with_retries(
        self, command: List[str], time_limit: Optional[float]
    ) -> SolveResult:
        """Run the solver, retrying the exact formula on crash exit codes."""
        deadline = None if time_limit is None else time_limit + 5.0
        for attempt in range(self._max_retries + 1):
            start = time.monotonic()
            try:
                completed = subprocess.run(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    timeout=deadline,
                    text=True,
                )
            except subprocess.TimeoutExpired:
                # A timeout is the budget expiring, not a solver failure.
                return SolveResult.UNKNOWN
            except OSError as exc:
                raise BackendError(
                    f"cannot run DIMACS solver {self._executable!r}: {exc}"
                ) from exc
            finally:
                self._stats["subprocess_calls"] += 1
                self._stats["subprocess_time"] += time.monotonic() - start

            verdict = classify_dimacs_exit(completed.returncode)
            if verdict != "crash":
                self._quarantine.record_success(self._family)
                if verdict == "sat":
                    self._model = self._parse_model(completed.stdout)
                    return SolveResult.SAT
                if verdict == "unsat":
                    return SolveResult.UNSAT
                return SolveResult.UNKNOWN

            self._stats["crashes"] += 1
            get_metrics().inc("repro_solver_crashes_total", backend=self._family)
            if attempt < self._max_retries:
                self._stats["retries"] += 1
                get_metrics().inc("repro_solver_retries_total", backend=self._family)
                if self._retry_backoff_s > 0:
                    time.sleep(self._retry_backoff_s * (2 ** attempt))

        # Every attempt crashed: count it against the quarantine and report
        # UNKNOWN so the sweep degrades instead of failing.
        self._stats["exhausted_calls"] += 1
        self._quarantine.record_crash(self._family)
        return SolveResult.UNKNOWN

    def _parse_model(self, stdout: str) -> Dict[int, bool]:
        model: Dict[int, bool] = {}
        for line in stdout.splitlines():
            if not line.startswith("v"):
                continue
            for token in line[1:].split():
                literal = int(token)
                if literal == 0:
                    continue
                model[abs(literal)] = literal > 0
        assert self._cnf is not None
        for var in range(1, self._cnf.num_vars + 1):
            model.setdefault(var, False)
        return model

    def model(self) -> Dict[int, bool]:
        return dict(self._model)

    def stats(self) -> Dict[str, float]:
        return dict(self._stats)


def register_dimacs_backends(
    candidates: Sequence[str] = DIMACS_SOLVER_CANDIDATES,
) -> List[str]:
    """Register a DIMACS backend per solver binary found on PATH.

    Called once at import time (mirroring the pysat gating); safe to call
    again after installing a solver.  Returns the names registered.
    """
    registered: List[str] = []
    for name in candidates:
        if name in _REGISTRY:
            continue
        executable = shutil.which(name)
        if executable is None:
            continue
        register_backend(DimacsSolverBackend(executable, name=name))
        registered.append(name)
    return registered


_REGISTRY: Dict[str, SolverBackend] = {}

DEFAULT_BACKEND = "cdcl"


def register_backend(backend: SolverBackend, *, replace: bool = False) -> None:
    """Register a backend under ``backend.name``."""
    name = getattr(backend, "name", "")
    if not name:
        raise BackendError("backend must expose a non-empty .name")
    if name in _REGISTRY and not replace:
        raise BackendError(f"backend {name!r} already registered (pass replace=True)")
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (the default cannot be removed)."""
    if name == DEFAULT_BACKEND:
        raise BackendError("the default cdcl backend cannot be unregistered")
    _REGISTRY.pop(name, None)


def get_backend(name: Optional[str] = None) -> SolverBackend:
    """Look up a backend by name (``None`` selects the default)."""
    key = name or DEFAULT_BACKEND
    backend = _REGISTRY.get(key)
    if backend is None:
        raise BackendError(
            f"unknown solver backend {key!r}; available: {sorted(_REGISTRY)}"
        )
    return backend


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


register_backend(CdclBackend())

try:  # pragma: no cover - exercised only where python-sat is installed
    import pysat.solvers  # noqa: F401

    register_backend(PySatBackend())
except ImportError:
    pass

register_dimacs_backends()

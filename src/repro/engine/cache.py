"""Persistent, content-addressed cache of synthesized algorithms.

Every solved ``(topology, collective, C, S, R, root, encoding, prune)``
candidate is fingerprinted with SHA-256 over a canonical JSON payload and
stored as one JSON file per entry.  SAT entries carry the verified
algorithm's serialized schedule; UNSAT entries carry just the status, so a
warm Pareto sweep skips its failed probes as well as its successes.
UNKNOWN results are never cached — they depend on the resource limits of
the run that produced them.

The fingerprint covers only what determines satisfiability: the topology's
structure (node count and bandwidth constraints — *not* its name or its
alpha/beta cost parameters), the instance signature, and the encoding
configuration.  On a hit the stored algorithm is re-verified against the
run semantics and re-attached to the *requested* topology object, so cost
queries use the caller's alpha/beta.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # POSIX only; on other platforms mutations fall back to best-effort.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from ..core.algorithm import Algorithm
from ..core.instance import SynCollInstance
from ..solver import SolveResult
from ..telemetry import get_metrics
from ..topology import Topology

CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CacheError(Exception):
    """Raised for malformed cache configurations."""


def topology_fingerprint_payload(topology: Topology) -> dict:
    """The structural part of a topology: what the solver can observe."""
    return {
        "num_nodes": topology.num_nodes,
        "constraints": sorted(
            (sorted(list(c.links)), c.bandwidth) for c in topology.constraints
        ),
    }


def topology_cost_payload(topology: Topology) -> dict:
    """The cost-model part of a topology: what the router/simulator observe.

    Structure (:func:`topology_fingerprint_payload`) decides satisfiability;
    these parameters decide which satisfiable algorithm *wins* at a given
    buffer size.  Routing keys hash both, so a routing table built under old
    alpha/beta figures — or before a ``LinkDegraded`` fault inflated a link —
    is invalidated instead of silently served.
    """
    return {
        "alpha": topology.alpha,
        "beta": topology.beta,
        "link_latency": sorted(
            ([src, dst], value) for (src, dst), value in topology.link_latency.items()
        ),
        "link_beta_scale": sorted(
            ([src, dst], value)
            for (src, dst), value in topology.link_beta_scale.items()
        ),
    }


def fingerprint(
    collective: str,
    topology: Topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    *,
    root: int = 0,
    encoding: str = "sccl",
    prune: bool = True,
) -> str:
    """Content hash identifying one synthesis candidate."""
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "collective": collective,
        "topology": topology_fingerprint_payload(topology),
        "chunks_per_node": chunks_per_node,
        "steps": steps,
        "rounds": rounds,
        "root": root,
        "encoding": encoding,
        "prune": prune,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def instance_fingerprint(
    instance: SynCollInstance, *, encoding: str = "sccl", prune: bool = True
) -> str:
    return fingerprint(
        instance.collective,
        instance.topology,
        instance.chunks_per_node,
        instance.steps,
        instance.rounds,
        root=instance.root,
        encoding=encoding,
        prune=prune,
    )


@dataclass
class CacheEntry:
    """One persisted synthesis outcome.

    ``instance`` is an optional human-readable description of the candidate
    (collective, topology name, C/S/R, root, encoding) written alongside the
    opaque content hash so that ``repro cache ls`` can say what an entry
    *is*; entries written before it was introduced simply report unknowns.
    """

    key: str
    status: str                       # "sat" or "unsat"
    algorithm: Optional[dict] = None  # Algorithm.to_dict() for SAT entries
    backend: str = "cdcl"
    solve_time: float = 0.0
    created_at: float = 0.0
    instance: Optional[dict] = None   # descriptive metadata (not part of the key)
    #: How the verdict was obtained: ``"solved"`` (a solver proved it) or
    #: ``"cut"`` (derived from a monotone UNSAT bound without a solver
    #: call).  Entries written before this field existed report "solved".
    provenance: str = "solved"

    def to_json(self) -> dict:
        return {
            "version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "status": self.status,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "solve_time": self.solve_time,
            "created_at": self.created_at,
            "instance": self.instance,
            "provenance": self.provenance,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CacheEntry":
        if data.get("version") != CACHE_FORMAT_VERSION:
            raise CacheError(f"unsupported cache format version {data.get('version')!r}")
        if data.get("status") not in ("sat", "unsat"):
            raise CacheError(f"invalid cached status {data.get('status')!r}")
        return cls(
            key=data["key"],
            status=data["status"],
            algorithm=data.get("algorithm"),
            backend=data.get("backend", "cdcl"),
            solve_time=float(data.get("solve_time", 0.0)),
            created_at=float(data.get("created_at", 0.0)),
            instance=data.get("instance"),
            provenance=str(data.get("provenance", "solved")),
        )

    def describe_instance(self) -> str:
        """One-line candidate description for cache listings."""
        meta = self.instance or {}
        collective = meta.get("collective", "?")
        topology = meta.get("topology", "?")
        c = meta.get("chunks_per_node", "?")
        s = meta.get("steps", "?")
        r = meta.get("rounds", "?")
        return f"{collective} on {topology} C={c} S={s} R={r}"


class AlgorithmCache:
    """Directory-backed algorithm store with per-run hit/miss counters.

    Entries live under ``<root>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + rename), so concurrent writers — the parallel
    dispatcher's worker processes and the planning service's threads — can
    share one cache directory.  Whole-index mutations (``evict``,
    ``clear``) additionally serialize on an ``fcntl`` lock file, so two
    concurrent evictions cannot race each other below their limits and an
    eviction cannot interleave with another's bookkeeping.  Single-entry
    stores stay lock-free: the atomic rename already makes them safe, and
    the store path is the service's hot path.
    """

    #: Name of the advisory lock file guarding index mutations.
    LOCK_NAME = ".lock"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @contextlib.contextmanager
    def _mutation_lock(self):
        """Advisory exclusive lock for index-wide mutations (evict/clear).

        Best effort on purpose: when ``fcntl`` is unavailable or the
        directory is unwritable, mutations proceed unlocked — per-entry
        deletes tolerate losing races (missing files are skipped), the
        lock only removes the window where two evictors both prune.
        """
        if fcntl is None:
            yield
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = open(self.root / self.LOCK_NAME, "a+")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[CacheEntry]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = CacheEntry.from_json(json.load(handle))
        except (OSError, ValueError, KeyError, CacheError):
            self.misses += 1
            get_metrics().inc("repro_cache_lookups_total", outcome="miss")
            return None
        if entry.key != key:
            self.misses += 1
            get_metrics().inc("repro_cache_lookups_total", outcome="miss")
            return None
        self.hits += 1
        get_metrics().inc("repro_cache_lookups_total", outcome="hit")
        # Refresh the file's mtime so LRU eviction sees recently-replayed
        # entries as hot.  Best effort: a read-only cache still serves hits.
        try:
            os.utime(path)
        except OSError:
            pass
        return entry

    def store(self, entry: CacheEntry) -> None:
        path = self._path(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{entry.key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_json(), handle, sort_keys=True)
            os.replace(tmp_name, path)
            get_metrics().inc("repro_cache_stores_total")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def discard(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def clear(self) -> None:
        with self._mutation_lock():
            for path in self.root.glob("*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json")) if self.root.exists() else 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}

    # ------------------------------------------------------------------
    # Inspection / eviction (the roadmap's size limits, driven by the CLI)
    # ------------------------------------------------------------------
    def entry_paths(self) -> List[Path]:
        """All entry files, ordered least-recently-used first.

        Recency is the file mtime (refreshed on every cache hit); ties break
        on the key so the ordering — and therefore eviction — is
        deterministic.
        """
        if not self.root.exists():
            return []
        paths = []
        for path in self.root.glob("*/*.json"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            paths.append((mtime, path.stem, path))
        return [path for (_, _, path) in sorted(paths, key=lambda t: (t[0], t[1]))]

    def entries(self) -> List[Tuple[Path, CacheEntry]]:
        """All readable entries, least-recently-used first.

        Unreadable or malformed files are skipped (they are invisible to
        :meth:`lookup` anyway; ``repro cache verify`` reports them).
        """
        result: List[Tuple[Path, CacheEntry]] = []
        for path in self.entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = CacheEntry.from_json(json.load(handle))
            except (OSError, ValueError, KeyError, CacheError):
                continue
            result.append((path, entry))
        return result

    def total_bytes(self) -> int:
        total = 0
        for path in self.entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def evict(
        self,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Prune the cache to the given limits; returns the evicted keys.

        Eviction is LRU: entries are removed least-recently-used first until
        every supplied limit holds.  ``max_age_s`` drops entries whose last
        use is older than the horizon regardless of the other limits.  With
        no limits supplied this is a no-op.
        """
        if max_entries is not None and max_entries < 0:
            raise CacheError("max_entries must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise CacheError("max_bytes must be non-negative")
        if max_age_s is not None and max_age_s < 0:
            raise CacheError("max_age_s must be non-negative")
        with self._mutation_lock():
            return self._evict_locked(
                max_entries=max_entries, max_bytes=max_bytes,
                max_age_s=max_age_s, now=now,
            )

    def _evict_locked(
        self,
        *,
        max_entries: Optional[int],
        max_bytes: Optional[int],
        max_age_s: Optional[float],
        now: Optional[float],
    ) -> List[str]:
        ordered = self.entry_paths()  # LRU first
        sizes: Dict[Path, int] = {}
        mtimes: Dict[Path, float] = {}
        for path in ordered:
            try:
                stat = path.stat()
            except OSError:
                sizes[path], mtimes[path] = 0, 0.0
                continue
            sizes[path], mtimes[path] = stat.st_size, stat.st_mtime

        now = time.time() if now is None else now
        survivors = list(ordered)
        doomed: List[Path] = []

        if max_age_s is not None:
            horizon = now - max_age_s
            stale = [p for p in survivors if mtimes[p] < horizon]
            doomed.extend(stale)
            survivors = [p for p in survivors if mtimes[p] >= horizon]
        if max_entries is not None and len(survivors) > max_entries:
            cut = len(survivors) - max_entries
            doomed.extend(survivors[:cut])
            survivors = survivors[cut:]
        if max_bytes is not None:
            total = sum(sizes[p] for p in survivors)
            while survivors and total > max_bytes:
                victim = survivors.pop(0)
                total -= sizes[victim]
                doomed.append(victim)

        evicted: List[str] = []
        for path in doomed:
            try:
                path.unlink()
            except OSError:
                continue
            evicted.append(path.stem)
        if evicted:
            get_metrics().inc(
                "repro_cache_evictions_total", value=float(len(evicted))
            )
        return evicted

    # ------------------------------------------------------------------
    # Algorithm-level convenience API (used by runtime/ and evaluation/)
    # ------------------------------------------------------------------
    def load_algorithm(
        self,
        collective: str,
        topology: Topology,
        chunks_per_node: int,
        steps: int,
        rounds: int,
        *,
        root: int = 0,
        encoding: str = "sccl",
        prune: bool = True,
        verify: bool = True,
    ) -> Optional[Algorithm]:
        """Return the cached verified algorithm for a candidate, or None.

        The stored schedule is re-attached to the caller's topology object
        (the fingerprint guarantees structural equality) and re-verified.
        """
        key = fingerprint(
            collective, topology, chunks_per_node, steps, rounds,
            root=root, encoding=encoding, prune=prune,
        )
        entry = self.lookup(key)
        if entry is None or entry.status != "sat" or entry.algorithm is None:
            return None
        return self._decode_algorithm(entry, topology, key, verify=verify)

    def _decode_algorithm(
        self, entry: CacheEntry, topology: Topology, key: str, *, verify: bool = True
    ) -> Optional[Algorithm]:
        try:
            algorithm = Algorithm.from_dict(entry.algorithm)
            algorithm = dataclasses.replace(algorithm, topology=topology)
            if verify:
                algorithm.verify()
        except Exception:
            # Corrupted or stale entry: drop it and report a miss.
            self.discard(key)
            self.hits -= 1
            self.misses += 1
            get_metrics().inc("repro_cache_corrupt_total")
            return None
        return algorithm


def default_cache_dir() -> Path:
    """The cache directory: $REPRO_CACHE_DIR or ~/.cache/repro-sccl/algorithms."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sccl" / "algorithms"


def default_cache() -> AlgorithmCache:
    """The process-default persistent cache (see :func:`default_cache_dir`)."""
    return AlgorithmCache(default_cache_dir())


# ----------------------------------------------------------------------
# SynthesisResult bridging (used by the synthesizer and the dispatchers)
# ----------------------------------------------------------------------
def lookup_result(
    cache: AlgorithmCache,
    instance: SynCollInstance,
    *,
    encoding: str = "sccl",
    prune: bool = True,
    verify: bool = True,
):
    """Replay a cached outcome as a :class:`~repro.core.synthesizer.SynthesisResult`.

    Returns ``None`` on a miss (including corrupted entries).  Hits carry
    ``cache_hit=True``, the backend that originally produced the entry, and
    zero encode/solve time — the evaluation tables use those fields to
    distinguish solved from replayed rows.
    """
    from ..core.synthesizer import SynthesisResult

    key = instance_fingerprint(instance, encoding=encoding, prune=prune)
    entry = cache.lookup(key)
    if entry is None:
        return None
    algorithm = None
    if entry.status == "sat":
        algorithm = cache._decode_algorithm(entry, instance.topology, key, verify=verify)
        if algorithm is None:
            return None
    status = SolveResult.SAT if entry.status == "sat" else SolveResult.UNSAT
    return SynthesisResult(
        instance=instance,
        status=status,
        algorithm=algorithm,
        encoding=encoding,
        backend=entry.backend,
        cache_hit=True,
        provenance=entry.provenance,
    )


def store_result(
    cache: AlgorithmCache,
    result,
    *,
    encoding: str = "sccl",
    prune: bool = True,
) -> bool:
    """Persist a SAT or UNSAT synthesis outcome; UNKNOWN is never stored."""
    status = result.status
    if status is SolveResult.SAT:
        if result.algorithm is None:
            return False
        payload = result.algorithm.to_dict()
        status_name = "sat"
    elif status is SolveResult.UNSAT:
        payload = None
        status_name = "unsat"
    else:
        return False
    key = instance_fingerprint(result.instance, encoding=encoding, prune=prune)
    instance = result.instance
    entry = CacheEntry(
        key=key,
        status=status_name,
        algorithm=payload,
        backend=result.backend,
        solve_time=result.solve_time,
        created_at=time.time(),
        provenance=getattr(result, "provenance", "solved"),
        instance={
            "collective": instance.collective,
            "topology": instance.topology.name,
            "num_nodes": instance.topology.num_nodes,
            "chunks_per_node": instance.chunks_per_node,
            "steps": instance.steps,
            "rounds": instance.rounds,
            "root": instance.root,
            "encoding": encoding,
            "prune": prune,
        },
    )
    try:
        cache.store(entry)
    except OSError:
        # The cache is an optimization: an unwritable directory must never
        # fail a synthesis that already succeeded.
        return False
    return True


def load_algorithm(
    cache: AlgorithmCache,
    collective: str,
    topology: Topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    **kwargs,
) -> Optional[Algorithm]:
    """Module-level alias of :meth:`AlgorithmCache.load_algorithm`."""
    return cache.load_algorithm(
        collective, topology, chunks_per_node, steps, rounds, **kwargs
    )

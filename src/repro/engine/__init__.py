"""The synthesis engine: solver backends, incremental sessions, parallel
candidate dispatch and the persistent algorithm cache.

This layer sits between the CNF/SAT substrate (:mod:`repro.solver`) and the
synthesis logic (:mod:`repro.core`): the encoders stay where they are, but
every *solve* now flows through a named :class:`SolverBackend`, fixed-``S``
candidate sweeps reuse one encoding via :class:`IncrementalSession`, whole
sweeps can fan out over a process pool via :class:`ParallelDispatcher`, and
verified outcomes persist in a content-addressed :class:`AlgorithmCache`
shared by the examples, the benchmarks, the evaluation harness and the
runtime.
"""

from .backends import (
    BackendError,
    BackendQuarantine,
    CdclBackend,
    CdclHandle,
    DEFAULT_BACKEND,
    DIMACS_SOLVER_CANDIDATES,
    DimacsSolverBackend,
    PySatBackend,
    QUARANTINE,
    SolverBackend,
    SolverHandle,
    available_backends,
    classify_dimacs_exit,
    get_backend,
    get_quarantine,
    register_backend,
    register_dimacs_backends,
    unregister_backend,
)
from .bounds import (
    CUT,
    PROBE,
    PRUNE,
    BoundsError,
    BoundsLedger,
    FeasiblePoint,
    ProbePlan,
    cut_result,
    seed_ledger,
)
from .cache import (
    CACHE_DIR_ENV,
    AlgorithmCache,
    CacheEntry,
    CacheError,
    default_cache,
    default_cache_dir,
    fingerprint,
    instance_fingerprint,
    load_algorithm,
    lookup_result,
    store_result,
)
from .dispatch import (
    DispatchError,
    IncrementalDispatcher,
    ParallelDispatcher,
    SerialDispatcher,
    SpeculativeDispatcher,
    STRATEGIES,
    SweepOutcome,
    SweepRequest,
    SweepStats,
    make_dispatcher,
)
from .session import IncrementalSession, SessionError, SessionFamily

__all__ = [
    "AlgorithmCache",
    "BackendError",
    "BackendQuarantine",
    "BoundsError",
    "BoundsLedger",
    "CACHE_DIR_ENV",
    "CUT",
    "CacheEntry",
    "CacheError",
    "FeasiblePoint",
    "PROBE",
    "PRUNE",
    "ProbePlan",
    "CdclBackend",
    "CdclHandle",
    "DEFAULT_BACKEND",
    "DIMACS_SOLVER_CANDIDATES",
    "DimacsSolverBackend",
    "DispatchError",
    "IncrementalDispatcher",
    "IncrementalSession",
    "ParallelDispatcher",
    "PySatBackend",
    "QUARANTINE",
    "STRATEGIES",
    "SerialDispatcher",
    "SessionError",
    "SessionFamily",
    "SolverBackend",
    "SpeculativeDispatcher",
    "SolverHandle",
    "SweepOutcome",
    "SweepRequest",
    "SweepStats",
    "available_backends",
    "classify_dimacs_exit",
    "cut_result",
    "seed_ledger",
    "default_cache",
    "default_cache_dir",
    "fingerprint",
    "get_backend",
    "get_quarantine",
    "instance_fingerprint",
    "load_algorithm",
    "lookup_result",
    "make_dispatcher",
    "register_backend",
    "register_dimacs_backends",
    "store_result",
    "unregister_backend",
]

"""Collective primitive specifications (Table 2 of the paper).

A :class:`CollectiveSpec` names a collective, says whether it *combines*
data (reductions) or merely moves it, and knows how to produce the pre- and
post-condition placements for a given topology size and per-node chunk
count.  The mapping from the per-node chunk count ``C`` (what users and the
evaluation tables talk about) to the global chunk count ``G`` used in the
formalization is collective-dependent and implemented here:

============== ============ ====================================
Collective     pre → post   global chunks G for per-node count C
============== ============ ====================================
Gather         Scattered→Root        ``P * C``
Allgather      Scattered→All         ``P * C``
Alltoall       Scattered→Transpose   ``P * C``
Broadcast      Root→All              ``C``
Scatter        Root→Scattered        ``P * C``
Reduce         (inverse of Broadcast)
Reducescatter  (inverse of Allgather)
Allreduce      (Reducescatter then Allgather)
============== ============ ====================================

For Alltoall the per-node count ``C`` is the number of chunks each node
starts with (one or more destined to every peer); the paper's Table 4 rows
``C = 8`` and ``C = 24`` correspond to 1 and 3 chunks per destination on
the 8-GPU machines.  Destination assignment is balanced whenever ``C`` is a
multiple of ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from . import relations
from .relations import Placement


class CollectiveError(Exception):
    """Raised for unknown collectives or invalid parameters."""


@dataclass(frozen=True)
class CollectiveSpec:
    """Specification of a collective primitive.

    Attributes
    ----------
    name:
        Canonical name, e.g. ``"Allgather"``.
    pre_relation / post_relation:
        Names of Table 1 relations for non-combining collectives; ``None``
        for combining collectives that are synthesized via reduction
        (Section 3.5).
    combining:
        True for collectives that apply a reduction operation.
    root_based:
        True when the collective takes a root argument (Broadcast, Reduce,
        Gather, Scatter).
    inverse_of:
        For combining collectives obtained by inversion: the name of the
        non-combining collective whose algorithms are inverted.
    """

    name: str
    pre_relation: Optional[str]
    post_relation: Optional[str]
    combining: bool = False
    root_based: bool = False
    inverse_of: Optional[str] = None

    # ------------------------------------------------------------------
    # Chunk counting
    # ------------------------------------------------------------------
    def global_chunks(self, num_nodes: int, chunks_per_node: int) -> int:
        """Convert a per-node chunk count ``C`` to the global count ``G``."""
        if chunks_per_node < 0:
            raise CollectiveError("negative chunk count")
        if self.name in ("Broadcast", "Reduce"):
            return chunks_per_node
        if self.name in ("Allgather", "Gather", "Scatter", "Reducescatter", "Alltoall"):
            return num_nodes * chunks_per_node
        if self.name == "Allreduce":
            # Allreduce is synthesized as Reducescatter + Allgather over the
            # Allgather's chunks; each node contributes P * C chunks.
            return num_nodes * chunks_per_node
        raise CollectiveError(f"unknown collective {self.name!r}")

    def per_node_chunks(self, num_nodes: int, global_chunks: int) -> int:
        """Inverse of :meth:`global_chunks` (exact division enforced)."""
        if self.name in ("Broadcast", "Reduce"):
            return global_chunks
        divisor = {
            "Allgather": num_nodes,
            "Gather": num_nodes,
            "Scatter": num_nodes,
            "Reducescatter": num_nodes,
            "Allreduce": num_nodes,
            "Alltoall": num_nodes,
        }.get(self.name)
        if divisor is None:
            raise CollectiveError(f"unknown collective {self.name!r}")
        if global_chunks % divisor:
            raise CollectiveError(
                f"{self.name}: global chunk count {global_chunks} is not a "
                f"multiple of {divisor}"
            )
        return global_chunks // divisor

    # ------------------------------------------------------------------
    # Placements
    # ------------------------------------------------------------------
    def precondition(
        self, num_nodes: int, chunks_per_node: int, root: int = 0
    ) -> Placement:
        if self.pre_relation is None:
            raise CollectiveError(
                f"{self.name} is a combining collective; synthesize it via "
                f"its non-combining counterpart ({self.inverse_of})"
            )
        return self._relation(self.pre_relation, num_nodes, chunks_per_node, root)

    def postcondition(
        self, num_nodes: int, chunks_per_node: int, root: int = 0
    ) -> Placement:
        if self.post_relation is None:
            raise CollectiveError(
                f"{self.name} is a combining collective; synthesize it via "
                f"its non-combining counterpart ({self.inverse_of})"
            )
        return self._relation(self.post_relation, num_nodes, chunks_per_node, root)

    def _relation(
        self, relation_name: str, num_nodes: int, chunks_per_node: int, root: int
    ) -> Placement:
        num_global = self.global_chunks(num_nodes, chunks_per_node)
        builder = relations.RELATION_BUILDERS.get(relation_name)
        if builder is None:
            raise CollectiveError(f"unknown relation {relation_name!r}")
        if relation_name == "Root":
            return builder(num_global, num_nodes, root)
        return builder(num_global, num_nodes)

    def placements(
        self, num_nodes: int, chunks_per_node: int, root: int = 0
    ) -> Tuple[Placement, Placement]:
        """The (pre, post) placements an algorithm for this collective must have.

        For non-combining collectives these are the Table 2 relations.  For
        combining collectives — which are never encoded directly — they are
        the placements of the *derived* algorithms built by
        :mod:`repro.core.combining`:

        * Reduce (inverted Broadcast): every node holds a partial of every
          chunk (``All``); the root ends with the full reduction (``Root``).
          ``G = C``.
        * Reducescatter (inverted Allgather): ``All`` to ``Scattered`` with
          ``G = P * C``.
        * Allreduce (Reducescatter ; Allgather): ``All`` to ``All``.  The
          composition splits each node's buffer into the Allgather's global
          chunk count, so ``G = C`` under the derived-algorithm convention.

        This is the ground truth the interchange importers re-verify foreign
        schedules against (:mod:`repro.interchange.checks`).
        """
        if not self.combining:
            return (
                self.precondition(num_nodes, chunks_per_node, root),
                self.postcondition(num_nodes, chunks_per_node, root),
            )
        if self.name == "Reduce":
            num_global = chunks_per_node
            return (
                relations.all_nodes(num_global, num_nodes),
                relations.root(num_global, num_nodes, root),
            )
        if self.name == "Reducescatter":
            num_global = num_nodes * chunks_per_node
            return (
                relations.all_nodes(num_global, num_nodes),
                relations.scattered(num_global, num_nodes),
            )
        if self.name == "Allreduce":
            full = relations.all_nodes(chunks_per_node, num_nodes)
            return (full, full)
        raise CollectiveError(f"unknown combining collective {self.name!r}")


#: All collectives discussed by the paper.  Non-combining ones carry their
#: Table 2 pre/post relations; combining ones point at the non-combining
#: collective they are derived from (Section 3.5).
COLLECTIVES: Dict[str, CollectiveSpec] = {
    spec.name: spec
    for spec in [
        CollectiveSpec("Gather", "Scattered", "Root", root_based=True),
        CollectiveSpec("Allgather", "Scattered", "All"),
        CollectiveSpec("Alltoall", "Scattered", "Transpose"),
        CollectiveSpec("Broadcast", "Root", "All", root_based=True),
        CollectiveSpec("Scatter", "Root", "Scattered", root_based=True),
        CollectiveSpec(
            "Reduce", None, None, combining=True, root_based=True, inverse_of="Broadcast"
        ),
        CollectiveSpec(
            "Reducescatter", None, None, combining=True, inverse_of="Allgather"
        ),
        CollectiveSpec("Allreduce", None, None, combining=True, inverse_of="Allgather"),
    ]
}


def get_collective(name: str) -> CollectiveSpec:
    """Look up a collective by (case-insensitive) name."""
    for key, spec in COLLECTIVES.items():
        if key.lower() == name.lower():
            return spec
    raise CollectiveError(
        f"unknown collective {name!r}; known: {sorted(COLLECTIVES)}"
    )


def non_combining_collectives() -> List[CollectiveSpec]:
    return [spec for spec in COLLECTIVES.values() if not spec.combining]


def combining_collectives() -> List[CollectiveSpec]:
    return [spec for spec in COLLECTIVES.values() if spec.combining]

"""Collective primitive specifications and chunk-placement relations."""

from .relations import (
    Placement,
    RelationError,
    all_nodes,
    chunk_count,
    chunks_at,
    is_function_of_chunk,
    nodes_with,
    root,
    scattered,
    transpose,
)
from .spec import (
    COLLECTIVES,
    CollectiveError,
    CollectiveSpec,
    combining_collectives,
    get_collective,
    non_combining_collectives,
)

__all__ = [
    "COLLECTIVES",
    "CollectiveError",
    "CollectiveSpec",
    "Placement",
    "RelationError",
    "all_nodes",
    "chunk_count",
    "chunks_at",
    "combining_collectives",
    "get_collective",
    "is_function_of_chunk",
    "nodes_with",
    "non_combining_collectives",
    "root",
    "scattered",
    "transpose",
]

"""Chunk-placement relations (Table 1 of the paper).

A relation is a set of ``(chunk, node)`` pairs over the global chunk ids
``[G]`` and the nodes ``[P]``.  Pre- and post-conditions of collectives are
expressed with four standard relations:

=========  =============================================================
Name       Relation
=========  =============================================================
All        ``[G] x [P]`` — every chunk on every node
Root       ``[G] x {n_root}`` — every chunk on a single root node
Scattered  ``{(c, n) | n = c mod P}`` — chunk ``c`` lives on node ``c mod P``
Transpose  ``{(c, n) | n = floor(c / P) mod P}`` — the Alltoall destination
=========  =============================================================

Relations are represented as frozensets of ``(chunk, node)`` tuples so they
can be used directly as pre/post conditions of
:class:`~repro.core.instance.SynCollInstance` and hashed/compared in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Set, Tuple

Placement = FrozenSet[Tuple[int, int]]


class RelationError(Exception):
    """Raised for invalid relation parameters."""


def all_nodes(num_chunks: int, num_nodes: int) -> Placement:
    """The ``All`` relation: every chunk resident on every node."""
    _validate(num_chunks, num_nodes)
    return frozenset((c, n) for c in range(num_chunks) for n in range(num_nodes))


def root(num_chunks: int, num_nodes: int, root_node: int = 0) -> Placement:
    """The ``Root`` relation: every chunk resident only on ``root_node``."""
    _validate(num_chunks, num_nodes)
    if not 0 <= root_node < num_nodes:
        raise RelationError(f"root node {root_node} out of range [0, {num_nodes})")
    return frozenset((c, root_node) for c in range(num_chunks))


def scattered(num_chunks: int, num_nodes: int) -> Placement:
    """The ``Scattered`` relation: chunk ``c`` resides on node ``c mod P``.

    With ``num_chunks = C * P`` this gives every node exactly ``C`` chunks,
    which is the canonical input state of Allgather/Alltoall/Gather and the
    output state of Scatter/Reducescatter.
    """
    _validate(num_chunks, num_nodes)
    return frozenset((c, c % num_nodes) for c in range(num_chunks))


def transpose(num_chunks: int, num_nodes: int) -> Placement:
    """The ``Transpose`` relation: chunk ``c`` must end on node ``floor(c/P) mod P``.

    Combined with a Scattered pre-condition this specifies Alltoall: node
    ``s`` starts with chunks ``{c | c mod P = s}``; the chunk it holds for
    destination ``d`` is the one with ``floor(c / P) mod P = d``.
    """
    _validate(num_chunks, num_nodes)
    return frozenset((c, (c // num_nodes) % num_nodes) for c in range(num_chunks))


def _validate(num_chunks: int, num_nodes: int) -> None:
    if num_chunks < 0:
        raise RelationError("negative chunk count")
    if num_nodes <= 0:
        raise RelationError("need at least one node")


#: Registry used by :func:`repro.collectives.spec.get_collective`.
RELATION_BUILDERS: Dict[str, Callable[..., Placement]] = {
    "All": all_nodes,
    "Root": root,
    "Scattered": scattered,
    "Transpose": transpose,
}


def chunks_at(relation: Placement, node: int) -> Set[int]:
    """The set of chunks a relation places on ``node``."""
    return {c for (c, n) in relation if n == node}


def nodes_with(relation: Placement, chunk: int) -> Set[int]:
    """The set of nodes a relation places ``chunk`` on."""
    return {n for (c, n) in relation if c == chunk}


def chunk_count(relation: Placement) -> int:
    """Number of distinct chunks mentioned by the relation."""
    return len({c for (c, _) in relation})


def is_function_of_chunk(relation: Placement) -> bool:
    """True when every chunk maps to exactly one node (single-root-per-chunk).

    This is the pre-requisite for the combining-collective inversion of
    Section 3.5 (Reduce, Reducescatter and Gather-style outputs satisfy it;
    Allreduce does not).
    """
    seen: Dict[int, int] = {}
    for (c, n) in relation:
        if c in seen and seen[c] != n:
            return False
        seen[c] = n
    return True

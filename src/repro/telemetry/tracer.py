"""Span-based tracing for the synthesis engine and the planning service.

A :class:`Span` is one timed region of work with a name, a flat attribute
dict, and child spans; a :class:`Tracer` records a forest of them.  Nesting
follows a per-thread stack, so code instruments itself with plain context
managers::

    with tracer.span("sweep", steps=3) as sweep:
        with tracer.span("probe", S=3, R=3, C=2) as probe:
            ...
            probe.set(verdict="sat")

Spans carry a wall-clock epoch start (for cross-process alignment) and a
monotonic-derived duration (immune to clock steps).  Spans produced inside
pool *worker processes* are exported as plain dicts
(:meth:`Tracer.export`), shipped back in the pickled result, and grafted
under the dispatching sweep span with :meth:`Span.adopt` — the Chrome trace
keeps the worker's pid/tid so Perfetto renders one track per worker.

The module-level default tracer is a shared :class:`NullTracer` whose
``span()`` returns one immutable no-op object, so an uninstrumented run
pays one attribute lookup and one method call per site and allocates
nothing.  :func:`tracing` swaps a recording tracer in for one call tree.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence


class Span:
    """One timed region: name, attributes, children (see module docstring)."""

    __slots__ = (
        "name", "attrs", "start_s", "duration_s", "pid", "tid", "children", "_open"
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[dict] = None,
        *,
        start_s: Optional[float] = None,
        duration_s: float = 0.0,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.start_s = time.time() if start_s is None else start_s
        self.duration_s = duration_s
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.children: List["Span"] = []
        self._open = True

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on an open or finished span."""
        self.attrs.update(attrs)
        return self

    def adopt(self, exported: Optional[Sequence[dict]]) -> None:
        """Re-parent spans exported by another process/tracer under this one."""
        for data in exported or ():
            self.children.append(Span.from_dict(data))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            str(data.get("name", "?")),
            data.get("attrs") or {},
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
        )
        span._open = False
        for child in data.get("children") or ():
            span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f}ms, "
            f"attrs={self.attrs}, children={len(self.children)})"
        )


class _SpanContext:
    """Context manager pairing a span with the tracer's per-thread stack."""

    __slots__ = ("_tracer", "span", "_mono0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._mono0 = 0.0

    def __enter__(self) -> Span:
        self._mono0 = time.monotonic()
        self._tracer._stack().append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration_s = time.monotonic() - self._mono0
        span._open = False
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit guard
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._tracer._attach(span, stack)
        return False


class Tracer:
    """Thread-safe recording tracer (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._listeners: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach(self, span: Span, stack: List[Span]) -> None:
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        for listener in list(self._listeners):
            listener(span)

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span: ``with tracer.span("solve", S=3) as sp: ...``"""
        return _SpanContext(self, Span(name, attrs))

    def instant(self, name: str, **attrs) -> Span:
        """Record a zero-duration event at the current nesting level."""
        span = Span(name, attrs)
        span._open = False
        self._attach(span, self._stack())
        return span

    def open(self, name: str, **attrs) -> Span:
        """Start a free-floating span (no stack nesting); finish with :meth:`close`.

        For overlapping regions a thread cannot express as nested ``with``
        blocks — e.g. the speculative dispatcher keeps several step counts'
        sweep spans open at once on one thread.  ``attrs['_mono0']`` holds
        the monotonic start internally and is stripped at close time.
        """
        span = Span(name, attrs)
        span.attrs["_mono0"] = time.monotonic()
        return span

    def close(self, span: Span, **attrs) -> None:
        """Finish a span from :meth:`open`; attaches it at the current level."""
        if not span._open:
            return
        mono0 = span.attrs.pop("_mono0", None)
        if isinstance(mono0, float):
            span.duration_s = time.monotonic() - mono0
        span.attrs.update(attrs)
        span._open = False
        self._attach(span, self._stack())

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Call ``listener(span)`` whenever a span finishes (log bridges)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Reading / exporting
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def export(self) -> List[dict]:
        """Finished root spans as plain dicts (for cross-process transport)."""
        return [span.to_dict() for span in self.roots()]

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON form (Perfetto / chrome://tracing)."""
        return spans_to_chrome_trace(self.roots())

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")


class _NullSpan:
    """The shared no-op span: every disabled call site gets this object."""

    __slots__ = ()
    children: tuple = ()
    attrs: dict = {}
    name = ""
    start_s = 0.0
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def adopt(self, exported) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: every method returns the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def open(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def close(self, span, **attrs) -> None:
        pass

    def add_listener(self, listener) -> None:
        pass

    def remove_listener(self, listener) -> None:
        pass

    def roots(self) -> List[Span]:
        return []

    def export(self) -> List[dict]:
        return []

    def clear(self) -> None:
        pass

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


NULL_TRACER = NullTracer()

_TRACER = NULL_TRACER
_TRACER_LOCK = threading.Lock()


def get_tracer():
    """The process-wide current tracer (the no-op singleton by default)."""
    return _TRACER


def set_tracer(tracer) -> object:
    """Install ``tracer`` (``None`` restores the no-op); returns the old one."""
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a recording tracer for one block; restores the previous one.

    ``with tracing() as tracer: pareto_synthesize(...)`` then read
    ``tracer.roots()`` / ``tracer.chrome_trace()``.
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# Span-forest utilities
# ----------------------------------------------------------------------
def iter_spans(spans: Iterable[Span]) -> Iterator[Span]:
    """Depth-first walk over a span forest."""
    pending = list(spans)
    while pending:
        span = pending.pop()
        yield span
        pending.extend(span.children)


def span_coverage(
    spans: Iterable[Span], name: str = "probe", total_s: Optional[float] = None
) -> float:
    """Fraction of wall clock covered by the union of ``name`` spans.

    ``total_s`` defaults to the extent of the whole forest (earliest start
    to latest end).  Overlapping intervals — concurrent pool workers — are
    merged before summing, so coverage never exceeds 1.0.
    """
    forest = list(spans)
    matching = [
        (s.start_s, s.end_s) for s in iter_spans(forest)
        if s.name == name and s.duration_s > 0
    ]
    if total_s is None:
        everything = [(s.start_s, s.end_s) for s in iter_spans(forest)]
        if not everything:
            return 0.0
        total_s = max(e for _, e in everything) - min(s for s, _ in everything)
    if not total_s or total_s <= 0 or not matching:
        return 0.0
    matching.sort()
    covered = 0.0
    cur_start, cur_end = matching[0]
    for start, end in matching[1:]:
        if start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
    covered += cur_end - cur_start
    return min(1.0, covered / total_s)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spans_to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Render a span forest as Chrome trace-event JSON (complete events)."""
    forest = list(spans)
    starts = [s.start_s for s in iter_spans(forest)]
    origin = min(starts) if starts else 0.0
    events: List[dict] = []

    def walk(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - origin) * 1e6,
                "dur": max(0.0, span.duration_s) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )
        for child in span.children:
            walk(child)

    for root in forest:
        walk(root)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"origin_epoch_s": origin, "producer": "repro.telemetry"},
    }


def summarize_chrome_trace(trace: dict, top: int = 0) -> str:
    """Human-readable digest of a Chrome trace (the ``repro trace`` command).

    ``top`` > 0 appends the N slowest individual spans (with their args),
    the first thing to look at when a sweep's wall clock jumps.
    """
    events = trace.get("traceEvents") or []
    if not events:
        return "empty trace (no events)"
    by_name: Dict[str, List[float]] = {}
    t_min, t_max = float("inf"), float("-inf")
    for event in events:
        if event.get("ph") != "X":
            continue
        dur = float(event.get("dur", 0.0)) / 1e6
        ts = float(event.get("ts", 0.0)) / 1e6
        by_name.setdefault(str(event.get("name", "?")), []).append(dur)
        t_min = min(t_min, ts)
        t_max = max(t_max, ts + dur)
    wall = max(0.0, t_max - t_min)
    pids = {event.get("pid") for event in events}
    lines = [
        f"{len(events)} events across {len(pids)} process(es), "
        f"wall extent {wall:.3f}s",
        "",
        f"{'span':<14} {'count':>6} {'total_s':>9} {'mean_ms':>9} {'max_ms':>9}",
    ]
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = by_name[name]
        total = sum(durs)
        lines.append(
            f"{name:<14} {len(durs):>6} {total:>9.3f} "
            f"{1e3 * total / len(durs):>9.2f} {1e3 * max(durs):>9.2f}"
        )
    probe_events = sorted(
        (float(e.get("ts", 0.0)) / 1e6,
         (float(e.get("ts", 0.0)) + float(e.get("dur", 0.0))) / 1e6)
        for e in events
        if e.get("ph") == "X" and e.get("name") == "probe"
        and float(e.get("dur", 0.0)) > 0
    )
    if probe_events and wall > 0:
        covered = 0.0
        cur_start, cur_end = probe_events[0]
        for start, end in probe_events[1:]:
            if start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                covered += cur_end - cur_start
                cur_start, cur_end = start, end
        covered += cur_end - cur_start
        lines.append("")
        lines.append(
            f"probe coverage: {100.0 * min(1.0, covered / wall):.1f}% of wall extent"
        )
    if top > 0:
        slowest = sorted(
            (e for e in events if e.get("ph") == "X"),
            key=lambda e: -float(e.get("dur", 0.0)),
        )[:top]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        for event in slowest:
            args = event.get("args") or {}
            detail = " ".join(
                f"{k}={args[k]}" for k in sorted(args)
                if isinstance(args[k], (str, int, float, bool))
            )
            lines.append(
                f"  {float(event.get('dur', 0.0)) / 1e3:>10.2f} ms  "
                f"{event.get('name', '?'):<14} "
                f"@{float(event.get('ts', 0.0)) / 1e6:>8.3f}s"
                + (f"  {detail}" if detail else "")
            )
    return "\n".join(lines)


def _phase_profile(trace: dict) -> Dict[str, Tuple[int, float]]:
    """Per-span-name (count, total_s) for one Chrome trace."""
    profile: Dict[str, Tuple[int, float]] = {}
    for event in trace.get("traceEvents") or []:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        count, total = profile.get(name, (0, 0.0))
        profile[name] = (count + 1, total + float(event.get("dur", 0.0)) / 1e6)
    return profile


def diff_chrome_traces(a: dict, b: dict, *,
                       label_a: str = "A", label_b: str = "B") -> str:
    """Phase-by-phase comparison of two Chrome traces (``repro trace --diff``).

    Lines up the per-span-name totals of both traces and reports the time
    delta and count drift, sorted by absolute time delta — the phase that
    moved the most comes first.
    """
    profile_a = _phase_profile(a)
    profile_b = _phase_profile(b)
    names = sorted(
        set(profile_a) | set(profile_b),
        key=lambda n: -abs(
            profile_b.get(n, (0, 0.0))[1] - profile_a.get(n, (0, 0.0))[1]
        ),
    )
    if not names:
        return "both traces are empty (no complete events)"
    wall_a = sum(t for _, t in profile_a.values())
    wall_b = sum(t for _, t in profile_b.values())
    lines = [
        f"{label_a}: {sum(c for c, _ in profile_a.values())} events, "
        f"{wall_a:.3f}s total span time",
        f"{label_b}: {sum(c for c, _ in profile_b.values())} events, "
        f"{wall_b:.3f}s total span time",
        "",
        f"{'span':<14} {'count ' + label_a:>9} {'count ' + label_b:>9} "
        f"{'total_s ' + label_a:>11} {'total_s ' + label_b:>11} {'delta_s':>10}",
    ]
    for name in names:
        count_a, total_a = profile_a.get(name, (0, 0.0))
        count_b, total_b = profile_b.get(name, (0, 0.0))
        delta = total_b - total_a
        rel = f" ({100.0 * delta / total_a:+.0f}%)" if total_a > 0 else ""
        lines.append(
            f"{name:<14} {count_a:>9} {count_b:>9} "
            f"{total_a:>11.3f} {total_b:>11.3f} {delta:>+10.3f}{rel}"
        )
    return "\n".join(lines)

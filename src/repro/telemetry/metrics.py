"""Label-aware metrics registry with Prometheus text exposition.

One process-wide :class:`Metrics` instance collects counters, gauges and
histograms from the engine (solver calls, cache lookups, bounds actions)
and the service (broker queue, resolver rungs, fault invalidations).  All
mutation goes through three calls::

    get_metrics().inc("repro_solver_calls_total", backend="cdcl")
    get_metrics().set_gauge("repro_broker_queue_depth", depth)
    get_metrics().observe("repro_solve_seconds", dt, backend="cdcl")

Series are keyed on ``(name, sorted label items)`` and rendered in the
Prometheus text-exposition format by :meth:`Metrics.render_prometheus`
(served at ``/v1/metrics``).  Everything is stdlib + one lock; increments
are cheap enough to stay enabled even when tracing is off.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelKey]

#: Default histogram bucket upper bounds (seconds-oriented).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricsError(Exception):
    """Raised when one metric name is used as two different types."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in items
    )
    return "{" + rendered + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        # Per-bucket (non-cumulative) counts; exposition cumulates them.
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        # Values past the last bound live only in the implicit +Inf bucket.

    def merge(self, other: "_Histogram") -> None:
        """Fold another histogram in (label-aggregated quantile queries)."""
        if other.buckets != self.buckets:  # pragma: no cover - one scheme used
            raise MetricsError("cannot merge histograms with different buckets")
        self.sum += other.sum
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, count in enumerate(other.counts):
            self.counts[index] += count

    def quantile(self, q: float) -> float:
        """Estimated q-quantile via linear interpolation within buckets.

        The observed min/max clamp the first and last occupied buckets, so
        single-value and narrow distributions report exact answers instead
        of bucket-boundary artifacts.
        """
        if self.count == 0:
            return 0.0
        if self.min == self.max:
            return self.min
        target = max(1.0, q * self.count)
        cumulative = 0.0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if count:
                if cumulative + count >= target:
                    low = max(lower, self.min)
                    high = max(low, min(bound, self.max))
                    fraction = (target - cumulative) / count
                    return low + fraction * (high - low)
                cumulative += count
            lower = bound
        return self.max  # the +Inf overflow bucket

    def quantiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Metrics:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, _Histogram] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self.since = time.time()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_type(self, name: str, kind: str) -> None:
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = kind
        elif seen != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {seen}, not {kind}"
            )

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "counter")
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "gauge")
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "histogram")
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(DEFAULT_BUCKETS)
            hist.observe(float(value))

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric name."""
        with self._lock:
            self._help[name] = help_text

    def reset(self) -> None:
        """Drop every series and restart the ``since`` epoch (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._types.clear()
            self.since = time.time()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """One series' current value (0.0 when it does not exist)."""
        key = (name, _label_key(labels))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            if key in self._gauges:
                return self._gauges[key]
            hist = self._histograms.get(key)
            return hist.sum if hist is not None else 0.0

    def total(self, name: str, **match) -> float:
        """Sum of all ``name`` series whose labels include ``match``."""
        wanted = set(_label_key(match))
        total = 0.0
        with self._lock:
            for store in (self._counters, self._gauges):
                for (series, labels), value in store.items():
                    if series == name and wanted <= set(labels):
                        total += value
            for (series, labels), hist in self._histograms.items():
                if series == name and wanted <= set(labels):
                    total += hist.sum
        return total

    def quantiles(
        self, name: str, quantiles: Tuple[float, ...] = (0.50, 0.95, 0.99),
        **match,
    ) -> Dict[str, float]:
        """Estimated quantiles over all ``name`` series matching ``match``.

        Matching histograms are bucket-merged first, so the answer covers
        the label-aggregated distribution (e.g. all backends together).
        Empty when no matching series has observations.
        """
        wanted = set(_label_key(match))
        merged: Optional[_Histogram] = None
        with self._lock:
            for (series, labels), hist in self._histograms.items():
                if series == name and wanted <= set(labels):
                    if merged is None:
                        merged = _Histogram(hist.buckets)
                    merged.merge(hist)
        if merged is None or merged.count == 0:
            return {}
        return {
            f"p{int(round(q * 100))}": merged.quantile(q) for q in quantiles
        }

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every series (tests and BENCH artifacts)."""
        with self._lock:
            return {
                "since": self.since,
                "counters": {
                    f"{name}{_render_labels(labels)}": value
                    for (name, labels), value in sorted(self._counters.items())
                },
                "gauges": {
                    f"{name}{_render_labels(labels)}": value
                    for (name, labels), value in sorted(self._gauges.items())
                },
                "histograms": {
                    f"{name}{_render_labels(labels)}": dict(
                        {"count": hist.count, "sum": hist.sum},
                        **hist.quantiles(),
                    )
                    for (name, labels), hist in sorted(self._histograms.items())
                },
            }

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The ``text/plain; version=0.0.4`` exposition body."""
        with self._lock:
            lines: List[str] = []
            by_name: Dict[str, List[Tuple[LabelKey, object]]] = {}
            for (name, labels), value in self._counters.items():
                by_name.setdefault(name, []).append((labels, value))
            for (name, labels), value in self._gauges.items():
                by_name.setdefault(name, []).append((labels, value))
            for (name, labels), hist in self._histograms.items():
                by_name.setdefault(name, []).append((labels, hist))
            for name in sorted(by_name):
                kind = self._types.get(name, "untyped")
                if name in self._help:
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {kind}")
                estimates: List[str] = []
                for labels, value in sorted(by_name[name]):
                    if isinstance(value, _Histogram):
                        cumulative = 0
                        for bound, count in zip(value.buckets, value.counts):
                            cumulative += count
                            le = _render_labels(labels, ("le", _format(bound)))
                            lines.append(f"{name}_bucket{le} {cumulative}")
                        inf = _render_labels(labels, ("le", "+Inf"))
                        lines.append(f"{name}_bucket{inf} {value.count}")
                        lines.append(
                            f"{name}_sum{_render_labels(labels)} {_format(value.sum)}"
                        )
                        lines.append(
                            f"{name}_count{_render_labels(labels)} {value.count}"
                        )
                        for q_label, q in (("0.5", 0.50), ("0.95", 0.95),
                                           ("0.99", 0.99)):
                            ql = _render_labels(labels, ("quantile", q_label))
                            estimates.append(
                                f"{name}_estimate{ql} "
                                f"{_format(value.quantile(q))}"
                            )
                        estimates.append(
                            f"{name}_estimate_sum{_render_labels(labels)} "
                            f"{_format(value.sum)}"
                        )
                        estimates.append(
                            f"{name}_estimate_count{_render_labels(labels)} "
                            f"{value.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_render_labels(labels)} {_format(value)}"
                        )
                if estimates:
                    # Interpolated quantile estimates as a companion summary
                    # family, so dashboards get p50/p95/p99 without PromQL
                    # histogram_quantile over the bucket series.
                    lines.append(f"# TYPE {name}_estimate summary")
                    lines.extend(estimates)
            lines.append(
                f"# TYPE repro_metrics_since_timestamp_seconds gauge"
            )
            lines.append(
                f"repro_metrics_since_timestamp_seconds {_format(self.since)}"
            )
            return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_METRICS = Metrics()
_METRICS_LOCK = threading.Lock()


def get_metrics() -> Metrics:
    """The process-wide metrics registry."""
    return _METRICS


def set_metrics(metrics: Optional[Metrics]) -> Metrics:
    """Install a registry (``None`` -> a fresh one); returns the old one."""
    global _METRICS
    with _METRICS_LOCK:
        previous = _METRICS
        _METRICS = metrics if metrics is not None else Metrics()
    return previous

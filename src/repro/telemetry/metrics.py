"""Label-aware metrics registry with Prometheus text exposition.

One process-wide :class:`Metrics` instance collects counters, gauges and
histograms from the engine (solver calls, cache lookups, bounds actions)
and the service (broker queue, resolver rungs, fault invalidations).  All
mutation goes through three calls::

    get_metrics().inc("repro_solver_calls_total", backend="cdcl")
    get_metrics().set_gauge("repro_broker_queue_depth", depth)
    get_metrics().observe("repro_solve_seconds", dt, backend="cdcl")

Series are keyed on ``(name, sorted label items)`` and rendered in the
Prometheus text-exposition format by :meth:`Metrics.render_prometheus`
(served at ``/v1/metrics``).  Everything is stdlib + one lock; increments
are cheap enough to stay enabled even when tracing is off.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelKey]

#: Default histogram bucket upper bounds (seconds-oriented).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricsError(Exception):
    """Raised when one metric name is used as two different types."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in items
    )
    return "{" + rendered + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1


class Metrics:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, _Histogram] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self.since = time.time()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_type(self, name: str, kind: str) -> None:
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = kind
        elif seen != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {seen}, not {kind}"
            )

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "counter")
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "gauge")
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._check_type(name, "histogram")
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(DEFAULT_BUCKETS)
            hist.observe(float(value))

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric name."""
        with self._lock:
            self._help[name] = help_text

    def reset(self) -> None:
        """Drop every series and restart the ``since`` epoch (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._types.clear()
            self.since = time.time()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """One series' current value (0.0 when it does not exist)."""
        key = (name, _label_key(labels))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            if key in self._gauges:
                return self._gauges[key]
            hist = self._histograms.get(key)
            return hist.sum if hist is not None else 0.0

    def total(self, name: str, **match) -> float:
        """Sum of all ``name`` series whose labels include ``match``."""
        wanted = set(_label_key(match))
        total = 0.0
        with self._lock:
            for store in (self._counters, self._gauges):
                for (series, labels), value in store.items():
                    if series == name and wanted <= set(labels):
                        total += value
            for (series, labels), hist in self._histograms.items():
                if series == name and wanted <= set(labels):
                    total += hist.sum
        return total

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every series (tests and BENCH artifacts)."""
        with self._lock:
            return {
                "since": self.since,
                "counters": {
                    f"{name}{_render_labels(labels)}": value
                    for (name, labels), value in sorted(self._counters.items())
                },
                "gauges": {
                    f"{name}{_render_labels(labels)}": value
                    for (name, labels), value in sorted(self._gauges.items())
                },
                "histograms": {
                    f"{name}{_render_labels(labels)}": {
                        "count": hist.count,
                        "sum": hist.sum,
                    }
                    for (name, labels), hist in sorted(self._histograms.items())
                },
            }

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The ``text/plain; version=0.0.4`` exposition body."""
        with self._lock:
            lines: List[str] = []
            by_name: Dict[str, List[Tuple[LabelKey, object]]] = {}
            for (name, labels), value in self._counters.items():
                by_name.setdefault(name, []).append((labels, value))
            for (name, labels), value in self._gauges.items():
                by_name.setdefault(name, []).append((labels, value))
            for (name, labels), hist in self._histograms.items():
                by_name.setdefault(name, []).append((labels, hist))
            for name in sorted(by_name):
                kind = self._types.get(name, "untyped")
                if name in self._help:
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {kind}")
                for labels, value in sorted(by_name[name]):
                    if isinstance(value, _Histogram):
                        cumulative = 0
                        for bound, count in zip(value.buckets, value.counts):
                            cumulative += count
                            le = _render_labels(labels, ("le", _format(bound)))
                            lines.append(f"{name}_bucket{le} {cumulative}")
                        inf = _render_labels(labels, ("le", "+Inf"))
                        lines.append(f"{name}_bucket{inf} {value.count}")
                        lines.append(
                            f"{name}_sum{_render_labels(labels)} {_format(value.sum)}"
                        )
                        lines.append(
                            f"{name}_count{_render_labels(labels)} {value.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_render_labels(labels)} {_format(value)}"
                        )
            lines.append(
                f"# TYPE repro_metrics_since_timestamp_seconds gauge"
            )
            lines.append(
                f"repro_metrics_since_timestamp_seconds {_format(self.since)}"
            )
            return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_METRICS = Metrics()
_METRICS_LOCK = threading.Lock()


def get_metrics() -> Metrics:
    """The process-wide metrics registry."""
    return _METRICS


def set_metrics(metrics: Optional[Metrics]) -> Metrics:
    """Install a registry (``None`` -> a fresh one); returns the old one."""
    global _METRICS
    with _METRICS_LOCK:
        previous = _METRICS
        _METRICS = metrics if metrics is not None else Metrics()
    return previous

"""Telemetry: span tracing, a metrics registry, and their export paths.

Three pieces, all stdlib-only:

* :mod:`~repro.telemetry.tracer` — nested :class:`Span` trees recorded by a
  :class:`Tracer`; pool workers export spans as dicts and the dispatching
  sweep span re-parents them with :meth:`Span.adopt`.  Chrome trace-event
  JSON export for Perfetto.  Disabled by default via a shared no-op tracer.
* :mod:`~repro.telemetry.metrics` — counters / gauges / histograms with
  label sets and Prometheus text exposition (served at ``/v1/metrics``).
* :mod:`~repro.telemetry.logbridge` — one JSONL record per finished span
  through the stdlib ``logging`` module.
* :mod:`~repro.telemetry.archive` — the *persistent* layer: append-only
  JSONL run history under ``~/.cache/repro/perf`` (``$REPRO_PERF_DIR``)
  that probes, sweeps, Pareto runs, service requests and benchmarks record
  into; the substrate for ``repro perf`` and measured strategy calibration
  (:mod:`repro.perf`).
"""

from .archive import (
    ARCHIVE_DIR_ENV,
    ARCHIVE_DISABLE_ENV,
    ArchiveError,
    PerfArchive,
    RunRecord,
    default_archive_dir,
    exact_quantiles,
    get_archive,
    host_context,
    host_fingerprint,
    record_run,
    recording_enabled,
    set_archive,
)
from .logbridge import SpanLogBridge, jsonl_logging, log_metrics_snapshot
from .metrics import (
    DEFAULT_BUCKETS,
    Metrics,
    MetricsError,
    get_metrics,
    set_metrics,
)
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    diff_chrome_traces,
    get_tracer,
    iter_spans,
    set_tracer,
    span_coverage,
    spans_to_chrome_trace,
    summarize_chrome_trace,
    tracing,
)

__all__ = [
    "ARCHIVE_DIR_ENV",
    "ARCHIVE_DISABLE_ENV",
    "ArchiveError",
    "DEFAULT_BUCKETS",
    "Metrics",
    "MetricsError",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "PerfArchive",
    "RunRecord",
    "Span",
    "SpanLogBridge",
    "Tracer",
    "default_archive_dir",
    "diff_chrome_traces",
    "exact_quantiles",
    "get_archive",
    "get_metrics",
    "get_tracer",
    "host_context",
    "host_fingerprint",
    "iter_spans",
    "jsonl_logging",
    "log_metrics_snapshot",
    "record_run",
    "recording_enabled",
    "set_archive",
    "set_metrics",
    "set_tracer",
    "span_coverage",
    "spans_to_chrome_trace",
    "summarize_chrome_trace",
    "tracing",
]

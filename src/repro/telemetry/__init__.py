"""Telemetry: span tracing, a metrics registry, and their export paths.

Three pieces, all stdlib-only:

* :mod:`~repro.telemetry.tracer` — nested :class:`Span` trees recorded by a
  :class:`Tracer`; pool workers export spans as dicts and the dispatching
  sweep span re-parents them with :meth:`Span.adopt`.  Chrome trace-event
  JSON export for Perfetto.  Disabled by default via a shared no-op tracer.
* :mod:`~repro.telemetry.metrics` — counters / gauges / histograms with
  label sets and Prometheus text exposition (served at ``/v1/metrics``).
* :mod:`~repro.telemetry.logbridge` — one JSONL record per finished span
  through the stdlib ``logging`` module.
"""

from .logbridge import SpanLogBridge, jsonl_logging, log_metrics_snapshot
from .metrics import (
    DEFAULT_BUCKETS,
    Metrics,
    MetricsError,
    get_metrics,
    set_metrics,
)
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    iter_spans,
    set_tracer,
    span_coverage,
    spans_to_chrome_trace,
    summarize_chrome_trace,
    tracing,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Metrics",
    "MetricsError",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanLogBridge",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "iter_spans",
    "jsonl_logging",
    "log_metrics_snapshot",
    "set_metrics",
    "set_tracer",
    "span_coverage",
    "spans_to_chrome_trace",
    "summarize_chrome_trace",
    "tracing",
]

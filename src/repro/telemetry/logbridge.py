"""Structured-JSONL export through the stdlib ``logging`` module.

:class:`SpanLogBridge` subscribes to a recording :class:`~.tracer.Tracer`
and emits one JSON object per *finished* span on the
``repro.telemetry`` logger, so any stdlib handler — a ``FileHandler``
for JSONL files, a ``SysLogHandler``, an aggregator's socket handler —
receives the same span stream the Chrome trace is built from::

    tracer = Tracer()
    with jsonl_logging("/tmp/spans.jsonl", tracer):
        with tracing(tracer):
            pareto_synthesize(...)

Each line is a flat record (no children — every span gets its own line)
tagged ``"event": "span"``; :func:`log_metrics_snapshot` appends one
``"event": "metrics"`` line with the registry snapshot, so a JSONL file
can carry a complete run digest.
"""

from __future__ import annotations

import json
import logging
from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import Metrics, get_metrics
from .tracer import Span, Tracer

LOGGER_NAME = "repro.telemetry"


def get_logger() -> logging.Logger:
    return logging.getLogger(LOGGER_NAME)


def _span_record(span: Span) -> dict:
    return {
        "event": "span",
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "pid": span.pid,
        "tid": span.tid,
        "attrs": {k: v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
                  for k, v in span.attrs.items()},
    }


class SpanLogBridge:
    """Forward every finished span of one tracer to the stdlib logger."""

    def __init__(self, tracer: Tracer, *, logger: Optional[logging.Logger] = None) -> None:
        self.tracer = tracer
        self.logger = logger if logger is not None else get_logger()
        self._installed = False

    def install(self) -> "SpanLogBridge":
        if not self._installed:
            self.tracer.add_listener(self._emit)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.tracer.remove_listener(self._emit)
            self._installed = False

    def _emit(self, span: Span) -> None:
        # One line per span; children are emitted by their own finish events.
        self.logger.info("%s", json.dumps(_span_record(span), sort_keys=True))

    def __enter__(self) -> "SpanLogBridge":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


def log_metrics_snapshot(metrics: Optional[Metrics] = None,
                         logger: Optional[logging.Logger] = None) -> None:
    """Append one ``"event": "metrics"`` JSONL record with the registry dump."""
    metrics = metrics if metrics is not None else get_metrics()
    logger = logger if logger is not None else get_logger()
    record = {"event": "metrics"}
    record.update(metrics.snapshot())
    logger.info("%s", json.dumps(record, sort_keys=True))


@contextmanager
def jsonl_logging(path, tracer: Tracer) -> Iterator[SpanLogBridge]:
    """Bridge ``tracer`` to a JSONL file for the duration of the block."""
    logger = get_logger()
    handler = logging.FileHandler(path, encoding="utf-8")
    handler.setFormatter(logging.Formatter("%(message)s"))
    previous_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    bridge = SpanLogBridge(tracer, logger=logger)
    bridge.install()
    try:
        yield bridge
    finally:
        bridge.uninstall()
        logger.removeHandler(handler)
        logger.setLevel(previous_level)
        handler.close()

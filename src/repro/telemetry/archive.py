"""Persistent performance archive: append-only run history on disk.

Every synthesis probe, candidate sweep, Pareto run, planning-service
request and benchmark row can append one :class:`RunRecord` to a
:class:`PerfArchive` — a directory of append-only JSONL *segments* under
``~/.cache/repro/perf`` (override with ``$REPRO_PERF_DIR``, kill with
``$REPRO_PERF_DISABLE=1``).  Unlike the ``BENCH_*.json`` snapshots, which
each run overwrites, the archive keeps the whole trajectory, so

* ``repro perf history`` can show trends and ``repro perf compare`` can
  diff two runs phase by phase,
* ``repro perf regressions`` can flag a fresh benchmark that fell outside
  a tolerance band around the archived trajectory (the CI sentinel), and
* :class:`~repro.perf.model.ProbeTimeModel` can calibrate
  ``strategy="auto"`` picks on *measured* probe times instead of static
  size thresholds.

Write discipline mirrors :mod:`repro.engine.cache`: appends serialize on
an advisory ``fcntl`` lock file so concurrent processes (pool workers,
parallel test runs, several services sharing one host) interleave whole
lines, never halves.  Reads take no lock and tolerate torn tails: a
truncated or corrupt line — a writer killed mid-append, a disk that filled
up — is counted and skipped, never raised.  Recording is *always* best
effort: an unwritable archive must never fail the synthesis or request
that tried to record into it.

Records carry host context (hostname, cpu count, python version) because
timings from different hosts must never be compared against each other:
both the regression sentinel and the probe-time model partition on
:func:`host_fingerprint`.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

try:  # POSIX only; elsewhere appends fall back to best-effort O_APPEND.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

ARCHIVE_FORMAT_VERSION = 1

#: Environment variable overriding the default archive directory.
ARCHIVE_DIR_ENV = "REPRO_PERF_DIR"
#: Set to 1/true/yes to disable all recording (reads still work).
ARCHIVE_DISABLE_ENV = "REPRO_PERF_DISABLE"


class ArchiveError(Exception):
    """Raised for invalid archive queries (never from the record path)."""


# ----------------------------------------------------------------------
# Host context
# ----------------------------------------------------------------------
def host_context() -> Dict[str, object]:
    """Where a measurement was taken: the context that makes it comparable.

    Archived runs from different hosts are never compared against each
    other (a 64-core build box and a 1-core CI runner disagree about
    everything); :func:`host_fingerprint` is the partition key.
    """
    return {
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def host_fingerprint(host: Optional[Dict[str, object]] = None) -> str:
    """The comparability key: records with different fingerprints never meet."""
    host = host if host is not None else host_context()
    return "{}/{}cpu/py{}".format(
        host.get("hostname", "?"), host.get("cpu_count", "?"),
        host.get("python", "?"),
    )


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One archived measurement (a probe, sweep, pareto run, request or bench row).

    ``kind`` partitions the archive: ``probe`` (one solver candidate),
    ``sweep`` (one step count's candidate sweep), ``pareto`` (a whole
    Algorithm-1 run), ``service`` (one planning request, ``extra['rung']``
    holding the resolver-ladder rung that answered) and ``bench`` (one
    benchmark metric row).  ``fingerprint`` is content-addressed where the
    producer has a natural content hash (instance fingerprints, request
    keys); ``features`` holds the coarse instance shape the probe-time
    model buckets on.
    """

    kind: str
    name: str = ""
    fingerprint: str = ""
    features: Dict[str, object] = field(default_factory=dict)
    strategy: str = ""
    backend: str = ""
    verdict: str = ""
    wall_s: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    quantiles: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    host: Dict[str, object] = field(default_factory=dict)
    session: str = ""
    run_id: str = ""
    created_at: float = 0.0

    def to_json(self) -> dict:
        data = dataclasses.asdict(self)
        data["version"] = ARCHIVE_FORMAT_VERSION
        return data

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        if not isinstance(data, dict) or not data.get("kind"):
            raise ArchiveError("not a run record")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        record = cls(**kwargs)
        record.wall_s = float(record.wall_s or 0.0)
        record.created_at = float(record.created_at or 0.0)
        return record

    def host_key(self) -> str:
        return host_fingerprint(self.host or None)

    def describe(self) -> str:
        """One history line: when, what, how long, how it went."""
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.created_at))
        label = self.name or self.fingerprint[:12] or "?"
        bits = [f"{when}", f"{self.kind:<7}", f"{label}"]
        if self.strategy:
            bits.append(f"strategy={self.strategy}")
        if self.backend:
            bits.append(f"backend={self.backend}")
        if self.verdict:
            bits.append(f"-> {self.verdict}")
        bits.append(f"{self.wall_s:.3f}s")
        return "  ".join(bits)


def exact_quantiles(
    values, quantiles=(0.50, 0.95, 0.99)
) -> Dict[str, float]:
    """Exact empirical quantiles of a sample list: ``{"p50": ..., ...}``.

    Producers that still hold the raw per-probe timings record these, so
    the archive carries true distribution shape — not just totals, and not
    the bucket-interpolated estimates the live metrics registry serves.
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return {}
    out: Dict[str, float] = {}
    for q in quantiles:
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        out[f"p{int(round(q * 100))}"] = ordered[index]
    return out


def _session_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{int(_SESSION_EPOCH * 1000):x}"


_SESSION_EPOCH = time.time()
_SEQ_LOCK = threading.Lock()
_SEQ = 0


def _next_run_id(created_at: float) -> str:
    global _SEQ
    with _SEQ_LOCK:
        _SEQ += 1
        seq = _SEQ
    return f"{int(created_at * 1000):x}-{os.getpid()}-{seq}"


# ----------------------------------------------------------------------
# The archive
# ----------------------------------------------------------------------
class PerfArchive:
    """Append-only JSONL segment store (see module docstring).

    Segments are one file per UTC day (``segment-YYYYMMDD.jsonl``): small
    enough to prune by age, few enough that loading the whole trajectory
    stays one directory scan.
    """

    SEGMENT_PREFIX = "segment-"
    SEGMENT_SUFFIX = ".jsonl"
    LOCK_NAME = ".lock"

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else default_archive_dir()
        #: Lines the last load skipped because they would not parse.
        self.corrupt_lines = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _segment_path(self, created_at: float) -> Path:
        day = time.strftime("%Y%m%d", time.gmtime(created_at))
        return self.root / f"{self.SEGMENT_PREFIX}{day}{self.SEGMENT_SUFFIX}"

    def append(self, record: RunRecord) -> bool:
        """Durably append one record; False (never an exception) on failure.

        The advisory lock serializes whole-line appends across processes;
        on lock failure the append still proceeds — O_APPEND keeps single
        ``write`` calls intact on POSIX for these line sizes, the lock just
        removes any doubt.
        """
        if not record.created_at:
            record.created_at = time.time()
        if not record.run_id:
            record.run_id = _next_run_id(record.created_at)
        if not record.session:
            record.session = _session_id()
        if not record.host:
            record.host = host_context()
        line = json.dumps(record.to_json(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._segment_path(record.created_at)
            with open(self.root / self.LOCK_NAME, "a+") as lock_handle:
                if fcntl is not None:
                    try:
                        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                    except OSError:
                        pass
                try:
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write(line)
                        handle.flush()
                finally:
                    if fcntl is not None:
                        try:
                            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
                        except OSError:
                            pass
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def segments(self) -> List[Path]:
        if not self.root.exists():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.name.startswith(self.SEGMENT_PREFIX)
            and p.name.endswith(self.SEGMENT_SUFFIX)
        )

    def iter_records(
        self,
        *,
        kind: Optional[str] = None,
        host: Optional[str] = None,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
    ) -> Iterator[RunRecord]:
        """Records in append order, skipping (and counting) corrupt lines.

        ``host`` filters on :func:`host_fingerprint`; pass
        ``host_fingerprint()`` to see only this machine's trajectory.
        """
        self.corrupt_lines = 0
        for segment in self.segments():
            try:
                with open(segment, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = RunRecord.from_json(json.loads(line))
                        except (ValueError, TypeError, ArchiveError):
                            # Torn tail of a killed writer, or hand damage.
                            self.corrupt_lines += 1
                            continue
                        if kind is not None and record.kind != kind:
                            continue
                        if host is not None and record.host_key() != host:
                            continue
                        if predicate is not None and not predicate(record):
                            continue
                        yield record
            except OSError:
                continue

    def records(self, **kwargs) -> List[RunRecord]:
        return list(self.iter_records(**kwargs))

    def tail(self, n: int, **kwargs) -> List[RunRecord]:
        records = self.records(**kwargs)
        return records[-n:] if n >= 0 else records

    def find(self, token: str, **kwargs) -> List[RunRecord]:
        """Records whose run id, session or fingerprint starts with ``token``.

        ``@N`` addresses the Nth most recent record instead (``@0`` is the
        latest) — the form the CLI examples use.
        """
        records = self.records(**kwargs)
        if token.startswith("@"):
            try:
                index = int(token[1:])
            except ValueError as exc:
                raise ArchiveError(f"bad record address {token!r}") from exc
            if index < 0 or index >= len(records):
                raise ArchiveError(
                    f"{token} is out of range (archive has {len(records)} "
                    f"matching records)"
                )
            return [records[-1 - index]]
        return [
            r for r in records
            if r.run_id.startswith(token)
            or r.session.startswith(token)
            or (token and r.fingerprint.startswith(token))
        ]

    def stats(self) -> Dict[str, object]:
        records = self.records()
        kinds: Dict[str, int] = {}
        for record in records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        total_bytes = 0
        for segment in self.segments():
            try:
                total_bytes += segment.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "records": len(records),
            "kinds": kinds,
            "segments": len(self.segments()),
            "bytes": total_bytes,
            "corrupt_lines": self.corrupt_lines,
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def prune(self, *, max_age_s: Optional[float] = None,
              now: Optional[float] = None) -> List[Path]:
        """Drop whole segments older than the horizon; returns removed paths."""
        if max_age_s is None:
            return []
        now = time.time() if now is None else now
        removed: List[Path] = []
        for segment in self.segments():
            try:
                if now - segment.stat().st_mtime > max_age_s:
                    segment.unlink()
                    removed.append(segment)
            except OSError:
                continue
        return removed


# ----------------------------------------------------------------------
# Process-wide access
# ----------------------------------------------------------------------
def default_archive_dir() -> Path:
    """The archive directory: $REPRO_PERF_DIR or ~/.cache/repro/perf."""
    override = os.environ.get(ARCHIVE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "perf"


def recording_enabled() -> bool:
    return os.environ.get(ARCHIVE_DISABLE_ENV, "0") in ("", "0", "false", "no")


_ARCHIVES: Dict[str, PerfArchive] = {}
_ARCHIVES_LOCK = threading.Lock()
_OVERRIDE: Optional[PerfArchive] = None


def get_archive() -> PerfArchive:
    """The ambient archive (honours $REPRO_PERF_DIR at *call* time)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    root = str(default_archive_dir())
    with _ARCHIVES_LOCK:
        archive = _ARCHIVES.get(root)
        if archive is None:
            archive = _ARCHIVES[root] = PerfArchive(root)
        return archive


def set_archive(archive: Optional[PerfArchive]) -> Optional[PerfArchive]:
    """Install an explicit archive (``None`` restores env resolution)."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = archive
    return previous


def record_run(kind: str, **fields) -> Optional[RunRecord]:
    """Build and append one record to the ambient archive; None when disabled.

    The one-call producer hook used by the synthesizer, the dispatchers,
    the Pareto loop, the service resolver and the benchmark harness.
    Never raises: recording is an observation, not a dependency.
    """
    if not recording_enabled():
        return None
    try:
        record = RunRecord(kind=kind, **fields)
        if get_archive().append(record):
            return record
    except Exception:
        pass
    return None

"""Pipelined ring Broadcast / Reduce baselines (NCCL's approach, Table 3).

For Broadcast and Reduce, NCCL pipelines chunks along each logical ring:
with ``m`` chunks per ring and 6 rings on the DGX-1 the schedule uses
``C = 6 m`` chunks and ``S = R = 6 + m`` steps, approaching bandwidth
optimality as ``m`` grows (the cost is ``(6+m)·alpha + (6+m)/(6m)·L·beta``).

The construction treats each ring as a path rooted at the broadcast root:
the root injects a new chunk every step and every other node forwards the
chunk it received in the previous step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..collectives import get_collective
from ..core.algorithm import Algorithm, Send, Step
from ..core.combining import invert_algorithm
from ..topology import Topology
from .ring import RingError, _check_rings


def pipelined_broadcast(
    topology: Topology,
    rings: Sequence[Sequence[int]],
    chunks_per_ring: int,
    root: int = 0,
    name: Optional[str] = None,
) -> Algorithm:
    """Pipelined multi-ring Broadcast with ``m = chunks_per_ring``.

    Produces ``C = m * len(rings)`` chunks and ``S = R = (P - 1) + (m - 1)``
    steps — i.e. the ``(6m, 6+m, 6+m)`` family of Table 3 when P = 8 and
    6 rings are used.
    """
    if chunks_per_ring < 1:
        raise RingError("need at least one chunk per ring")
    _check_rings(topology, rings)
    num_nodes = topology.num_nodes
    num_rings = len(rings)
    num_chunks = chunks_per_ring * num_rings
    spec = get_collective("Broadcast")
    pre = spec.precondition(num_nodes, num_chunks, root)
    post = spec.postcondition(num_nodes, num_chunks, root)

    num_steps = (num_nodes - 1) + (chunks_per_ring - 1)
    sends_by_step: List[List[Send]] = [[] for _ in range(num_steps)]
    for ring_index, ring_order in enumerate(rings):
        # Rotate the ring so the root is first; the broadcast then travels
        # along the P-1 hops of the ring-as-path.
        start = list(ring_order).index(root)
        path = [ring_order[(start + i) % num_nodes] for i in range(num_nodes)]
        for k in range(chunks_per_ring):
            chunk = ring_index * chunks_per_ring + k
            for hop in range(num_nodes - 1):
                step = k + hop
                sends_by_step[step].append(
                    Send(chunk=chunk, src=path[hop], dst=path[hop + 1])
                )

    steps = [Step(rounds=1, sends=tuple(sends)) for sends in sends_by_step]
    algorithm = Algorithm(
        name=name
        or f"pipelined_broadcast_{topology.name}_{num_rings}rings_m{chunks_per_ring}",
        collective="Broadcast",
        topology=topology,
        chunks_per_node=num_chunks,
        num_chunks=num_chunks,
        precondition=pre,
        postcondition=post,
        steps=steps,
        combining=False,
        metadata={
            "family": "pipelined_ring",
            "chunks_per_ring": chunks_per_ring,
            "root": root,
        },
    )
    algorithm.verify()
    return algorithm


def pipelined_reduce(
    topology: Topology,
    rings: Sequence[Sequence[int]],
    chunks_per_ring: int,
    root: int = 0,
    name: Optional[str] = None,
) -> Algorithm:
    """Pipelined Reduce — the inversion of the pipelined Broadcast."""
    broadcast = pipelined_broadcast(topology, rings, chunks_per_ring, root=root)
    reduce_algorithm = invert_algorithm(
        broadcast,
        collective="Reduce",
        name=name
        or f"pipelined_reduce_{topology.name}_{len(rings)}rings_m{chunks_per_ring}",
    )
    reduce_algorithm.verify()
    return reduce_algorithm

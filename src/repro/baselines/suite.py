"""The baseline suite: every hand-written algorithm that fits an instance.

:func:`baseline_suite` tries each applicable builder (ring, tree,
pipelined, NCCL/RCCL) for a ``(collective, topology, root)`` and returns
the ones that apply, each wrapped in a :class:`BaselineAlgorithm` exposing
the uniform ``cost() -> (steps, rounds, chunks)`` accessor the
bound-seeding layer keys on.  Every returned algorithm has been re-checked
with :meth:`~repro.core.algorithm.Algorithm.verify`, so a baseline-derived
upper bound can never claim feasibility the lattice does not have.

Builders that do not fit — no Hamiltonian ring in the topology, an
unmodeled fabric for the NCCL tables, a collective with no hand-written
form — are skipped silently: the suite is best-effort by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Tuple

from ..core.algorithm import Algorithm
from ..topology import Topology


@dataclass(frozen=True)
class BaselineAlgorithm:
    """One verified baseline plus the lattice cost the bounds layer uses."""

    name: str
    algorithm: Algorithm

    def cost(self) -> Tuple[int, int, int]:
        """The ``(steps, rounds, chunks)`` lattice point this baseline occupies."""
        return (
            self.algorithm.num_steps,
            self.algorithm.total_rounds,
            self.algorithm.chunks_per_node,
        )

    @property
    def bandwidth_cost(self) -> Fraction:
        return self.algorithm.bandwidth_cost


def _builders(
    collective: str, topology: Topology, root: int
) -> List[Tuple[str, Callable[[], Algorithm]]]:
    from . import (
        nccl_baseline,
        ring_allgather,
        ring_allreduce,
        ring_reduce_scatter,
        single_ring,
        tree_broadcast,
        tree_reduce,
    )

    name = collective.lower()
    if name == "allgather":
        return [
            ("ring", lambda: ring_allgather(topology, single_ring(topology))),
            ("nccl", lambda: nccl_baseline("Allgather", topology)),
        ]
    if name == "allreduce":
        return [
            ("ring", lambda: ring_allreduce(topology, single_ring(topology))),
            ("nccl", lambda: nccl_baseline("Allreduce", topology)),
        ]
    if name == "reducescatter":
        return [
            ("ring", lambda: ring_reduce_scatter(topology, single_ring(topology))),
            ("nccl", lambda: nccl_baseline("Reducescatter", topology)),
        ]
    if name == "broadcast":
        return [
            ("tree", lambda: tree_broadcast(topology, root=root)),
            ("nccl", lambda: nccl_baseline("Broadcast", topology)),
        ]
    if name == "reduce":
        return [
            ("tree", lambda: tree_reduce(topology, root=root)),
            ("nccl", lambda: nccl_baseline("Reduce", topology)),
        ]
    return []


def baseline_suite(
    collective: str, topology: Topology, *, root: int = 0
) -> List[BaselineAlgorithm]:
    """Every baseline that builds *and verifies* for the given instance."""
    suite: List[BaselineAlgorithm] = []
    for name, build in _builders(collective, topology, root):
        try:
            algorithm = build()
            algorithm.verify()
        except Exception:
            continue
        suite.append(BaselineAlgorithm(name=name, algorithm=algorithm))
    return suite

"""Ring-based collective algorithms (the NCCL/RCCL baseline family).

NCCL implements Allgather, Reducescatter and Allreduce on the DGX-1 by
running ring algorithms over the 6 logical single-NVLink rings of the
machine (Section 2.4, Table 3).  The same construction with 2 logical rings
(one per direction of the physical ring) is what RCCL effectively does on
the Gigabyte Z52.

The builders here produce ordinary :class:`~repro.core.algorithm.Algorithm`
objects, so baselines run through exactly the same verification, lowering
and simulation pipeline as synthesized algorithms — which is what makes the
Figure 4–6 comparisons apples-to-apples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..collectives import get_collective
from ..core.algorithm import Algorithm, Send, Step
from ..core.combining import allreduce_from_allgather, invert_algorithm
from ..topology import Topology


class RingError(Exception):
    """Raised for invalid ring descriptions."""


def _check_rings(topology: Topology, rings: Sequence[Sequence[int]]) -> None:
    if not rings:
        raise RingError("at least one ring is required")
    nodes = set(topology.nodes())
    for ring_order in rings:
        if set(ring_order) != nodes:
            raise RingError(
                f"ring {list(ring_order)} does not cover every node of {topology.name!r}"
            )
        for i, node in enumerate(ring_order):
            nxt = ring_order[(i + 1) % len(ring_order)]
            if not topology.has_link(node, nxt):
                raise RingError(
                    f"ring uses non-existent link {node}->{nxt} on {topology.name!r}"
                )


def ring_allgather(
    topology: Topology,
    rings: Sequence[Sequence[int]],
    name: Optional[str] = None,
) -> Algorithm:
    """The multi-ring Allgather: one chunk per node per ring, P-1 steps.

    Each node splits its data into ``len(rings)`` chunks; chunk ``j`` of
    every node circulates along ring ``j``.  At step ``t`` every node
    forwards (along each ring) the chunk it received at step ``t - 1``.
    The resulting algorithm has ``C = len(rings)``, ``S = R = P - 1``.
    """
    _check_rings(topology, rings)
    num_nodes = topology.num_nodes
    num_rings = len(rings)
    spec = get_collective("Allgather")
    pre = spec.precondition(num_nodes, num_rings)
    post = spec.postcondition(num_nodes, num_rings)

    steps: List[Step] = []
    for t in range(num_nodes - 1):
        sends: List[Send] = []
        for ring_index, ring_order in enumerate(rings):
            for position, node in enumerate(ring_order):
                nxt = ring_order[(position + 1) % num_nodes]
                # The chunk originating at the node `t` positions behind us
                # (it arrived here at step t-1; at t=0 we send our own chunk).
                origin = ring_order[(position - t) % num_nodes]
                chunk = origin + num_nodes * ring_index
                sends.append(Send(chunk=chunk, src=node, dst=nxt))
        steps.append(Step(rounds=1, sends=tuple(sends)))

    algorithm = Algorithm(
        name=name or f"ring_allgather_{topology.name}_{num_rings}rings",
        collective="Allgather",
        topology=topology,
        chunks_per_node=num_rings,
        num_chunks=num_nodes * num_rings,
        precondition=pre,
        postcondition=post,
        steps=steps,
        combining=False,
        metadata={"family": "ring", "rings": [list(r) for r in rings]},
    )
    algorithm.verify()
    return algorithm


def ring_reduce_scatter(
    topology: Topology,
    rings: Sequence[Sequence[int]],
    name: Optional[str] = None,
) -> Algorithm:
    """Ring Reducescatter — the inversion of the ring Allgather (Section 3.5)."""
    allgather = ring_allgather(topology, rings)
    reducescatter = invert_algorithm(
        allgather,
        collective="Reducescatter",
        name=name or f"ring_reducescatter_{topology.name}_{len(rings)}rings",
    )
    reducescatter.verify()
    return reducescatter


def ring_allreduce(
    topology: Topology,
    rings: Sequence[Sequence[int]],
    name: Optional[str] = None,
) -> Algorithm:
    """Ring Allreduce = ring Reducescatter followed by ring Allgather.

    On the DGX-1 this reproduces NCCL's (C=48, S=14, R=14) schedule from
    Table 3.
    """
    allgather = ring_allgather(topology, rings)
    allreduce = allreduce_from_allgather(
        allgather, name=name or f"ring_allreduce_{topology.name}_{len(rings)}rings"
    )
    allreduce.verify()
    return allreduce


def single_ring(topology: Topology, order: Optional[Sequence[int]] = None) -> List[List[int]]:
    """Helper producing the two directed logical rings of a physical ring topology."""
    if order is None:
        order = list(topology.nodes())
    forward = list(order)
    backward = list(reversed(order))
    return [forward, backward]

"""Tree-based Broadcast / Reduce baselines.

NCCL's second algorithm family is tree-based.  The paper observes that on
a DGX-1 NCCL's trees degenerate to simple paths, which are never better
than the ring schedules, so the evaluation uses rings only — but the tree
builders are provided for completeness (they are also the textbook
latency-oriented algorithms on low-diameter topologies, and the examples
use them to illustrate the latency/bandwidth trade-off).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..collectives import get_collective
from ..core.algorithm import Algorithm, Send, Step
from ..core.combining import invert_algorithm
from ..topology import Topology


class TreeError(Exception):
    """Raised when a spanning tree cannot be built."""


def bfs_tree(topology: Topology, root: int) -> Dict[int, int]:
    """Parent map of a breadth-first spanning tree rooted at ``root``."""
    parents: Dict[int, int] = {}
    visited = {root}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in topology.out_neighbors(node):
            if neighbor not in visited:
                visited.add(neighbor)
                parents[neighbor] = node
                queue.append(neighbor)
    if len(visited) != topology.num_nodes:
        missing = set(topology.nodes()) - visited
        raise TreeError(f"root {root} cannot reach nodes {sorted(missing)}")
    return parents


def tree_depths(parents: Dict[int, int], root: int) -> Dict[int, int]:
    depths = {root: 0}
    def depth(node: int) -> int:
        if node not in depths:
            depths[node] = depth(parents[node]) + 1
        return depths[node]
    for node in parents:
        depth(node)
    return depths


def tree_broadcast(
    topology: Topology,
    chunks: int = 1,
    root: int = 0,
    name: Optional[str] = None,
) -> Algorithm:
    """Broadcast along a BFS spanning tree.

    Every chunk travels the same tree; a node forwards a chunk one step
    after receiving it, so the step count is the tree depth plus the
    pipeline fill (``chunks - 1``).
    """
    if chunks < 1:
        raise TreeError("need at least one chunk")
    parents = bfs_tree(topology, root)
    depths = tree_depths(parents, root)
    max_depth = max(depths.values())
    spec = get_collective("Broadcast")
    pre = spec.precondition(topology.num_nodes, chunks, root)
    post = spec.postcondition(topology.num_nodes, chunks, root)

    num_steps = max_depth + (chunks - 1)
    sends_by_step: List[List[Send]] = [[] for _ in range(num_steps)]
    for chunk in range(chunks):
        for node, parent in parents.items():
            step = chunk + depths[node] - 1
            sends_by_step[step].append(Send(chunk=chunk, src=parent, dst=node))

    steps = []
    for sends in sends_by_step:
        # Rounds per step must cover the busiest constraint; with one chunk
        # in flight per tree edge per step a single round suffices unless a
        # node fans out to more children than its per-round capacity allows.
        rounds = _rounds_needed(topology, sends)
        steps.append(Step(rounds=rounds, sends=tuple(sends)))

    algorithm = Algorithm(
        name=name or f"tree_broadcast_{topology.name}_c{chunks}",
        collective="Broadcast",
        topology=topology,
        chunks_per_node=chunks,
        num_chunks=chunks,
        precondition=pre,
        postcondition=post,
        steps=steps,
        combining=False,
        metadata={"family": "tree", "root": root, "depth": max_depth},
    )
    algorithm.verify()
    return algorithm


def _rounds_needed(topology: Topology, sends: List[Send]) -> int:
    loads: Dict[tuple, int] = {}
    for send in sends:
        loads[(send.src, send.dst)] = loads.get((send.src, send.dst), 0) + 1
    rounds = 1
    for constraint in topology.constraints:
        total = sum(loads.get(link, 0) for link in constraint.links)
        if constraint.bandwidth > 0 and total > 0:
            needed = -(-total // constraint.bandwidth)  # ceil division
            rounds = max(rounds, needed)
    return rounds


def tree_reduce(
    topology: Topology,
    chunks: int = 1,
    root: int = 0,
    name: Optional[str] = None,
) -> Algorithm:
    """Reduce along a BFS tree — the inversion of :func:`tree_broadcast`."""
    broadcast = tree_broadcast(topology, chunks=chunks, root=root)
    reduce_algorithm = invert_algorithm(
        broadcast,
        collective="Reduce",
        name=name or f"tree_reduce_{topology.name}_c{chunks}",
    )
    reduce_algorithm.verify()
    return reduce_algorithm

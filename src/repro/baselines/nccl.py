"""NCCL and RCCL baseline models (Section 5.3, Table 3).

NCCL 2.7.8 on a DGX-1 implements its collectives with ring algorithms over
the machine's 6 logical single-NVLink rings; RCCL does the same on the
Gigabyte Z52's single physical ring (2 logical rings).  Table 3 summarizes
the schedules:

    Collective                  C     S      R
    Allgather / Reducescatter   6     7      7
    Allreduce                   48    14     14
    Broadcast / Reduce          6m    6+m    6+m

This module instantiates those schedules as real
:class:`~repro.core.algorithm.Algorithm` objects on the corresponding
topology models, so the evaluation harness can lower and simulate them
exactly like SCCL's synthesized algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..topology import Topology, amd_z52, amd_z52_ring_order, dgx1, dgx1_logical_rings
from .pipelined import pipelined_broadcast, pipelined_reduce
from .ring import ring_allgather, ring_allreduce, ring_reduce_scatter, single_ring


@dataclass(frozen=True)
class BaselineEntry:
    """One row of Table 3."""

    collective: str
    chunks: int
    steps: int
    rounds: int
    note: str = ""

    def cost(self) -> Tuple[int, int, int]:
        """The uniform ``(steps, rounds, chunks)`` lattice-cost accessor."""
        return (self.steps, self.rounds, self.chunks)


def nccl_allgather(topology: Optional[Topology] = None) -> Algorithm:
    """NCCL's 6-ring Allgather on the DGX-1: (C, S, R) = (6, 7, 7)."""
    topo = topology or dgx1()
    return ring_allgather(topo, dgx1_logical_rings(), name="nccl_allgather_dgx1")


def nccl_reducescatter(topology: Optional[Topology] = None) -> Algorithm:
    """NCCL's ring Reducescatter on the DGX-1 (C = 6 per node, x8 global)."""
    topo = topology or dgx1()
    return ring_reduce_scatter(topo, dgx1_logical_rings(), name="nccl_reducescatter_dgx1")


def nccl_allreduce(topology: Optional[Topology] = None) -> Algorithm:
    """NCCL's ring Allreduce on the DGX-1: (C, S, R) = (48, 14, 14)."""
    topo = topology or dgx1()
    return ring_allreduce(topo, dgx1_logical_rings(), name="nccl_allreduce_dgx1")


def nccl_broadcast(multiplier: int = 1, topology: Optional[Topology] = None) -> Algorithm:
    """NCCL's pipelined ring Broadcast: (C, S, R) = (6m, 6+m, 6+m)."""
    topo = topology or dgx1()
    return pipelined_broadcast(
        topo, dgx1_logical_rings(), chunks_per_ring=multiplier,
        name=f"nccl_broadcast_dgx1_m{multiplier}",
    )


def nccl_reduce(multiplier: int = 1, topology: Optional[Topology] = None) -> Algorithm:
    """NCCL's pipelined ring Reduce: the inversion of the pipelined Broadcast."""
    topo = topology or dgx1()
    return pipelined_reduce(
        topo, dgx1_logical_rings(), chunks_per_ring=multiplier,
        name=f"nccl_reduce_dgx1_m{multiplier}",
    )


def rccl_allgather(topology: Optional[Topology] = None) -> Algorithm:
    """RCCL's ring Allgather on the Gigabyte Z52: (C, S, R) = (2, 7, 7)."""
    topo = topology or amd_z52()
    return ring_allgather(
        topo, single_ring(topo, amd_z52_ring_order()), name="rccl_allgather_amd"
    )


def rccl_allreduce(topology: Optional[Topology] = None) -> Algorithm:
    """RCCL's ring Allreduce on the Gigabyte Z52: (C, S, R) = (16, 14, 14)."""
    topo = topology or amd_z52()
    return ring_allreduce(
        topo, single_ring(topo, amd_z52_ring_order()), name="rccl_allreduce_amd"
    )


def nccl_table3(multiplier: int = 1) -> List[BaselineEntry]:
    """The (C, S, R) rows of Table 3 as data, for the Table 3 benchmark."""
    m = multiplier
    return [
        BaselineEntry("Allgather/Reducescatter", 6, 7, 7),
        BaselineEntry("Allreduce", 48, 14, 14),
        BaselineEntry("Broadcast/Reduce", 6 * m, 6 + m, 6 + m, note=f"m={m}"),
    ]


def nccl_baseline(collective: str, topology: Optional[Topology] = None, multiplier: int = 1) -> Algorithm:
    """Look up the NCCL baseline algorithm for a collective on the DGX-1."""
    builders = {
        "allgather": lambda: nccl_allgather(topology),
        "reducescatter": lambda: nccl_reducescatter(topology),
        "allreduce": lambda: nccl_allreduce(topology),
        "broadcast": lambda: nccl_broadcast(multiplier, topology),
        "reduce": lambda: nccl_reduce(multiplier, topology),
    }
    key = collective.lower()
    if key not in builders:
        raise KeyError(
            f"NCCL has no baseline for {collective!r}; it does not implement "
            f"Alltoall, Gather or Scatter (Section 5.4.2)"
        )
    return builders[key]()


def rccl_baseline(collective: str, topology: Optional[Topology] = None) -> Algorithm:
    """Look up the RCCL baseline algorithm for a collective on the Gigabyte Z52."""
    builders = {
        "allgather": lambda: rccl_allgather(topology),
        "allreduce": lambda: rccl_allreduce(topology),
    }
    key = collective.lower()
    if key not in builders:
        raise KeyError(f"RCCL baseline for {collective!r} is not modeled")
    return builders[key]()

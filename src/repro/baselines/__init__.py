"""Hand-written baseline algorithms: NCCL / RCCL rings, pipelines and trees."""

from .nccl import (
    BaselineEntry,
    nccl_allgather,
    nccl_allreduce,
    nccl_baseline,
    nccl_broadcast,
    nccl_reduce,
    nccl_reducescatter,
    nccl_table3,
    rccl_allgather,
    rccl_allreduce,
    rccl_baseline,
)
from .pipelined import pipelined_broadcast, pipelined_reduce
from .suite import BaselineAlgorithm, baseline_suite
from .ring import (
    RingError,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
    single_ring,
)
from .tree import TreeError, bfs_tree, tree_broadcast, tree_reduce

__all__ = [
    "BaselineAlgorithm",
    "BaselineEntry",
    "RingError",
    "baseline_suite",
    "TreeError",
    "bfs_tree",
    "nccl_allgather",
    "nccl_allreduce",
    "nccl_baseline",
    "nccl_broadcast",
    "nccl_reduce",
    "nccl_reducescatter",
    "nccl_table3",
    "pipelined_broadcast",
    "pipelined_reduce",
    "rccl_allgather",
    "rccl_allreduce",
    "rccl_baseline",
    "ring_allgather",
    "ring_allreduce",
    "ring_reduce_scatter",
    "single_ring",
    "tree_broadcast",
    "tree_reduce",
]

"""SCCL reproduction: synthesizing optimal collective communication algorithms.

This package reproduces "Synthesizing Optimal Collective Algorithms"
(Cai, Liu, Maleki, Musuvathi, Mytkowicz, Nelson, Saarikivi — PPoPP 2021).

Subpackages
-----------
``repro.solver``
    CDCL SAT solver + SMT-lite layer (the Z3 substitute).
``repro.topology``
    Topology model, bandwidth relations, DGX-1 / Gigabyte Z52 and synthetic
    topologies, diameter / bisection-bandwidth analysis.
``repro.collectives``
    Pre/post-condition relations and collective specifications (Tables 1, 2).
``repro.core``
    The paper's contribution: SynColl instances, the SMT encoding (C1–C6),
    algorithm semantics/verification, Pareto-optimal synthesis (Algorithm 1),
    the combining-collective reduction and the alpha-beta cost model.
``repro.runtime``
    Lowering to per-rank programs, functional execution on numpy buffers,
    a discrete-event alpha-beta interconnect simulator, and a CUDA-like
    source emitter (the hardware substitute).
``repro.baselines``
    NCCL / RCCL style ring, tree and pipelined schedules (Table 3).
``repro.evaluation``
    Harnesses regenerating every table and figure of the evaluation.
``repro.engine``
    Solver backends, incremental sessions, sweep dispatchers and the
    persistent algorithm cache.
``repro.interchange``
    MSCCL-style XML and JSON plan bundles with spec re-verification on
    import.
``repro.cli``
    The ``repro`` command line (``python -m repro``).
"""

__version__ = "1.1.0"

__all__ = [
    "solver",
    "topology",
    "collectives",
    "core",
    "runtime",
    "baselines",
    "evaluation",
    "engine",
    "interchange",
    "cli",
]

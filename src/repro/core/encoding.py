"""SMT encoding of the SynColl synthesis problem (Section 3.4).

Two encodings are provided:

* :class:`ScclEncoding` — the paper's scalable encoding.  It splits the
  send set ``T`` into per-(chunk, node) arrival *times* and step-less send
  Booleans, exactly as described in Section 3.4:

  - ``time[c, n]`` — an order-encoded integer giving the earliest step at
    which chunk ``c`` is available on node ``n`` (domain ``0 .. S+1`` where
    ``S+1`` means "never within this algorithm"),
  - ``snd[n, c, n']`` — a Boolean saying node ``n`` sends chunk ``c`` to
    ``n'`` at some step,
  - ``r[s]`` — the number of rounds performed in step ``s``.

  Constraints C1–C6 from the paper are asserted over these variables.  The
  role Z3's theory of linear integer arithmetic plays in the paper is
  played here by the order encoding plus cardinality/totalizer encoders
  (:mod:`repro.solver.encoders`), which is an exact finite-domain
  compilation of the same constraints.

* :class:`NaiveEncoding` — the "Boolean variable for every tuple
  ``(c, n, n', s)``" encoding the paper reports as not scaling
  (Section 5.4.3).  It is retained for the encoding ablation benchmark.

Both encodings expose ``encode()`` producing an :class:`SmtLite` context
and ``decode(model)`` mapping a satisfying assignment back to an
:class:`~repro.core.algorithm.Algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..collectives import get_collective
from ..solver import IntVar, SmtLite
from ..topology import shortest_path_lengths
from .algorithm import Algorithm, Send, Step
from .instance import SynCollInstance


class EncodingError(Exception):
    """Raised when an instance cannot be encoded (e.g. unreachable chunk)."""


class PrefixAnalysis:
    """Chunk-reachability tables shared across a family of encodings.

    The distance tables the encoder uses for pruning depend only on the
    topology and on each chunk's own pre/post placements — never on the
    step count ``S`` or the rounds budget ``R`` — and the Table 1 relations
    are *prefix-stable* in the per-node chunk count ``C``: growing ``C``
    appends new global chunk ids without moving the placements of existing
    ones.  One ``PrefixAnalysis`` therefore serves every encoding of a
    ``(S, C)`` lattice: the all-pairs shortest paths are computed once and
    the per-chunk rows are extended monotonically as larger instances
    arrive (:meth:`ensure`).
    """

    def __init__(self, topology) -> None:
        self.topology = topology
        self.distances = shortest_path_lengths(topology)
        self.chunk_dist: Dict[Tuple[int, int], Optional[int]] = {}
        self.need_dist: Dict[Tuple[int, int], Optional[int]] = {}
        self._chunks_covered = 0

    def ensure(self, instance: SynCollInstance) -> "PrefixAnalysis":
        """Extend the tables to cover ``instance``'s chunks; returns self."""
        other = instance.topology
        # The tables depend on the link structure, so identity of name alone
        # is not enough — a same-named topology with different links would
        # silently poison the pruning.
        if other is not self.topology and (
            other.num_nodes != self.topology.num_nodes
            or sorted(other.links()) != sorted(self.topology.links())
        ):
            raise EncodingError(
                f"analysis built for topology {self.topology.name!r} cannot "
                f"serve the structurally different {other.name!r}"
            )
        lo, hi = self._chunks_covered, instance.num_chunks
        if hi <= lo:
            return self
        sources: Dict[int, List[int]] = {c: [] for c in range(lo, hi)}
        needers: Dict[int, List[int]] = {c: [] for c in range(lo, hi)}
        for (chunk, node) in instance.precondition:
            if lo <= chunk < hi:
                sources[chunk].append(node)
        for (chunk, node) in instance.postcondition:
            if lo <= chunk < hi:
                needers[chunk].append(node)
        nodes = list(self.topology.nodes())
        for chunk in range(lo, hi):
            for node in nodes:
                best: Optional[int] = None
                for src in sources[chunk]:
                    d = self.distances.get(src, {}).get(node)
                    if d is not None and (best is None or d < best):
                        best = d
                self.chunk_dist[(chunk, node)] = best
                best = None
                for dst in needers[chunk]:
                    d = self.distances.get(node, {}).get(dst)
                    if d is not None and (best is None or d < best):
                        best = d
                self.need_dist[(chunk, node)] = best
        self._chunks_covered = hi
        return self


def _chunk_sources(instance: SynCollInstance) -> Dict[int, List[int]]:
    sources: Dict[int, List[int]] = {c: [] for c in range(instance.num_chunks)}
    for (chunk, node) in instance.precondition:
        sources[chunk].append(node)
    return sources


def _chunk_distances(instance: SynCollInstance) -> Dict[Tuple[int, int], Optional[int]]:
    """dist[c, n]: minimum steps for chunk c to reach node n (None if unreachable)."""
    distances = shortest_path_lengths(instance.topology)
    sources = _chunk_sources(instance)
    result: Dict[Tuple[int, int], Optional[int]] = {}
    for chunk in range(instance.num_chunks):
        for node in instance.topology.nodes():
            best: Optional[int] = None
            for src in sources[chunk]:
                d = distances.get(src, {}).get(node)
                if d is not None and (best is None or d < best):
                    best = d
            result[(chunk, node)] = best
    return result


def _destination_distances(instance: SynCollInstance) -> Dict[Tuple[int, int], Optional[int]]:
    """need_dist[c, n]: minimum steps from node n to any node that needs chunk c.

    Used to prune send variables: holding chunk ``c`` at node ``n`` is only
    useful if some node that still needs ``c`` is reachable from ``n``
    within the remaining steps (or ``n`` itself needs it, distance 0).
    """
    distances = shortest_path_lengths(instance.topology)
    needers: Dict[int, List[int]] = {c: [] for c in range(instance.num_chunks)}
    for (chunk, node) in instance.postcondition:
        needers[chunk].append(node)
    result: Dict[Tuple[int, int], Optional[int]] = {}
    for chunk in range(instance.num_chunks):
        for node in instance.topology.nodes():
            best: Optional[int] = None
            for dst in needers[chunk]:
                d = distances.get(node, {}).get(dst)
                if d is not None and (best is None or d < best):
                    best = d
            result[(chunk, node)] = best
    return result


@dataclass
class EncodingStats:
    """Size and timing statistics reported by the benchmarks."""

    variables: int = 0
    clauses: int = 0
    send_vars: int = 0
    time_vars: int = 0
    aux_vars: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "variables": self.variables,
            "clauses": self.clauses,
            "send_vars": self.send_vars,
            "time_vars": self.time_vars,
            "aux_vars": self.aux_vars,
        }


class ScclEncoding:
    """The paper's time/send split encoding of a SynColl instance.

    With ``rounds_budget`` set (to some ``R_max >= instance.rounds``) the
    encoding becomes *rounds-incremental*: the per-step round variables are
    given the widened domain ``1 .. R_max - (S - 1)``, the hard total-rounds
    constraint C6 is replaced by a pair of unary counters over the round
    variables' order-encoding Booleans, and :meth:`rounds_assumptions`
    returns assumption literals pinning the total to any ``R`` in
    ``S .. R_max``.  One encoding (and one solver, via
    :class:`repro.engine.session.IncrementalSession`) then serves every
    rounds candidate of a fixed-``S`` sweep.

    With ``chunk_selector=True`` the encoding additionally becomes
    *chunks-incremental* (the shared-prefix form): the instance's per-node
    chunk count acts as a budget ``C_max``, each chunk level ``l`` (the
    global chunks appended when ``C`` grows from ``l - 1`` to ``l``) gets
    an enable literal, postconditions are guarded by their level's enable,
    and every send variable implies its level's enable.
    :meth:`chunks_assumptions` then pins the effective per-node chunk count
    to any ``C <= C_max``: disabled levels cannot send, owe no
    postcondition, and contribute nothing to the bandwidth counts (their
    activation literals are free to be false), so satisfiability under a
    ``(C, R)`` assumption frame coincides with a cold encode of the
    ``(S, C, R)`` instance.  This relies on the Table 1 relations being
    prefix-stable in ``C`` (see :class:`PrefixAnalysis`), which
    :meth:`extend_chunks` re-checks before growing the budget in place —
    appending new levels' variables and clauses to the same formula instead
    of re-encoding the shared time/send substructure.
    """

    def __init__(
        self,
        instance: SynCollInstance,
        prune: bool = True,
        rounds_budget: Optional[int] = None,
        chunk_selector: bool = False,
        analysis: Optional[PrefixAnalysis] = None,
    ) -> None:
        if rounds_budget is not None and rounds_budget < instance.rounds:
            raise EncodingError(
                f"rounds budget {rounds_budget} is below the instance rounds "
                f"{instance.rounds}"
            )
        self.instance = instance
        self.prune = prune
        self.rounds_budget = rounds_budget
        self.chunk_selector = chunk_selector
        self.analysis = analysis
        self.ctx = SmtLite(name=f"sccl_{instance.collective}")
        # Variable maps populated by encode().
        self.time_vars: Dict[Tuple[int, int], IntVar] = {}
        self.send_vars: Dict[Tuple[int, int, int], int] = {}   # (chunk, src, dst) -> lit
        self.round_vars: List[IntVar] = []
        self.stats = EncodingStats()
        self._encoded = False
        # Unary counters for the rounds-budget selector layer:
        # _count_ge[j] is true when at least j+1 round-encoding Booleans are
        # true, _false_ge[j] when at least j+1 are false.
        self._round_bools: List[int] = []
        self._count_ge: List[int] = []
        self._false_ge: List[int] = []
        # Chunk-selector layer: one enable literal per chunk level, the
        # level index of each global chunk, and the per-(constraint, step)
        # bandwidth terms kept for in-place extension.
        self._level_lits: List[int] = []
        self._chunk_level: List[int] = []
        self._bandwidth_terms: Dict[Tuple[int, int], List[int]] = {}
        self._activation: Dict[Tuple[int, int, int, int], int] = {}
        self._chunk_dist: Dict[Tuple[int, int], Optional[int]] = {}
        self._need_dist: Dict[Tuple[int, int], Optional[int]] = {}
        self._links: List[Tuple[int, int]] = []
        self._in_links: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> SmtLite:
        if self._encoded:
            return self.ctx
        instance = self.instance
        ctx = self.ctx
        S = instance.steps
        R = instance.rounds
        G = instance.num_chunks
        topology = instance.topology
        self._links = sorted(topology.links())
        self._in_links = {n: topology.in_neighbors(n) for n in topology.nodes()}
        if self.analysis is not None:
            self.analysis.ensure(instance)
            self._chunk_dist = self.analysis.chunk_dist
            self._need_dist = self.analysis.need_dist
        else:
            self._chunk_dist = _chunk_distances(instance)
            self._need_dist = _destination_distances(instance)

        if self.chunk_selector:
            self._ensure_levels(instance.chunks_per_node)

        # --- time[c, n] and snd[c, src, dst] variables -----------------------------
        self._encode_placement_vars(0, G)

        # --- r[s] round variables ---------------------------------------------------
        # Rounds are per-step; each step performs at least one round (steps
        # that send nothing are never useful because Algorithm 1 enumerates
        # S from its lower bound upward).  Under a rounds budget the domain
        # is widened to the budget so the same variables serve every R.
        budget = self.rounds_budget if self.rounds_budget is not None else R
        min_rounds = 1 if budget >= S else 0
        for s in range(S):
            self.round_vars.append(
                ctx.new_int(min_rounds, budget - (S - 1) * min_rounds, name=f"rounds_{s}")
            )

        # --- C1-C4 over the chunk range, C5 over the accumulated terms --------------
        self._encode_chunk_constraints(0, G)
        self._encode_bandwidth(0, G)

        # --- C6: total rounds -----------------------------------------------------------
        if self.rounds_budget is None:
            from ..solver.intvar import unary_sum_equals

            unary_sum_equals(ctx.cnf, self.round_vars, R)
        else:
            self._build_rounds_selector()

        self._refresh_stats()
        self._encoded = True
        return ctx

    def _encode_placement_vars(self, lo: int, hi: int) -> None:
        """Time and send variables (plus selector guards) for chunks [lo, hi)."""
        ctx = self.ctx
        S = self.instance.steps
        nodes = list(self.instance.topology.nodes())
        # Domain 0..S+1; S+1 encodes "not present within the algorithm".
        for chunk in range(lo, hi):
            for node in nodes:
                iv = ctx.new_int(0, S + 1, name=f"time_c{chunk}_n{node}")
                self.time_vars[(chunk, node)] = iv
                lower = self._chunk_dist[(chunk, node)]
                if self.prune:
                    if lower is None:
                        # The chunk can never reach this node.
                        iv.fix(S + 1)
                    elif lower > 0:
                        # A chunk cannot arrive earlier than its graph distance.
                        iv.require_ge(min(lower, S + 1))
        for chunk in range(lo, hi):
            for (src, dst) in self._links:
                if self.prune and not self._send_useful(chunk, src, dst):
                    continue
                lit = ctx.new_bool(name=f"snd_c{chunk}_{src}_{dst}")
                self.send_vars[(chunk, src, dst)] = lit
                if self.chunk_selector:
                    # A send of a disabled chunk level is forbidden, so a
                    # frame assumption cleanly zeroes the level out.
                    ctx.add_clause_fast([-lit, self._level_lits[self._chunk_level[chunk]]])

    def _encode_chunk_constraints(self, lo: int, hi: int) -> None:
        """Constraints C1-C4 restricted to the chunk range [lo, hi)."""
        ctx = self.ctx
        instance = self.instance
        S = instance.steps

        # --- C1/C2: pre- and post-conditions ----------------------------------------
        for (chunk, node) in instance.precondition:
            if not lo <= chunk < hi:
                continue
            self.time_vars[(chunk, node)].fix(0)
        for (chunk, node) in instance.postcondition:
            if not lo <= chunk < hi:
                continue
            if self.chunk_selector:
                # The postcondition only binds while the chunk's level is on.
                ctx.add_clause_fast([
                    -self._level_lits[self._chunk_level[chunk]],
                    self.time_vars[(chunk, node)].le_lit(S),
                ])
            else:
                self.time_vars[(chunk, node)].require_le(S)

        # --- C3: unique reception ----------------------------------------------------
        for chunk in range(lo, hi):
            for node in instance.topology.nodes():
                if (chunk, node) in instance.precondition:
                    continue
                present = self.time_vars[(chunk, node)].le_lit(S)
                incoming = [
                    self.send_vars[(chunk, src, node)]
                    for src in self._in_links[node]
                    if (chunk, src, node) in self.send_vars
                ]
                if not incoming:
                    # The chunk can never arrive; forbid the post-condition from
                    # requiring it (if it does, the instance is UNSAT).
                    ctx.add_unit(-present)
                    continue
                # present -> exactly one incoming send
                ctx.add_clause_fast([-present] + incoming)
                ctx.at_most_one(incoming)
                # any incoming send -> present within S steps
                for lit in incoming:
                    ctx.add_clause_fast([-lit, present])

        # --- C4: causality ------------------------------------------------------------
        for (chunk, src, dst), snd in self.send_vars.items():
            if not lo <= chunk < hi:
                continue
            time_src = self.time_vars[(chunk, src)]
            time_dst = self.time_vars[(chunk, dst)]
            # Sending requires the chunk to reach the destination within S steps.
            ctx.add_clause_fast([-snd, time_dst.le_lit(S)])
            for s in range(0, S + 1):
                # snd ∧ time_dst <= s  ->  time_src <= s - 1
                ctx.add_clause_fast([-snd, -time_dst.le_lit(s), time_src.le_lit(s - 1)])

    def _activation_lit(self, chunk: int, src: int, dst: int, s: int) -> Optional[int]:
        """Auxiliary activation literal a[c, (src,dst), s]: (snd ∧ time_dst == s) -> a.

        Only this direction is needed because the activations appear in
        upper-bound (<=) constraints.
        """
        ctx = self.ctx
        key = (chunk, src, dst, s)
        if key in self._activation:
            return self._activation[key]
        snd = self.send_vars.get((chunk, src, dst))
        if snd is None:
            return None
        time_dst = self.time_vars[(chunk, dst)]
        # If arrival at step s is impossible, no activation needed.
        lower = self._chunk_dist[(chunk, dst)]
        if self.prune and lower is not None and s < lower:
            return None
        arrives_at_s = time_dst.eq_lits(s)
        if any(lit == ctx.false_lit for lit in arrives_at_s):
            return None
        a = ctx.new_bool(name=f"act_c{chunk}_{src}_{dst}_s{s}")
        ctx.add_clause_fast([-snd] + [-lit for lit in arrives_at_s] + [a])
        self._activation[key] = a
        self.stats.aux_vars += 1
        return a

    def _encode_bandwidth(self, lo: int, hi: int) -> None:
        """Constraint C5: per-step bandwidth counts.

        Activation terms for chunks in [lo, hi) are appended to the
        per-(constraint, step) term lists; the cardinality link to the
        round variables is then (re-)emitted over the *full* list.  On
        extension the constraints already emitted over the old prefix stay
        in the formula — they are sound under-counts — and the fresh
        emission restores completeness over the grown term set.
        """
        ctx = self.ctx
        S = self.instance.steps
        for ci, constraint in enumerate(self.instance.topology.constraints):
            b = constraint.bandwidth
            for s in range(1, S + 1):
                terms = self._bandwidth_terms.setdefault((ci, s), [])
                before = len(terms)
                for chunk in range(lo, hi):
                    for (src, dst) in constraint.links:
                        a = self._activation_lit(chunk, src, dst, s)
                        if a is not None:
                            terms.append(a)
                if not terms or (lo > 0 and len(terms) == before):
                    continue
                r_s = self.round_vars[s - 1]
                if r_s.lo == r_s.hi:
                    # Fixed round count: a plain cardinality constraint.
                    ctx.at_most_k(terms, b * r_s.lo)
                    continue
                # count <= b * r_s with a variable r_s: build unary counts and
                # link each threshold to the order encoding of r_s:
                #   count >= b*j + 1  ->  r_s >= j + 1
                bound = min(len(terms), b * r_s.hi + 1)
                outputs = ctx.totalizer(terms, bound=bound)
                for j in range(0, r_s.hi + 1):
                    threshold = b * j + 1
                    if threshold <= len(outputs):
                        ctx.add_clause_fast([-outputs[threshold - 1], r_s.ge_lit(j + 1)])

    def _refresh_stats(self) -> None:
        cnf_stats = self.ctx.stats()
        self.stats.variables = cnf_stats["variables"]
        self.stats.clauses = cnf_stats["clauses"]
        self.stats.send_vars = len(self.send_vars)
        self.stats.time_vars = len(self.time_vars)

    # ------------------------------------------------------------------
    # Chunk-selector layer (shared-prefix form)
    # ------------------------------------------------------------------
    def _ensure_levels(self, chunks_per_node: int) -> None:
        """Enable literals and the chunk -> level map up to ``chunks_per_node``."""
        spec = get_collective(self.instance.collective)
        nodes = self.instance.topology.num_nodes
        while len(self._level_lits) < chunks_per_node:
            level = len(self._level_lits) + 1
            lit = self.ctx.new_bool(name=f"chunks_ge_{level}")
            if self._level_lits:
                # Enabled levels form a prefix: level l on implies l-1 on,
                # so a frame needs only two assumption literals.
                self.ctx.add_clause_fast([-lit, self._level_lits[-1]])
            self._level_lits.append(lit)
            for _ in range(spec.global_chunks(nodes, level) - len(self._chunk_level)):
                self._chunk_level.append(level - 1)

    def extend_chunks(self, instance: SynCollInstance) -> SmtLite:
        """Grow the chunk budget in place to serve ``instance``'s chunk count.

        Appends the new levels' time/send variables and their C1-C4
        clauses, re-links C5 over the grown activation term lists, and
        leaves every existing variable and clause untouched — the shared
        time/send substructure is extended, not re-encoded.  The caller
        must reload any solver handle (the formula grew).
        """
        if not self._encoded:
            raise EncodingError("encode() must be called before extend_chunks()")
        if not self.chunk_selector:
            raise EncodingError("extend_chunks() requires a chunk_selector encoding")
        old = self.instance
        if (
            instance.collective != old.collective
            or instance.topology.name != old.topology.name
            or instance.steps != old.steps
            or instance.rounds != old.rounds
            or instance.root != old.root
        ):
            raise EncodingError(
                "extend_chunks(): instance may differ from the encoded one only "
                "in its chunk count"
            )
        if instance.chunks_per_node < old.chunks_per_node:
            raise EncodingError(
                f"cannot shrink the chunk budget ({old.chunks_per_node} -> "
                f"{instance.chunks_per_node}); use chunks_assumptions() instead"
            )
        if instance.chunks_per_node == old.chunks_per_node:
            return self.ctx
        # The extension is only sound when existing chunks keep their
        # placements — true for every Table 1 relation, re-checked here so
        # an exotic future collective cannot silently corrupt the family.
        if not (
            old.precondition <= instance.precondition
            and old.postcondition <= instance.postcondition
        ):
            raise EncodingError(
                f"{old.collective} placements are not prefix-stable in the "
                f"chunk count; cannot extend the encoding in place"
            )
        lo, hi = old.num_chunks, instance.num_chunks
        if self.analysis is not None:
            self.analysis.ensure(instance)
        else:
            self._chunk_dist = _chunk_distances(instance)
            self._need_dist = _destination_distances(instance)
        self.instance = instance
        self._ensure_levels(instance.chunks_per_node)
        self._encode_placement_vars(lo, hi)
        self._encode_chunk_constraints(lo, hi)
        self._encode_bandwidth(lo, hi)
        self._refresh_stats()
        return self.ctx

    def chunks_assumptions(self, chunks_per_node: int) -> List[int]:
        """Assumption literals enabling exactly the first ``chunks_per_node`` levels."""
        if not self.chunk_selector:
            raise EncodingError("chunks_assumptions requires a chunk_selector encoding")
        if not self._encoded:
            raise EncodingError("encode() must be called before chunks_assumptions()")
        if not 1 <= chunks_per_node <= self.instance.chunks_per_node:
            raise EncodingError(
                f"chunk count {chunks_per_node} outside the encoded budget "
                f"[1, {self.instance.chunks_per_node}]"
            )
        assumptions = [self._level_lits[chunks_per_node - 1]]
        if chunks_per_node < len(self._level_lits):
            # The monotone chain turns this into "all higher levels off".
            assumptions.append(-self._level_lits[chunks_per_node])
        return assumptions

    def frame_assumptions(self, chunks_per_node: int, rounds: int) -> List[int]:
        """The per-``(C, R)`` assumption frame for one lattice candidate."""
        assumptions = self.chunks_assumptions(chunks_per_node)
        if self.rounds_budget is not None:
            assumptions.extend(self.rounds_assumptions(rounds))
        elif rounds != self.instance.rounds:
            raise EncodingError(
                f"rounds {rounds} differs from the encoded total "
                f"{self.instance.rounds} and no rounds budget was requested"
            )
        return assumptions

    # ------------------------------------------------------------------
    # Rounds-budget selector layer
    # ------------------------------------------------------------------
    def _build_rounds_selector(self) -> None:
        """Unary counters that let assumptions pin the total round count.

        Each round variable contributes ``value - lo`` true Booleans in its
        order encoding, so ``total_rounds = sum(lo) + count_true``.  The
        project totalizer only encodes the "count >= j implies output"
        direction, which supports *upper* bounds by assuming an output
        false; the matching *lower* bound comes from a second totalizer
        over the negated Booleans (count_false <= n - q iff count_true >= q).
        """
        bools: List[int] = []
        for rv in self.round_vars:
            bools.extend(rv.booleans())
        self._round_bools = bools
        if bools:
            self._count_ge = self.ctx.totalizer(bools)
            self._false_ge = self.ctx.totalizer([-lit for lit in bools])

    def rounds_assumptions(self, rounds: int) -> List[int]:
        """Assumption literals forcing ``total_rounds == rounds``.

        Only available when the encoding was built with a ``rounds_budget``;
        ``rounds`` must lie within ``S .. rounds_budget``.
        """
        if self.rounds_budget is None:
            raise EncodingError("rounds_assumptions requires a rounds_budget encoding")
        if not self._encoded:
            raise EncodingError("encode() must be called before rounds_assumptions()")
        S = self.instance.steps
        if not S <= rounds <= self.rounds_budget:
            raise EncodingError(
                f"rounds {rounds} outside the encoded budget [{S}, {self.rounds_budget}]"
            )
        offset = sum(rv.lo for rv in self.round_vars)
        target = rounds - offset  # Booleans that must be true
        n = len(self._round_bools)
        if target < 0 or target > n:
            raise EncodingError(
                f"rounds {rounds} unreachable with {n} round Booleans (offset {offset})"
            )
        assumptions: List[int] = []
        # count_true <= target: at least target+1 true is forbidden.
        if target < len(self._count_ge):
            assumptions.append(-self._count_ge[target])
        # count_true >= target, i.e. count_false <= n - target.
        if n - target < len(self._false_ge):
            assumptions.append(-self._false_ge[n - target])
        return assumptions

    def _send_useful(self, chunk: int, src: int, dst: int) -> bool:
        """Prune send variables that can never appear in a valid schedule."""
        S = self.instance.steps
        reach_src = self._chunk_dist[(chunk, src)]
        if reach_src is None or reach_src + 1 > S:
            return False
        # After arriving at dst (taking at least reach_src + 1 steps), the
        # chunk must still be able to serve some node that needs it.
        useful_at = self._need_dist[(chunk, dst)]
        if useful_at is None:
            return False
        earliest_arrival = max(self._chunk_dist[(chunk, dst)] or 0, reach_src + 1)
        return earliest_arrival + useful_at <= S + 0 if useful_at > 0 else earliest_arrival <= S

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        model: Dict[int, bool],
        name: Optional[str] = None,
        *,
        instance: Optional[SynCollInstance] = None,
    ) -> Algorithm:
        """Turn a satisfying assignment into an :class:`Algorithm` (Q, T).

        ``instance`` selects the frame to decode against: a chunk-selector
        encoding solved under :meth:`frame_assumptions` passes the framed
        ``(S, C, R)`` instance here, and sends of disabled chunk levels
        (which the frame forced false) are skipped.
        """
        if not self._encoded:
            raise EncodingError("encode() must be called before decode()")
        if instance is None:
            instance = self.instance
        elif instance.num_chunks > self.instance.num_chunks or (
            instance.steps != self.instance.steps
        ):
            raise EncodingError(
                f"frame instance {instance.describe()!r} is not a chunk prefix "
                f"of the encoded instance {self.instance.describe()!r}"
            )
        S = instance.steps
        rounds = [SmtLite.int_value(model, rv) for rv in self.round_vars]
        sends_by_step: List[List[Send]] = [[] for _ in range(S)]
        for (chunk, src, dst), lit in self.send_vars.items():
            if chunk >= instance.num_chunks:
                continue  # disabled level of a chunk-selector encoding
            if not SmtLite.bool_value(model, lit):
                continue
            arrival = SmtLite.int_value(model, self.time_vars[(chunk, dst)])
            if arrival > S:
                # A send that never takes effect; drop it (it cannot appear in
                # a minimal model but nothing in the constraints forbids it).
                continue
            step_index = arrival - 1
            if step_index < 0:
                raise EncodingError(
                    f"model places arrival of chunk {chunk} at node {dst} at step 0 "
                    f"despite not being in the precondition"
                )
            sends_by_step[step_index].append(Send(chunk=chunk, src=src, dst=dst))
        steps = [
            Step(rounds=rounds[s], sends=tuple(sorted(
                sends_by_step[s], key=lambda x: (x.src, x.dst, x.chunk)
            )))
            for s in range(S)
        ]
        total_rounds = sum(rounds)  # equals instance.rounds unless budget-encoded
        algorithm = Algorithm(
            name=name
            or f"{instance.collective.lower()}_{instance.topology.name}_c{instance.chunks_per_node}"
            f"_s{S}_r{total_rounds}",
            collective=instance.collective,
            topology=instance.topology,
            chunks_per_node=instance.chunks_per_node,
            num_chunks=instance.num_chunks,
            precondition=instance.precondition,
            postcondition=instance.postcondition,
            steps=steps,
            combining=False,
            metadata={"encoding": "sccl", "instance": instance.describe()},
        )
        # Models may contain sends that never contribute to the postcondition
        # (nothing in C1-C6 forbids them); strip them for clean schedules.
        return algorithm.pruned()


class NaiveEncoding:
    """The direct encoding with one Boolean per tuple ``(c, n, n', s)``.

    Kept for the Section 5.4.3 ablation: it produces many more variables
    and scales poorly compared to :class:`ScclEncoding`.
    """

    def __init__(self, instance: SynCollInstance) -> None:
        self.instance = instance
        self.ctx = SmtLite(name=f"naive_{instance.collective}")
        self.send_step_vars: Dict[Tuple[int, int, int, int], int] = {}
        self.present_vars: Dict[Tuple[int, int, int], int] = {}
        self.round_vars: List[IntVar] = []
        self.stats = EncodingStats()
        self._encoded = False

    def encode(self) -> SmtLite:
        if self._encoded:
            return self.ctx
        instance = self.instance
        ctx = self.ctx
        S = instance.steps
        R = instance.rounds
        G = instance.num_chunks
        topology = instance.topology
        links = sorted(topology.links())

        # present[c, n, t]: chunk c is available on node n before step t executes.
        for chunk in range(G):
            for node in topology.nodes():
                for t in range(S + 1):
                    self.present_vars[(chunk, node, t)] = ctx.new_bool(
                        name=f"has_c{chunk}_n{node}_t{t}"
                    )
        # x[c, src, dst, s]: chunk c is sent over (src, dst) at step s.
        for chunk in range(G):
            for (src, dst) in links:
                for s in range(S):
                    self.send_step_vars[(chunk, src, dst, s)] = ctx.new_bool(
                        name=f"x_c{chunk}_{src}_{dst}_s{s}"
                    )
        min_rounds = 1 if R >= S else 0
        for s in range(S):
            self.round_vars.append(
                ctx.new_int(min_rounds, R - (S - 1) * min_rounds, name=f"rounds_{s}")
            )

        # Initial state = precondition.
        for chunk in range(G):
            for node in topology.nodes():
                lit = self.present_vars[(chunk, node, 0)]
                if (chunk, node) in instance.precondition:
                    ctx.add_unit(lit)
                else:
                    ctx.add_unit(-lit)

        # Transition: present at t+1 iff present at t or received at step t.
        for chunk in range(G):
            for node in topology.nodes():
                incoming_links = [
                    (src, node) for src in topology.in_neighbors(node)
                ]
                for t in range(S):
                    now = self.present_vars[(chunk, node, t)]
                    nxt = self.present_vars[(chunk, node, t + 1)]
                    received = [
                        self.send_step_vars[(chunk, src, dst, t)]
                        for (src, dst) in incoming_links
                    ]
                    # now -> nxt
                    ctx.add_clause([-now, nxt])
                    # received -> nxt
                    for lit in received:
                        ctx.add_clause([-lit, nxt])
                    # nxt -> now or received
                    ctx.add_clause([-nxt, now] + received)

        # A send requires the chunk at the source beforehand.
        for (chunk, src, dst, s), lit in self.send_step_vars.items():
            ctx.add_clause([-lit, self.present_vars[(chunk, src, s)]])

        # Bandwidth per step and constraint.
        for constraint in topology.constraints:
            b = constraint.bandwidth
            for s in range(S):
                terms = [
                    self.send_step_vars[(chunk, src, dst, s)]
                    for chunk in range(G)
                    for (src, dst) in constraint.links
                ]
                if not terms:
                    continue
                r_s = self.round_vars[s]
                if r_s.lo == r_s.hi:
                    ctx.at_most_k(terms, b * r_s.lo)
                    continue
                bound = min(len(terms), b * r_s.hi + 1)
                outputs = ctx.totalizer(terms, bound=bound)
                for j in range(0, r_s.hi + 1):
                    threshold = b * j + 1
                    if threshold <= len(outputs):
                        ctx.add_clause([-outputs[threshold - 1], r_s.ge_lit(j + 1)])

        # Postcondition.
        for (chunk, node) in instance.postcondition:
            ctx.add_unit(self.present_vars[(chunk, node, S)])

        # Total rounds.
        from ..solver.intvar import unary_sum_equals

        unary_sum_equals(ctx.cnf, self.round_vars, R)

        cnf_stats = ctx.stats()
        self.stats.variables = cnf_stats["variables"]
        self.stats.clauses = cnf_stats["clauses"]
        self.stats.send_vars = len(self.send_step_vars)
        self.stats.time_vars = len(self.present_vars)
        self._encoded = True
        return ctx

    def decode(self, model: Dict[int, bool], name: Optional[str] = None) -> Algorithm:
        if not self._encoded:
            raise EncodingError("encode() must be called before decode()")
        instance = self.instance
        S = instance.steps
        rounds = [SmtLite.int_value(model, rv) for rv in self.round_vars]
        sends_by_step: List[List[Send]] = [[] for _ in range(S)]
        # Only keep sends that deliver the chunk for the first time, mirroring
        # the unique-reception property of the SCCL encoding.
        delivered: Set[Tuple[int, int]] = {
            (chunk, node) for (chunk, node) in instance.precondition
        }
        for s in range(S):
            arrivals: Dict[Tuple[int, int], Tuple[int, int]] = {}
            for (chunk, src, dst, step), lit in self.send_step_vars.items():
                if step != s or not SmtLite.bool_value(model, lit):
                    continue
                if (chunk, dst) in delivered or (chunk, dst) in arrivals:
                    continue
                arrivals[(chunk, dst)] = (src, dst)
            for (chunk, dst), (src, _) in arrivals.items():
                sends_by_step[s].append(Send(chunk=chunk, src=src, dst=dst))
                delivered.add((chunk, dst))
        steps = [
            Step(rounds=rounds[s], sends=tuple(sorted(
                sends_by_step[s], key=lambda x: (x.src, x.dst, x.chunk)
            )))
            for s in range(S)
        ]
        return Algorithm(
            name=name
            or f"{instance.collective.lower()}_{instance.topology.name}_naive"
            f"_c{instance.chunks_per_node}_s{S}_r{instance.rounds}",
            collective=instance.collective,
            topology=instance.topology,
            chunks_per_node=instance.chunks_per_node,
            num_chunks=instance.num_chunks,
            precondition=instance.precondition,
            postcondition=instance.postcondition,
            steps=steps,
            combining=False,
            metadata={"encoding": "naive", "instance": instance.describe()},
        )

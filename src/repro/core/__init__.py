"""The paper's core contribution: synthesis of optimal collective algorithms.

Public surface:

* :func:`~repro.core.instance.make_instance` / :class:`~repro.core.instance.SynCollInstance`
* :func:`~repro.core.synthesizer.synthesize` / :func:`~repro.core.synthesizer.synthesize_collective`
* :func:`~repro.core.pareto.pareto_synthesize` (Algorithm 1)
* :func:`~repro.core.combining.invert_algorithm`,
  :func:`~repro.core.combining.allreduce_from_allgather`,
  :func:`~repro.core.combining.synthesize_allreduce`,
  :func:`~repro.core.combining.synthesize_reduce`,
  :func:`~repro.core.combining.synthesize_reducescatter`
* :class:`~repro.core.algorithm.Algorithm` and the cost-model helpers in
  :mod:`repro.core.cost` / :mod:`repro.core.bounds`.

Solving is carried out by the engine layer (:mod:`repro.engine`): both
:func:`synthesize` and :func:`pareto_synthesize` accept a solver ``backend``
name and an :class:`~repro.engine.cache.AlgorithmCache`, and Algorithm 1
runs its candidate sweeps through a pluggable dispatch strategy
(serial / incremental / parallel).
"""

from .algorithm import Algorithm, AlgorithmError, Send, Step
from .bounds import (
    BoundsError,
    bandwidth_lower_bound,
    latency_lower_bound,
    lower_bounds,
)
from .combining import (
    CombiningError,
    allreduce_from_allgather,
    invert_algorithm,
    synthesize_allreduce,
    synthesize_reduce,
    synthesize_reducescatter,
)
from .cost import (
    CostError,
    CostPoint,
    algorithm_cost,
    best_algorithm_for_size,
    cost_point,
    crossover_size,
    is_pareto_optimal,
    pareto_frontier,
    speedup,
)
from .encoding import (
    EncodingError,
    EncodingStats,
    NaiveEncoding,
    PrefixAnalysis,
    ScclEncoding,
)
from .instance import InstanceError, SynCollInstance, make_instance
from .pareto import (
    ParetoError,
    ParetoFrontier,
    ParetoPoint,
    candidate_set,
    pareto_synthesize,
    resolve_strategy,
)
from .synthesizer import (
    SynthesisError,
    SynthesisResult,
    synthesize,
    synthesize_collective,
)

__all__ = [
    "Algorithm",
    "AlgorithmError",
    "BoundsError",
    "CombiningError",
    "CostError",
    "CostPoint",
    "EncodingError",
    "EncodingStats",
    "InstanceError",
    "NaiveEncoding",
    "PrefixAnalysis",
    "ParetoError",
    "ParetoFrontier",
    "ParetoPoint",
    "ScclEncoding",
    "Send",
    "Step",
    "SynCollInstance",
    "SynthesisError",
    "SynthesisResult",
    "algorithm_cost",
    "allreduce_from_allgather",
    "bandwidth_lower_bound",
    "best_algorithm_for_size",
    "candidate_set",
    "cost_point",
    "crossover_size",
    "invert_algorithm",
    "is_pareto_optimal",
    "latency_lower_bound",
    "lower_bounds",
    "make_instance",
    "pareto_frontier",
    "pareto_synthesize",
    "resolve_strategy",
    "speedup",
    "synthesize",
    "synthesize_allreduce",
    "synthesize_collective",
    "synthesize_reduce",
    "synthesize_reducescatter",
]
